"""Fig. 4 reproduction: MRR of the scoring functions C1/C2/C3 on DBLP
(30 queries) and TAP (9 queries).

Paper shape to reproduce (Section VII-A):

* C2's MRR is at least as high as C1's overall — popularity focuses the
  exploration when many alternative substructures exist;
* C3 is superior in all cases — the matching score resolves the ambiguity
  the keyword-to-element mapping introduces;
* some queries score well even under plain path length (low ambiguity).
"""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import (
    dblp_effectiveness_workload,
    tap_effectiveness_workload,
)
from repro.eval.effectiveness import evaluate_effectiveness

COST_MODELS = ("c1", "c2", "c3")


def _bundle_engines(path, index_tier):
    """One engine per cost model, all serving the same loaded bundle."""
    return {
        name: KeywordSearchEngine.load(
            path, attach_wal=False, index_tier=index_tier, cost_model=name, k=10
        )
        for name in COST_MODELS
    }


def _fresh_engines(graph):
    base = KeywordSearchEngine(graph, cost_model="c3", k=10)
    return {
        name: KeywordSearchEngine(
            graph,
            cost_model=name,
            k=10,
            summary=base.summary,
            keyword_index=base.keyword_index,
        )
        for name in COST_MODELS
    }


@pytest.fixture(scope="module")
def dblp_engines(request, eval_bundle_config):
    if eval_bundle_config and eval_bundle_config[1] == "dblp":
        path, _, index_tier = eval_bundle_config
        return _bundle_engines(path, index_tier)
    return _fresh_engines(request.getfixturevalue("dblp_effectiveness_graph"))


@pytest.fixture(scope="module")
def tap_engines(request, eval_bundle_config):
    if eval_bundle_config and eval_bundle_config[1] == "tap":
        path, _, index_tier = eval_bundle_config
        return _bundle_engines(path, index_tier)
    return _fresh_engines(request.getfixturevalue("tap_graph"))


@pytest.mark.parametrize("cost_model", COST_MODELS)
def test_fig4_dblp_mrr(benchmark, dblp_engines, cost_model, report):
    workload = dblp_effectiveness_workload()
    engine = dblp_engines[cost_model]

    result = benchmark.pedantic(
        lambda: evaluate_effectiveness(engine, workload, k=10),
        rounds=1,
        iterations=1,
    )

    rep = report("fig4_effectiveness")
    rep.line(f"DBLP MRR with {cost_model.upper()}: {result.mrr:.3f}")
    if cost_model == COST_MODELS[-1]:
        _emit_per_query_table(report, dblp_engines, workload, "DBLP")


@pytest.mark.parametrize("cost_model", COST_MODELS)
def test_fig4_tap_mrr(benchmark, tap_engines, cost_model, report):
    workload = tap_effectiveness_workload()
    engine = tap_engines[cost_model]
    result = benchmark.pedantic(
        lambda: evaluate_effectiveness(engine, workload, k=10),
        rounds=1,
        iterations=1,
    )
    report("fig4_effectiveness").line(
        f"TAP MRR with {cost_model.upper()}: {result.mrr:.3f}"
    )


def test_fig4_shape_holds(benchmark, dblp_engines, report):
    """The qualitative Fig. 4 claims, asserted."""
    workload = dblp_effectiveness_workload()
    reports = {
        name: evaluate_effectiveness(engine, workload, k=10)
        for name, engine in dblp_engines.items()
    }
    assert reports["c2"].mrr >= reports["c1"].mrr
    assert reports["c3"].mrr >= reports["c2"].mrr
    for entry in workload:
        assert reports["c3"].rr(entry.qid) >= reports["c2"].rr(entry.qid) - 1e-9

    rep = report("fig4_effectiveness")
    rep.line()
    rep.line(
        "shape check: MRR(C1) <= MRR(C2) <= MRR(C3) and C3 best per query — OK"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _emit_per_query_table(report, engines, workload, dataset):
    reports = {
        name: evaluate_effectiveness(engine, workload, k=10)
        for name, engine in engines.items()
    }
    rep = report("fig4_effectiveness")
    rep.line()
    rep.line(f"Per-query reciprocal rank on {dataset} (paper Fig. 4):")
    rows = [
        (
            entry.qid,
            " ".join(entry.keywords),
            f"{reports['c1'].rr(entry.qid):.2f}",
            f"{reports['c2'].rr(entry.qid):.2f}",
            f"{reports['c3'].rr(entry.qid):.2f}",
        )
        for entry in workload
    ]
    rep.table(("query", "keywords", "C1", "C2", "C3"), rows)
