"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Exactness vs. book-keeping cost** (Section VI-C): the top-k guarantee
  requires tracking all paths and candidates; this ablation measures the
  overhead against a BANKS-style emit-first-k-found cut-off on the same
  exploration, and verifies the cut-off *does* miss cheapest subgraphs.
* **Popularity signal** (Section V): aggregation-count popularity (C2) vs.
  PageRank — same ranking intent, very different preprocessing cost, the
  trade-off the paper's remark is about.
* **Partitioner quality** (Fig. 5 variants): BFS vs. METIS-like edge cut.
* **Summary-graph leverage**: our search time stays flat as the data graph
  grows; bidirectional search degrades — the headline scaling claim.
"""

import time

import pytest

from repro.baselines import BidirectionalSearch, EntityGraphView
from repro.baselines.partitioning import (
    bfs_partition,
    metis_like_partition,
    partition_quality,
)
from repro.core.engine import KeywordSearchEngine
from repro.datasets import DblpConfig, generate_dblp
from repro.scoring.cost import PopularityCost
from repro.scoring.pagerank import PageRankCost
from repro.summary.augmentation import augment


# ----------------------------------------------------------------------
# Exact top-k vs. first-k-found cut-off
# ----------------------------------------------------------------------


def test_ablation_guarantee_overhead(benchmark, performance_engine, report):
    """Measure full exact search; compare against stopping exploration at a
    small cursor budget (no guarantee), and check result quality."""
    keywords = ["cimiano", "graph", "2006"]

    exact = performance_engine.search(keywords, k=10)
    exact_seconds = benchmark.pedantic(
        lambda: performance_engine.search(keywords, k=10), rounds=3, iterations=1
    ).timings["total"]

    started = time.perf_counter()
    truncated = performance_engine.search(keywords, k=10, max_cursors=200)
    truncated_seconds = time.perf_counter() - started

    exact_costs = [c.cost for c in exact]
    truncated_costs = [c.cost for c in truncated]

    rep = report("ablation_guarantee")
    rep.line("Exact top-k (Alg 2 guarantee) vs. truncated exploration:")
    rep.line(f"  exact:     {1000 * exact_seconds:8.1f} ms, costs {exact_costs[:4]}")
    rep.line(f"  truncated: {1000 * truncated_seconds:8.1f} ms, costs {truncated_costs[:4]}")

    # The guarantee matters: the truncated run either misses candidates or
    # returns a worse k-th cost.
    if len(truncated_costs) == len(exact_costs):
        assert truncated_costs[-1] >= exact_costs[-1] - 1e-9
    else:
        assert len(truncated_costs) < len(exact_costs)
    rep.line("  -> truncation loses candidates or ranks worse ones; guarantee needed")


# ----------------------------------------------------------------------
# Guided exploration (Section IX: "indexing connectivity ... for speed up")
# ----------------------------------------------------------------------


def test_ablation_guided_exploration(benchmark, dblp_performance_graph, report):
    """Distance-information pruning: identical results, less work."""
    from repro.datasets import dblp_performance_queries

    plain = KeywordSearchEngine(dblp_performance_graph, cost_model="c3", k=10)
    guided = KeywordSearchEngine(
        dblp_performance_graph,
        cost_model="c3",
        k=10,
        guided=True,
        summary=plain.summary,
        keyword_index=plain.keyword_index,
    )

    queries = dblp_performance_queries()
    benchmark.pedantic(
        lambda: [guided.search(q.keywords, k=10) for q in queries],
        rounds=1,
        iterations=1,
    )

    rows = []
    speedups = []
    for entry in queries:
        started = time.perf_counter()
        a = plain.search(entry.keywords, k=10)
        plain_seconds = time.perf_counter() - started
        started = time.perf_counter()
        b = guided.search(entry.keywords, k=10)
        guided_seconds = time.perf_counter() - started
        assert [round(c.cost, 9) for c in a] == [round(c.cost, 9) for c in b]
        speedups.append(plain_seconds / max(guided_seconds, 1e-9))
        rows.append(
            (
                entry.qid,
                f"{1000 * plain_seconds:.1f}",
                f"{1000 * guided_seconds:.1f}",
                a.exploration.cursors_popped,
                b.exploration.cursors_popped,
            )
        )

    rep = report("ablation_guarantee")
    rep.line()
    rep.line("Guided exploration (distance-information pruning), identical results:")
    rep.table(("query", "plain ms", "guided ms", "plain popped", "guided popped"), rows)
    rep.line(f"mean speedup: {sum(speedups) / len(speedups):.1f}x")
    assert sum(speedups) / len(speedups) > 1.0


# ----------------------------------------------------------------------
# Popularity: aggregation counts vs. PageRank
# ----------------------------------------------------------------------


def test_ablation_popularity_signal(benchmark, performance_engine, report):
    augmented = augment(
        performance_engine.summary,
        performance_engine.keyword_index.lookup_all(["cimiano", "2006"]),
    )

    c2 = PopularityCost()
    pagerank_model = PageRankCost()

    benchmark.pedantic(lambda: c2.element_costs(augmented), rounds=5, iterations=1)

    started = time.perf_counter()
    for _ in range(20):
        c2.element_costs(augmented)
    c2_ms = (time.perf_counter() - started) / 20 * 1000

    started = time.perf_counter()
    for _ in range(20):
        pagerank_model.element_costs(augmented)
    pagerank_ms = (time.perf_counter() - started) / 20 * 1000

    rep = report("ablation_guarantee")
    rep.line()
    rep.line("Popularity signal cost per query (Section V remark):")
    rep.line(f"  aggregation counts (C2): {c2_ms:7.3f} ms")
    rep.line(f"  PageRank:                {pagerank_ms:7.3f} ms")
    assert pagerank_ms > c2_ms, "PageRank should cost more than counting"
    rep.line("  -> the paper's choice (counts) is the cheaper signal")


# ----------------------------------------------------------------------
# Partitioner quality
# ----------------------------------------------------------------------


def test_ablation_partition_quality(benchmark, performance_view, report):
    adjacency = [
        [t for t, _ in performance_view.undirected_neighbors(n)]
        for n in range(performance_view.node_count)
    ]

    bfs_blocks = benchmark.pedantic(
        lambda: bfs_partition(adjacency, 300), rounds=1, iterations=1
    )
    bfs_q = partition_quality(adjacency, bfs_blocks)

    started = time.perf_counter()
    metis_blocks = metis_like_partition(adjacency, 300)
    metis_seconds = time.perf_counter() - started
    metis_q = partition_quality(adjacency, metis_blocks)

    rep = report("ablation_guarantee")
    rep.line()
    rep.line("Partitioner quality at 300 blocks (Fig. 5 index variants):")
    rep.line(
        f"  BFS:        cut={bfs_q['edge_cut_fraction']:.3f} "
        f"balance={bfs_q['balance']:.2f}"
    )
    rep.line(
        f"  METIS-like: cut={metis_q['edge_cut_fraction']:.3f} "
        f"balance={metis_q['balance']:.2f}  ({1000 * metis_seconds:.0f} ms)"
    )


# ----------------------------------------------------------------------
# Scaling: summary-graph exploration vs. data-graph search
# ----------------------------------------------------------------------


def test_ablation_scaling(benchmark, report):
    """Our search cost is governed by the summary graph (constant as data
    grows); bidirectional search walks the data graph (grows)."""
    keywords = ["cimiano", "graph", "2006"]
    scales = (1000, 2000, 4000)
    rows = []
    ours_times = []
    bidirect_times = []
    for publications in scales:
        graph = generate_dblp(DblpConfig(publications=publications))
        engine = KeywordSearchEngine(graph, cost_model="c3", k=10)
        view = EntityGraphView(graph)
        bidirect = BidirectionalSearch(view)

        started = time.perf_counter()
        engine.search(keywords, k=10)
        ours = time.perf_counter() - started
        started = time.perf_counter()
        bidirect.search(keywords, k=10)
        other = time.perf_counter() - started
        ours_times.append(ours)
        bidirect_times.append(other)
        rows.append(
            (
                f"{len(graph)} triples",
                f"{1000 * ours:.1f}",
                f"{1000 * other:.1f}",
                f"{len(engine.summary)}",
            )
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rep = report("ablation_guarantee")
    rep.line()
    rep.line("Scaling with data size (ms; summary-graph leverage):")
    rep.table(("data", "ours", "bidirect", "summary elements"), rows)

    ours_growth = ours_times[-1] / max(ours_times[0], 1e-9)
    bidirect_growth = bidirect_times[-1] / max(bidirect_times[0], 1e-9)
    rep.line(
        f"growth 1k->4k publications: ours {ours_growth:.1f}x, "
        f"bidirect {bidirect_growth:.1f}x"
    )
