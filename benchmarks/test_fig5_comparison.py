"""Fig. 5 reproduction: query performance on DBLP data, Q1-Q10.

The paper's systems: *Our Solution*, *Bidirect* (Kacholia), and the four
BLINKS-style partition-index variants *1000 BFS / 1000 METIS / 300 BFS /
300 METIS*.  For our solution the measured time follows the paper's
protocol exactly — top-10 query computation **plus** processing of the top
queries until ≥10 answers; the baselines are timed to their top-10 answer
trees.

Shape to reproduce: ours beats Bidirect by ~an order of magnitude on most
queries and is competitive with the partition indexes, winning as the
keyword count grows (Q7-Q10).
"""

import time

import pytest

from repro.baselines import BidirectionalSearch, PartitionedIndexSearch
from repro.datasets import dblp_performance_queries

QUERIES = dblp_performance_queries()
_TIMES = {}


@pytest.fixture(scope="module")
def systems(performance_view):
    return {
        "Bidirect": BidirectionalSearch(performance_view),
        "1000 BFS": PartitionedIndexSearch(
            performance_view, blocks=1000, partitioner="bfs"
        ),
        "1000 METIS": PartitionedIndexSearch(
            performance_view, blocks=1000, partitioner="metis"
        ),
        "300 BFS": PartitionedIndexSearch(
            performance_view, blocks=300, partitioner="bfs"
        ),
        "300 METIS": PartitionedIndexSearch(
            performance_view, blocks=300, partitioner="metis"
        ),
    }


@pytest.mark.parametrize("entry", QUERIES, ids=[q.qid for q in QUERIES])
def test_fig5_our_solution(benchmark, performance_engine, entry):
    outcome = benchmark.pedantic(
        lambda: performance_engine.search_and_execute(
            entry.keywords, k=10, min_answers=10
        ),
        rounds=3,
        iterations=1,
    )
    _TIMES[("Our Solution", entry.qid)] = outcome["total_seconds"]
    assert outcome["result"].candidates


@pytest.mark.parametrize("entry", QUERIES, ids=[q.qid for q in QUERIES])
@pytest.mark.parametrize(
    "system_name", ["Bidirect", "1000 BFS", "1000 METIS", "300 BFS", "300 METIS"]
)
def test_fig5_baseline(benchmark, systems, system_name, entry):
    system = systems[system_name]
    started = time.perf_counter()
    benchmark.pedantic(lambda: system.search(entry.keywords, k=10), rounds=3, iterations=1)
    _TIMES[(system_name, entry.qid)] = time.perf_counter() - started


def test_fig5_emit_table(benchmark, performance_engine, systems, report):
    """Re-measure once in a controlled pass and emit the Fig. 5 table."""
    names = ["Our Solution", "Bidirect", "1000 BFS", "1000 METIS", "300 BFS", "300 METIS"]
    rows = []
    ours_vs_bidirect = []
    for entry in QUERIES:
        row = [entry.qid]
        started = time.perf_counter()
        performance_engine.search_and_execute(entry.keywords, k=10, min_answers=10)
        ours = time.perf_counter() - started
        row.append(f"{1000 * ours:.1f}")
        for name in names[1:]:
            started = time.perf_counter()
            systems[name].search(entry.keywords, k=10)
            elapsed = time.perf_counter() - started
            row.append(f"{1000 * elapsed:.1f}")
            if name == "Bidirect":
                ours_vs_bidirect.append(elapsed / ours)
        rows.append(tuple(row))

    rep = report("fig5_comparison")
    rep.line("Query performance on DBLP data, milliseconds (paper Fig. 5):")
    rep.table(("query", *names), rows)
    rep.line()
    rep.line(
        "Bidirect/Ours speedup per query: "
        + ", ".join(f"{s:.1f}x" for s in ours_vs_bidirect)
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Shape assertions: ours faster than Bidirect on the long queries
    # (Q7-Q10), where the paper reports the largest advantage.
    long_speedups = ours_vs_bidirect[6:]
    assert sum(long_speedups) / len(long_speedups) > 1.0, long_speedups
