"""Fig. 6a reproduction: search time vs. k and vs. query length.

The paper runs 30 DBLP queries of length 2-4 under C3 and reports average
search (query computation) time at different k.  Shape to reproduce:

* time grows roughly linearly with k;
* at k=10 the impact of query length is minimal;
* at large k the impact of query length is substantial.
"""

import time

import pytest

from repro.datasets import vocab

K_VALUES = (1, 10, 20, 50, 100)
LENGTHS = (2, 3, 4)


def build_length_workload():
    """30 queries: ten each of length 2, 3, 4, over anchor vocabulary."""
    anchors = ["cimiano", "tran", "rudolph", "wang", "turing", "codd"]
    venues = ["icde", "sigmod", "vldb"]
    topics = list(vocab.TITLE_TOPICS[:8])
    years = ["1999", "2001", "2003", "2005", "2006", "2007"]

    by_length = {2: [], 3: [], 4: []}
    for i in range(10):
        by_length[2].append([topics[i % len(topics)], years[i % len(years)]])
        by_length[3].append(
            [anchors[i % len(anchors)], topics[(i + 2) % len(topics)], years[(i + 1) % len(years)]]
        )
        by_length[4].append(
            [
                anchors[(i + 3) % len(anchors)],
                venues[i % len(venues)],
                topics[(i + 5) % len(topics)],
                years[(i + 4) % len(years)],
            ]
        )
    return by_length


_WORKLOAD = build_length_workload()
_RESULTS = {}


def _average_search_seconds(engine, queries, k):
    total = 0.0
    for keywords in queries:
        started = time.perf_counter()
        engine.search(keywords, k=k)
        total += time.perf_counter() - started
    return total / len(queries)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig6a_search_time_vs_k(benchmark, performance_engine, k):
    """Average search time across all 30 queries at a given k."""
    all_queries = [q for queries in _WORKLOAD.values() for q in queries]
    mean_seconds = benchmark.pedantic(
        lambda: _average_search_seconds(performance_engine, all_queries, k),
        rounds=1,
        iterations=1,
    )
    _RESULTS[("all", k)] = mean_seconds


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("k", (10, 100))
def test_fig6a_search_time_vs_length(benchmark, performance_engine, length, k):
    queries = _WORKLOAD[length]
    mean_seconds = benchmark.pedantic(
        lambda: _average_search_seconds(performance_engine, queries, k),
        rounds=1,
        iterations=1,
    )
    _RESULTS[(length, k)] = mean_seconds


def test_fig6a_emit_table(benchmark, performance_engine, report):
    rep = report("fig6a_topk")
    rep.line("Average search time (ms) for 30 DBLP queries under C3 (paper Fig. 6a):")

    rows = []
    for k in K_VALUES:
        mean = _RESULTS.get(("all", k))
        if mean is None:
            mean = _average_search_seconds(
                performance_engine,
                [q for qs in _WORKLOAD.values() for q in qs],
                k,
            )
        rows.append((f"k={k}", f"{1000 * mean:.1f}"))
    rep.table(("k", "avg search ms"), rows)

    rep.line()
    rep.line("Search time by query length (ms):")
    rows = []
    for k in (10, 100):
        row = [f"k={k}"]
        for length in LENGTHS:
            mean = _RESULTS.get((length, k))
            if mean is None:
                mean = _average_search_seconds(performance_engine, _WORKLOAD[length], k)
                _RESULTS[(length, k)] = mean
            row.append(f"{1000 * mean:.1f}")
        rows.append(tuple(row))
    rep.table(("", "len 2", "len 3", "len 4"), rows)

    # Shape assertions.
    t_small = _RESULTS.get(("all", K_VALUES[0]))
    t_large = _RESULTS.get(("all", K_VALUES[-1]))
    if t_small and t_large:
        assert t_large >= t_small, "search time should not shrink with k"
    # Length impact grows with k: spread at k=100 exceeds spread at k=10.
    spread_10 = _RESULTS[(4, 10)] - _RESULTS[(2, 10)]
    spread_100 = _RESULTS[(4, 100)] - _RESULTS[(2, 100)]
    rep.line()
    rep.line(
        f"length-impact spread: {1000 * spread_10:.1f} ms at k=10 vs "
        f"{1000 * spread_100:.1f} ms at k=100"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
