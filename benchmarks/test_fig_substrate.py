"""Micro-benchmark: version-keyed CSR substrate vs per-query interning.

The exploration used to re-intern the whole augmented summary graph on
every ``explore_top_k`` call — re-sorting element keys, re-hashing them
into an id dict, and re-materializing per-element neighbor lists — an
O(|summary| log |summary|) term per query.  The substrate
(``repro.summary.substrate``) hoists that work out of the query loop: CSR
arrays are built once per summary-graph version and only the O(#matches)
overlay elements are appended per query.

Measured here, on the fig6a-style *repeated-query* regime (many queries
against an unchanged summary graph):

* a synthetic ring-with-chords summary large enough that interning
  dominates (the regime the substrate targets) — warm substrate vs the
  reference per-query interning (``use_substrate=False``), plus the same
  comparison with guided bounds (exercising the bounds cache);
* the scalar substrate loop vs the numpy-vectorized kernels
  (``use_vectorized``) on the same warm-substrate workloads;
* the Fig. 5 DBLP and TAP engine workloads end to end, for context,
  with a per-stage breakdown of one DBLP search;
* shared-frontier batching: ``EngineService.search_many`` with one fused
  completion-bound pass vs 8 sequential searches on the same snapshot;
* the engine-level search-result memo (``search_cache_size``) on repeats.

Results land in ``benchmarks/results/fig_substrate.txt``.  In ``--quick``
mode (the CI smoke job) the harness runs on tiny workloads and the timing
assertions are skipped — only exceptions fail the job.
"""

import os
import time

import pytest

from repro.core import kernels
from repro.core.engine import KeywordSearchEngine
from repro.core.exploration import explore_top_k
from repro.datasets import dblp_performance_queries
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import RDF
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.service.service import EngineService
from repro.summary.augmentation import AugmentedSummaryGraph, augment
from repro.summary.elements import SummaryEdgeKind
from repro.summary.overlay import OverlaySummaryGraph
from repro.summary.summary_graph import SummaryGraph

_IN_CI = os.environ.get("CI") == "true"

_ROWS = {}


def _synthetic_summary(n_vertices):
    """A ring with chords: |elements| ≈ 2.33 × n_vertices, diameter small."""
    graph = SummaryGraph()
    keys = [
        graph.add_class_vertex(URI(f"c:{i:06d}"), agg_count=1).key
        for i in range(n_vertices)
    ]
    for i in range(n_vertices):
        graph.add_edge(
            URI(f"e:r{i:06d}"), SummaryEdgeKind.RELATION, keys[i], keys[(i + 1) % n_vertices]
        )
    for i in range(0, n_vertices, 3):
        graph.add_edge(
            URI(f"e:x{i:06d}"),
            SummaryEdgeKind.RELATION,
            keys[i],
            keys[(i * 7 + 3) % n_vertices],
        )
    return graph, keys


def _time_per_query(run, loops):
    started = time.perf_counter()
    for _ in range(loops):
        run()
    return (time.perf_counter() - started) / loops


def _best_of(*runs, repeats, loops):
    """Best-of-``repeats`` per variant, rounds *interleaved* so drifting
    machine load hits every variant symmetrically."""
    bests = [float("inf")] * len(runs)
    for _ in range(repeats):
        for i, run in enumerate(runs):
            bests[i] = min(bests[i], _time_per_query(run, loops))
    return tuple(bests)


@pytest.mark.parametrize("guided", [False, True], ids=["plain", "guided"])
def test_substrate_beats_per_query_interning(quick_mode, guided):
    """The acceptance check: on repeated queries against an unchanged
    summary graph, a warm substrate beats per-query interning ≥ 2x."""
    n = 300 if quick_mode else 2000
    repeats, loops = (2, 2) if quick_mode else (5, 10)
    graph, keys = _synthetic_summary(n)

    engine_model = KeywordSearchEngine.from_triples([], k=5).cost_model
    augmented = AugmentedSummaryGraph(
        OverlaySummaryGraph(graph), [{keys[0]}, {keys[4]}], {}
    )
    costs = engine_model.element_costs(augmented)

    def warm():
        return explore_top_k(augmented, costs, k=5, guided=guided, use_substrate=True)

    def scalar():
        return explore_top_k(
            augmented, costs, k=5, guided=guided, use_substrate=True,
            use_vectorized=False,
        )

    def cold():
        return explore_top_k(augmented, costs, k=5, guided=guided, use_substrate=False)

    # Identical output is part of the contract, not just speed.
    reference = cold()
    warm()  # populate substrate + cost-array + bounds caches
    warmed = warm()
    assert [sg.elements for sg in warmed.subgraphs] == [
        sg.elements for sg in reference.subgraphs
    ]
    assert [sg.cost for sg in warmed.subgraphs] == [sg.cost for sg in reference.subgraphs]

    warm_s, scalar_s, cold_s = _best_of(warm, scalar, cold, repeats=repeats, loops=loops)
    mode = "guided" if guided else "plain"
    _ROWS[f"synthetic-{mode}"] = {
        "elements": len(graph),
        "warm_us": warm_s * 1e6,
        "scalar_us": scalar_s * 1e6,
        "cold_us": cold_s * 1e6,
    }
    if not quick_mode and not _IN_CI:
        assert cold_s >= 2.0 * warm_s, (
            f"warm substrate ({warm_s * 1e6:.0f}us) should be >= 2x faster than "
            f"per-query interning ({cold_s * 1e6:.0f}us) on the {mode} synthetic workload"
        )
        if guided and kernels.kernels_enabled():
            # The vectorized kernels carry the guided workload (bound
            # tables + SoA exploration); 1.5x is the noise-safe floor —
            # the figure reports the measured ratio (~2x on a quiet host).
            assert scalar_s >= 1.5 * warm_s, (
                f"vectorized guided exploration ({warm_s * 1e6:.0f}us) should be "
                f">= 1.5x faster than the scalar substrate loop "
                f"({scalar_s * 1e6:.0f}us)"
            )


def test_engine_workloads(quick_mode, performance_engine, tap_graph):
    """End-to-end engine context: repeated DBLP/TAP queries, substrate on
    vs reference interning forced through the exploration entry point."""
    loops = 1 if quick_mode else 4
    tap_engine = KeywordSearchEngine(tap_graph, cost_model="c3", k=10)
    workloads = {
        "DBLP": (
            performance_engine,
            [q.keywords for q in dblp_performance_queries()],
        ),
        "TAP": (tap_engine, [["business"], ["music person"], ["sport location"]]),
    }
    for name, (engine, queries) in workloads.items():
        prepared = []
        for keywords in queries:
            matches = [m for m in engine.keyword_index.lookup_all(keywords) if m]
            if not matches:
                continue
            augmented = augment(engine.summary, matches)
            prepared.append((augmented, engine.cost_model.element_costs(augmented)))

        def run(flag, vectorized=None):
            for augmented, costs in prepared:
                explore_top_k(
                    augmented, costs, k=10, use_substrate=flag,
                    use_vectorized=vectorized,
                )

        run(True)  # warm caches
        warm_s, scalar_s, cold_s = _best_of(
            lambda: run(True),
            lambda: run(True, vectorized=False),
            lambda: run(False),
            repeats=3, loops=loops,
        )
        _ROWS[name] = {
            "elements": len(engine.summary),
            "warm_us": warm_s / len(prepared) * 1e6,
            "scalar_us": scalar_s / len(prepared) * 1e6,
            "cold_us": cold_s / len(prepared) * 1e6,
        }

    # Per-stage breakdown of one warm DBLP search: shows where end-to-end
    # time actually goes (exploration + query mapping dominate; view
    # assembly and keyword lookup are noise), which is why the engine rows
    # above move less than the synthetic substrate rows.
    query = " ".join(dblp_performance_queries()[0].keywords)
    performance_engine.search(query)
    stages = {}
    for _ in range(loops):
        timings = performance_engine.search(query).timings
        for stage, seconds in timings.items():
            stages[stage] = min(stages.get(stage, float("inf")), seconds)
    _ROWS["DBLP-stages"] = {"query": query, "stages": stages}


def _ring_data_graph(n, chord_step=9):
    """A long-diameter entity ring with sparse chords.

    Every entity gets its own class (so each keyword pins one summary
    vertex) and the summary inherits the ring topology: completion-bound
    relaxation needs many frontier sweeps, which is exactly the regime the
    shared-frontier fused pass targets.  Chords keep the diameter inside
    the kernels' sweep budget."""
    triples = []
    for i in range(n):
        ent = URI(f"http://bench.repro/ent/{i:06d}")
        triples.append(
            Triple(ent, RDF.type, URI(f"http://bench.repro/cls/widget{i:06d}"))
        )
        triples.append(
            Triple(
                ent,
                URI("http://bench.repro/rel/next"),
                URI(f"http://bench.repro/ent/{(i + 1) % n:06d}"),
            )
        )
    for i in range(0, n, chord_step):
        triples.append(
            Triple(
                URI(f"http://bench.repro/ent/{i:06d}"),
                URI("http://bench.repro/rel/chord"),
                URI(f"http://bench.repro/ent/{(i * 7 + 3) % n:06d}"),
            )
        )
    return DataGraph(triples)


def _candidate_signature(result):
    return [(c.cost, str(c.query)) for c in result.candidates]


def test_shared_frontier_batch(quick_mode):
    """The batch acceptance check: a batch of 8 distinct first-time queries
    through ``search_many`` (one fused bound pass over the shared snapshot)
    vs the same 8 queries as sequential ``service.search`` calls, each
    computing its own guided bounds."""
    n = 120 if quick_mode else 500
    repeats = 2 if quick_mode else 8
    engine = KeywordSearchEngine(
        _ring_data_graph(n), k=2, guided=True, search_cache_size=0
    )
    service = EngineService(engine)
    substrate = engine.summary.exploration_substrate()
    queries = [
        f"widget{37 * j % n:06d} widget{(37 * j + 2) % n:06d}" for j in range(8)
    ]
    try:
        def sequential():
            substrate.clear_bounds()
            return [service.search(q) for q in queries]

        def batched():
            substrate.clear_bounds()
            return service.search_many(queries, shared_frontier=True)

        # Identity first: the fused pass is a cache prewarm, never a
        # different computation.
        reference = [_candidate_signature(r) for r in sequential()]
        outcomes = batched()
        assert all(o.ok for o in outcomes)
        assert [_candidate_signature(o.result) for o in outcomes] == reference
        assert all(len(sig) > 0 for sig in reference)  # a real workload

        seq_s, batch_s = _best_of(sequential, batched, repeats=repeats, loops=1)
        _ROWS["shared-frontier"] = {
            "elements": len(engine.summary),
            "seq_ms": seq_s * 1e3,
            "batch_ms": batch_s * 1e3,
        }
        if not quick_mode and not _IN_CI and kernels.kernels_enabled():
            assert seq_s >= 1.5 * batch_s, (
                f"batch-of-8 search_many ({batch_s * 1e3:.2f}ms) should be >= 1.5x "
                f"faster than 8 sequential searches ({seq_s * 1e3:.2f}ms)"
            )
    finally:
        service.close()


def test_search_result_memo(quick_mode, dblp_effectiveness_graph):
    """The engine-level memo layer: repeated identical searches are served
    from the LRU until an incremental update invalidates it."""
    engine = KeywordSearchEngine(
        dblp_effectiveness_graph, cost_model="c3", k=10, search_cache_size=64
    )
    first = engine.search("cimiano 2006")
    # Memo hits are container-fresh copies sharing the computed internals.
    assert engine.search("cimiano 2006").exploration is first.exploration

    loops = 5 if quick_mode else 200
    started = time.perf_counter()
    for _ in range(loops):
        engine.search("cimiano 2006")
    memo_s = (time.perf_counter() - started) / loops
    _ROWS["search_memo_us"] = memo_s * 1e6
    _ROWS["search_cold_us"] = first.timings["total"] * 1e6

    # Invalidation through the IndexManager: updates drop the memo.
    triple = next(iter(dblp_effectiveness_graph.triples))
    engine.remove_triples([triple])
    after_update = engine.search("cimiano 2006")
    assert after_update.exploration is not first.exploration
    engine.add_triples([triple])


def test_report(report):
    out = report("fig_substrate")
    out.line("Exploration substrate: warm CSR substrate vs per-query interning")
    out.line("(repeated queries against an unchanged summary graph)")
    out.line(kernels.status_line())
    out.line("")
    rows = []
    for name in ("synthetic-plain", "synthetic-guided", "DBLP", "TAP"):
        data = _ROWS.get(name)
        if not data:
            continue
        speedup = data["cold_us"] / max(data["warm_us"], 1e-9)
        vec = data["scalar_us"] / max(data["warm_us"], 1e-9)
        rows.append(
            (
                name,
                data["elements"],
                f"{data['cold_us']:.1f}",
                f"{data['scalar_us']:.1f}",
                f"{data['warm_us']:.1f}",
                f"{speedup:.2f}x",
                f"{vec:.2f}x",
            )
        )
    out.table(
        [
            "workload",
            "|elements|",
            "interning (us)",
            "scalar substrate (us)",
            "vectorized (us)",
            "speedup",
            "vec gain",
        ],
        rows,
    )
    stages = _ROWS.get("DBLP-stages")
    if stages:
        out.line("")
        out.line(f"DBLP per-stage breakdown ('{stages['query']}', warm, best-of):")
        for stage, seconds in stages["stages"].items():
            if stage == "total":
                continue
            out.line(f"  {stage:<16} {seconds * 1e6:8.1f}us")
        out.line(f"  {'total':<16} {stages['stages'].get('total', 0.0) * 1e6:8.1f}us")
    shared = _ROWS.get("shared-frontier")
    if shared:
        out.line("")
        out.line(
            "shared-frontier batch (8 first-time guided queries, "
            f"|elements|={shared['elements']}): "
            f"sequential {shared['seq_ms']:.2f}ms -> "
            f"search_many {shared['batch_ms']:.2f}ms "
            f"({shared['seq_ms'] / max(shared['batch_ms'], 1e-9):.2f}x)"
        )
    if "search_memo_us" in _ROWS:
        out.line("")
        out.line(
            "engine search-result memo (DBLP 'cimiano 2006'): "
            f"cold {_ROWS['search_cold_us']:.1f}us -> "
            f"memoized {_ROWS['search_memo_us']:.1f}us per repeat"
        )
