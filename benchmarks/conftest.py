"""Shared fixtures and reporting for the paper-reproduction benchmarks.

Each ``test_fig*`` module regenerates one table/figure of the paper's
Section VII.  Paper-style result tables are accumulated via the
``report`` fixture and written to ``benchmarks/results/*.txt`` as well as
echoed into the pytest terminal summary, so ``pytest benchmarks/
--benchmark-only`` leaves both the pytest-benchmark timing table and the
figure-shaped outputs behind.
"""

import os
from collections import defaultdict

import pytest

from repro.baselines import EntityGraphView
from repro.core.engine import KeywordSearchEngine
from repro.datasets import (
    DblpConfig,
    LubmConfig,
    TapConfig,
    generate_dblp,
    generate_lubm,
    generate_tap,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS = defaultdict(list)


def pytest_addoption(parser):
    # Only registered when benchmarks/ is on the initial command line (the
    # CI smoke job invokes `pytest benchmarks/test_fig_substrate.py --quick`);
    # consumers read it through `config.getoption("--quick", False)` so a
    # root-level `pytest` run, where the option never registers, still works.
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmark smoke mode: tiny workloads, exercise the harness, "
        "skip timing assertions (failures mean exceptions, not regressions)",
    )
    parser.addoption(
        "--full",
        action="store_true",
        default=False,
        help="extend long-running sweeps to their largest configuration "
        "(e.g. the 10^7-triple row of the scale figure)",
    )
    parser.addoption(
        "--eval-bundle",
        default=None,
        help="score the Fig. 4 effectiveness study against this "
        ".reprobundle instead of building the offline layer fresh",
    )
    parser.addoption(
        "--eval-bundle-dataset",
        choices=("dblp", "tap"),
        default="dblp",
        help="which Fig. 4 workload --eval-bundle holds data for "
        "(default dblp)",
    )
    parser.addoption(
        "--eval-index-tier",
        choices=("memory", "mmap"),
        default="memory",
        help="index tier for --eval-bundle loads (default memory)",
    )


@pytest.fixture(scope="session")
def eval_bundle_config(pytestconfig):
    """``(path, dataset, index_tier)`` of the bundle under evaluation,
    or ``None`` when the study runs on freshly built engines."""
    path = pytestconfig.getoption("--eval-bundle", None)
    if not path:
        return None
    return (
        path,
        pytestconfig.getoption("--eval-bundle-dataset", "dblp"),
        pytestconfig.getoption("--eval-index-tier", "memory"),
    )


@pytest.fixture(scope="session")
def quick_mode(pytestconfig):
    """True when running as a CI smoke job (see ``--quick``)."""
    return bool(pytestconfig.getoption("--quick", False))


class Report:
    """Accumulates printable rows for one figure reproduction."""

    def __init__(self, name: str):
        self.name = name

    def line(self, text: str = "") -> None:
        _REPORTS[self.name].append(text)

    def table(self, headers, rows) -> None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.line("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        self.line("  ".join("-" * w for w in widths))
        for row in rows:
            self.line("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def report():
    """Factory for named figure reports."""
    return Report


def pytest_sessionfinish(session):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name, lines in _REPORTS.items():
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
            fh.write("\n".join(lines) + "\n")


def pytest_terminal_summary(terminalreporter):
    for name, lines in sorted(_REPORTS.items()):
        terminalreporter.write_sep("=", f"reproduction output: {name}")
        for line in lines:
            terminalreporter.write_line(line)


# ----------------------------------------------------------------------
# Datasets and engines at benchmark scale
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def dblp_effectiveness_graph():
    """Scale used for the Fig. 4 effectiveness study."""
    return generate_dblp(DblpConfig(publications=800))


@pytest.fixture(scope="session")
def dblp_performance_graph():
    """Scale used for the Fig. 5 / Fig. 6a performance studies.

    ≈64k triples: large enough that data-graph search (the baselines)
    visibly diverges from summary-graph exploration (ours), small enough
    for the whole benchmark suite to finish in about a minute.
    """
    return generate_dblp(DblpConfig(publications=8000))


@pytest.fixture(scope="session")
def lubm_graph():
    return generate_lubm(LubmConfig(universities=2))


@pytest.fixture(scope="session")
def tap_graph():
    return generate_tap(TapConfig(instances_per_class=8))


@pytest.fixture(scope="session")
def performance_engine(dblp_performance_graph):
    return KeywordSearchEngine(dblp_performance_graph, cost_model="c3", k=10)


@pytest.fixture(scope="session")
def performance_view(dblp_performance_graph):
    return EntityGraphView(dblp_performance_graph)
