"""Serving-layer benchmark: closed-loop throughput for 1 vs N clients.

Measures the `repro.service.EngineService` read path end to end — snapshot
pin, pipeline, stats recording — under closed-loop load (each client fires
its next query the moment the previous one returns):

* **DBLP** at the Fig. 5 performance scale, over the Q1–Q5 workload;
* a **synthetic** ring-of-classes data graph whose summary is dense enough
  that exploration, not keyword lookup, dominates;
* the same workloads again with the search-result memo enabled (the
  many-users-same-queries serving regime).

Reported per configuration: QPS, p50/p99 latency, errors.  One honest
caveat baked into the numbers: search is pure CPU-bound Python, so under
the GIL N concurrent clients cannot multiply throughput of *cold*
searches — the 1-vs-N comparison measures what the coordination layer
costs (reader/writer bookkeeping, admission, stats) and what memo-served
traffic gains, not parallel speedup.  Results land in
``benchmarks/results/fig_serving.txt``.  ``--quick`` shrinks workloads to
smoke size; only exceptions fail there.
"""

import os

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import dblp_performance_queries
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.rdf.graph import DataGraph
from repro.service import DispatchService, EngineService, closed_loop_benchmark

_ROWS = []
_WORKER_ROWS = []
_HOST_CORES = len(os.sched_getaffinity(0))

_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon")


def _synthetic_graph(n_classes=40, per_class=6):
    """A ring of classes with labeled instances: summary = ring + chords,
    every keyword matches many classes/values (wide augmentation)."""
    triples = []
    classes = [URI(f"http://synth.example/class{c}") for c in range(n_classes)]
    relation = URI("http://synth.example/linked")
    for c, cls in enumerate(classes):
        triples.append(
            Triple(cls, RDFS.label, Literal(f"topic {_WORDS[c % len(_WORDS)]}"))
        )
        for i in range(per_class):
            entity = URI(f"http://synth.example/e{c}_{i}")
            triples.append(Triple(entity, RDF.type, cls))
            triples.append(
                Triple(
                    entity,
                    RDFS.label,
                    Literal(f"{_WORDS[(c + i) % len(_WORDS)]} item {c} {i}"),
                )
            )
            target = URI(f"http://synth.example/e{(c + 1) % n_classes}_{i}")
            triples.append(Triple(entity, relation, target))
    return DataGraph(triples)


def _bench(name, engine, queries, quick_mode, cached):
    requests = 3 if quick_mode else 30
    service = EngineService(engine, workers=4, max_pending=512)
    try:
        service.search(queries[0])  # warm substrate + cost tables
        for clients in (1, 4):
            row = closed_loop_benchmark(
                service, queries, clients=clients, requests_per_client=requests
            )
            assert row["errors"] == 0
            assert row["completed"] == clients * requests
            _ROWS.append(
                (
                    name,
                    "memo" if cached else "cold",
                    clients,
                    row["completed"],
                    f"{row['qps']:.1f}",
                    f"{row['p50_ms']:.2f}",
                    f"{row['p99_ms']:.2f}",
                )
            )
    finally:
        service.close()


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "memo"])
def test_dblp_serving(quick_mode, dblp_performance_graph, cached):
    graph = dblp_performance_graph
    if quick_mode:
        from repro.datasets import DblpConfig, generate_dblp

        graph = generate_dblp(DblpConfig(publications=60))
    engine = KeywordSearchEngine(
        graph, cost_model="c3", k=10, search_cache_size=256 if cached else 0
    )
    queries = [" ".join(q.keywords) for q in dblp_performance_queries()[:5]]
    _bench("DBLP", engine, queries, quick_mode, cached)


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "memo"])
def test_synthetic_serving(quick_mode, cached):
    graph = _synthetic_graph(n_classes=10 if quick_mode else 40)
    engine = KeywordSearchEngine(
        graph, cost_model="c3", k=10, search_cache_size=256 if cached else 0
    )
    queries = ["alpha beta", "gamma item", "delta topic", "epsilon alpha"]
    _bench("synthetic", engine, queries, quick_mode, cached)


def test_dblp_worker_sweep(quick_mode, dblp_performance_graph, tmp_path_factory):
    """The multiprocess tier: cold DBLP under 4 closed-loop clients, swept
    over worker-process counts (0 = classic in-process serving).

    Every worker maps the same staged ``.reprobundle``, so the per-worker
    RSS/PSS columns are the shared-page-cache evidence: VmRSS counts the
    mmap-ed bundle pages in *every* worker, PSS splits them across the
    pool — the sum of worker PSS staying near one worker's VmRSS is
    sub-linear memory growth.  The >= 2.5x QPS scaling assertion only
    runs on hosts with >= 4 usable cores: worker processes dodge the GIL,
    not the physics of one CPU.
    """
    graph = dblp_performance_graph
    if quick_mode:
        from repro.datasets import DblpConfig, generate_dblp

        graph = generate_dblp(DblpConfig(publications=60))
    engine = KeywordSearchEngine(graph, cost_model="c3", k=10)
    bundle = str(tmp_path_factory.mktemp("fig-serving") / "dblp.reprobundle")
    engine.save(bundle)
    queries = [" ".join(q.keywords) for q in dblp_performance_queries()[:5]]
    requests = 2 if quick_mode else 20
    clients = 4

    qps_by_workers = {}
    for workers in (0, 1, 2, 4):
        if workers == 0:
            service = EngineService(engine, workers=4, max_pending=512)
        else:
            service = DispatchService(
                bundle,
                workers=workers,
                max_pending=512,
                overrides={"cost_model": "c3", "k": 10},
            )
        try:
            service.search(queries[0])  # warm substrate + cost tables
            row = closed_loop_benchmark(
                service, queries, clients=clients, requests_per_client=requests
            )
            assert row["errors"] == 0
            assert row["completed"] == clients * requests
            qps_by_workers[workers] = row["qps"]
            if workers > 0:
                stats = [
                    w
                    for w in service.stats()["workers"]
                    if w.get("alive") and not w.get("busy")
                ]
                vmhwm = "+".join(str(w["vmhwm_kb"]) for w in stats)
                pss_sum = sum(w["pss_kb"] for w in stats)
            else:
                vmhwm, pss_sum = "-", "-"
            _WORKER_ROWS.append(
                (
                    workers,
                    clients,
                    row["completed"],
                    f"{row['qps']:.1f}",
                    f"{row['p50_ms']:.2f}",
                    f"{row['p99_ms']:.2f}",
                    vmhwm,
                    pss_sum,
                )
            )
        finally:
            service.close()

    if not quick_mode and _HOST_CORES >= 4:
        assert qps_by_workers[4] >= 2.5 * qps_by_workers[0], (
            f"4 worker processes must beat in-process serving >= 2.5x on a "
            f"{_HOST_CORES}-core host: {qps_by_workers}"
        )


def test_batch_executor_matches_sequential(quick_mode, dblp_performance_graph):
    """search_many under the pool returns exactly the sequential results —
    the correctness side of the serving numbers above."""
    graph = dblp_performance_graph
    if quick_mode:
        from repro.datasets import DblpConfig, generate_dblp

        graph = generate_dblp(DblpConfig(publications=60))
    engine = KeywordSearchEngine(graph, cost_model="c3", k=10)
    queries = [" ".join(q.keywords) for q in dblp_performance_queries()[:5]]
    service = EngineService(engine, workers=4)
    try:
        snapshot = engine.snapshot()
        expected = [
            [str(c.query) for c in engine.search_on_snapshot(snapshot, q)]
            for q in queries
        ]
        outcomes = service.search_many(queries)
        assert [o.status for o in outcomes] == ["ok"] * len(queries)
        assert [[str(c.query) for c in o.result] for o in outcomes] == expected
    finally:
        service.close()


def test_report(report):
    out = report("fig_serving")
    out.line("Serving layer: closed-loop throughput, 1 vs 4 clients")
    out.line("(EngineService.search: snapshot pin + pipeline + stats; 4 pool workers)")
    out.line("")
    out.table(
        ["workload", "regime", "clients", "requests", "qps", "p50 (ms)", "p99 (ms)"],
        _ROWS,
    )
    out.line("")
    out.line(
        "note: searches are CPU-bound pure Python, so N cold clients share the"
    )
    out.line(
        "GIL — the 1-vs-4 cold rows price the coordination overhead, while the"
    )
    out.line("memo rows show the serving regime (hot repeated queries) scaling.")
    if _WORKER_ROWS:
        out.line("")
        out.line("Worker sweep: multiprocess dispatch tier, cold DBLP, 4 clients")
        out.line(
            "(repro serve --workers N: worker processes over one shared mmap"
        )
        out.line(
            " bundle; workers=0 is the in-process EngineService baseline)"
        )
        out.line("")
        out.table(
            [
                "workers",
                "clients",
                "requests",
                "qps",
                "p50 (ms)",
                "p99 (ms)",
                "per-worker VmHWM (kB)",
                "sum PSS (kB)",
            ],
            _WORKER_ROWS,
        )
        out.line("")
        out.line(f"host cores available: {_HOST_CORES}")
        out.line(
            "worker processes dodge the GIL, not the physics of one CPU: QPS"
        )
        out.line(
            "scales with workers only up to the host core count (the >=2.5x"
        )
        out.line(
            "assertion at --workers 4 is gated on >=4 usable cores).  VmHWM"
        )
        out.line(
            "counts shared mmap bundle pages in every worker; the sum-PSS"
        )
        out.line(
            "column splits shared pages across the pool — its sub-linear"
        )
        out.line("growth is the shared-page-cache claim, measured.")
