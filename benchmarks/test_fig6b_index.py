"""Fig. 6b reproduction: index sizes and indexing time on DBLP/LUBM/TAP.

Shape to reproduce (Section VII-B, "Index Performance"):

* the keyword index is largest for DBLP — its size tracks the number of
  V-vertices in the data graph;
* the graph index is largest for TAP — its size tracks the number of
  classes and edge labels;
* preprocessing time is practical;
* the summary graph is orders of magnitude smaller than the data graph
  (the Section VI-C complexity argument).
"""

import pytest

from repro.eval.index_stats import collect_index_stats

_ROWS = {}


@pytest.mark.parametrize("dataset", ["dblp", "lubm", "tap"])
def test_fig6b_index_build(benchmark, dataset, request, report):
    graph = request.getfixturevalue(
        {
            "dblp": "dblp_performance_graph",
            "lubm": "lubm_graph",
            "tap": "tap_graph",
        }[dataset]
    )
    row = benchmark.pedantic(
        lambda: collect_index_stats(dataset, graph), rounds=1, iterations=1
    )
    _ROWS[dataset] = row


def test_fig6b_emit_table(benchmark, report, dblp_performance_graph, lubm_graph, tap_graph):
    for name, graph in (
        ("dblp", dblp_performance_graph),
        ("lubm", lubm_graph),
        ("tap", tap_graph),
    ):
        if name not in _ROWS:
            _ROWS[name] = collect_index_stats(name, graph)

    rep = report("fig6b_index")
    rep.line("Index sizes and build times (paper Fig. 6b):")
    rows = [
        (
            row.dataset,
            row.triples,
            row.values,
            row.classes,
            row.keyword_index_entries,
            f"{row.keyword_index_bytes / 1024:.0f} KiB",
            f"{1000 * row.keyword_index_seconds:.0f} ms",
            row.graph_index_elements,
            f"{row.graph_index_bytes / 1024:.1f} KiB",
            f"{1000 * row.graph_index_seconds:.0f} ms",
            f"{row.summary_ratio:.0f}x",
        )
        for row in (_ROWS["dblp"], _ROWS["lubm"], _ROWS["tap"])
    ]
    rep.table(
        (
            "dataset", "triples", "V-vertices", "classes",
            "kw-index terms", "kw-index size", "kw-index time",
            "graph-index elems", "graph-index size", "graph-index time",
            "summary ratio",
        ),
        rows,
    )

    dblp, lubm, tap = _ROWS["dblp"], _ROWS["lubm"], _ROWS["tap"]

    # Shape assertions from the paper's discussion.
    # Keyword index tracks V-vertices: DBLP has the most values → largest.
    assert dblp.values > lubm.values and dblp.values > tap.values
    assert dblp.keyword_index_bytes > lubm.keyword_index_bytes
    assert dblp.keyword_index_bytes > tap.keyword_index_bytes
    # Graph index tracks classes: TAP has the most classes → largest.
    assert tap.classes > dblp.classes and tap.classes > lubm.classes
    assert tap.graph_index_elements > dblp.graph_index_elements
    # The summary graph compresses the data graph substantially.
    assert dblp.summary_ratio > 100

    rep.line()
    rep.line(
        "shape check: keyword index tracks V-vertices (DBLP largest), "
        "graph index tracks classes (TAP largest) — OK"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
