"""Cold start: build the offline layer from triples vs load a bundle.

The paper's offline/online split only pays off operationally when the
offline product survives the process: before ``repro.storage``, every
``repro serve`` restart re-analyzed every label, re-projected every
R-edge, and re-interned the summary graph.  This benchmark prices the
whole lifecycle on the DBLP generator:

* **parse+build** — the pre-bundle cold start: N-Triples file → DataGraph
  → engine (keyword index, summary graph, triple store) → first search;
* **build** — the same minus parsing (triples already in memory);
* **load (serving)** — ``KeywordSearchEngine.load``: decode the keyword
  index + summary, mmap the CSR substrate, first search.  The data
  graph's heavy state and the triple store stay as mmap-backed thunks
  (``repro.storage.lazy``) because serving a search never reads them;
* **load (full)** — ``load(lazy=False)``: everything materialized, the
  bound for update/execute-heavy restarts.

Peak-RSS rows run each path in a fresh subprocess and read
``ru_maxrss``; the lazy load's resident set excludes whatever stays on
disk until first touch.  A second table isolates the substrate: CSR
construction from the summary graph vs ``mmap`` + zero-copy
``memoryview`` adoption on the ring-with-chords synthetic summary of
``test_fig_substrate``.

Results land in ``benchmarks/results/fig_coldstart.txt``.  The ≥ 5x
acceptance assertion is skipped in ``--quick`` mode and on CI runners.
"""

import os
import subprocess
import sys
import tempfile
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import DblpConfig, generate_dblp
from repro.rdf.graph import DataGraph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.storage.codec import decode_raw_ids, encode_raw_ids
from repro.summary.substrate import ExplorationSubstrate

_IN_CI = os.environ.get("CI") == "true"
_QUERY = "conference 2005"

_ROWS = {}


def _best(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _child_rss_kb(code: str) -> int:
    """Peak RSS (KB) of one cold start in a fresh interpreter.

    Reads ``VmHWM`` from ``/proc/self/status`` (containers are seen
    clamping ``ru_maxrss``); falls back to ``ru_maxrss`` where /proc is
    unavailable.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    wrapped = (
        code
        + "\nimport resource, sys"
        + "\npeak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss"
        + "\ntry:"
        + "\n    for line in open('/proc/self/status'):"
        + "\n        if line.startswith('VmHWM:'): peak = int(line.split()[1])"
        + "\nexcept OSError: pass"
        + "\nsys.stdout.write(str(peak))"
    )
    out = subprocess.run(
        [sys.executable, "-c", wrapped],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def coldstart_artifacts(tmp_path_factory, pytestconfig):
    quick = bool(pytestconfig.getoption("--quick", False))
    publications = 300 if quick else 2000
    tmp = tmp_path_factory.mktemp("coldstart")
    graph = generate_dblp(DblpConfig(publications=publications))
    nt_path = tmp / "dblp.nt"
    nt_path.write_text(serialize_ntriples(graph.triples))
    bundle_path = tmp / "dblp.reprobundle"
    engine = KeywordSearchEngine(DataGraph(graph.triples))
    engine.save(bundle_path)
    return {
        "quick": quick,
        "triples": list(graph.triples),
        "nt_path": str(nt_path),
        "bundle_path": str(bundle_path),
        "triple_count": len(graph),
        "bundle_bytes": os.path.getsize(bundle_path),
    }


def test_build_vs_load_wall_time(coldstart_artifacts):
    art = coldstart_artifacts
    repeats = 2 if art["quick"] else 4
    triples = art["triples"]

    def parse_build():
        with open(art["nt_path"]) as fh:
            engine = KeywordSearchEngine(DataGraph(parse_ntriples(fh)))
        engine.search(_QUERY)
        return engine

    def build():
        engine = KeywordSearchEngine(DataGraph(triples))
        engine.search(_QUERY)
        return engine

    def load_serving():
        engine = KeywordSearchEngine.load(art["bundle_path"])
        engine.search(_QUERY)
        # Release the single-writer WAL lock so the next repetition (and
        # load_full below) can attach to the same artifact.
        engine.delta_log.close()
        return engine

    def load_full():
        engine = KeywordSearchEngine.load(art["bundle_path"], lazy=False)
        engine.delta_log.close()
        return engine

    parse_build_s, reference = _best(parse_build, repeats)
    build_s, _ = _best(build, repeats)
    load_s, loaded = _best(load_serving, repeats)
    load_full_s, _ = _best(load_full, repeats)

    # Identical output is part of the contract, not just speed.
    ref = [(str(c.query), c.cost) for c in reference.search(_QUERY)]
    got = [(str(c.query), c.cost) for c in loaded.search(_QUERY)]
    assert got == ref

    _ROWS["wall"] = {
        "triples": art["triple_count"],
        "bundle_mb": art["bundle_bytes"] / 1e6,
        "parse_build_ms": parse_build_s * 1e3,
        "build_ms": build_s * 1e3,
        "load_ms": load_s * 1e3,
        "load_full_ms": load_full_s * 1e3,
    }
    if not art["quick"] and not _IN_CI:
        assert build_s >= 5.0 * load_s, (
            f"cold start via load() ({load_s * 1e3:.1f}ms incl. first search) "
            f"should be >= 5x faster than build-from-triples "
            f"({build_s * 1e3:.1f}ms incl. first search)"
        )


def test_build_vs_load_rss(coldstart_artifacts):
    art = coldstart_artifacts
    build_code = (
        "from repro.core.engine import KeywordSearchEngine\n"
        "from repro.rdf.graph import DataGraph\n"
        "from repro.rdf.ntriples import parse_ntriples\n"
        f"engine = KeywordSearchEngine(DataGraph(parse_ntriples(open({art['nt_path']!r}).read())))\n"
        f"engine.search({_QUERY!r})\n"
    )
    load_code = (
        "from repro.core.engine import KeywordSearchEngine\n"
        f"engine = KeywordSearchEngine.load({art['bundle_path']!r})\n"
        f"engine.search({_QUERY!r})\n"
    )
    _ROWS["rss"] = {
        "build_rss_mb": _child_rss_kb(build_code) / 1024.0,
        "load_rss_mb": _child_rss_kb(load_code) / 1024.0,
    }


def test_substrate_mmap_vs_rebuild(coldstart_artifacts):
    """The mmap story in isolation: adopting the CSR sections off disk vs
    re-walking the summary graph's adjacency (the ring-with-chords
    synthetic summary of the substrate benchmark, where interning work
    dominates)."""
    from repro.rdf.terms import URI
    from repro.summary.elements import SummaryEdgeKind
    from repro.summary.summary_graph import SummaryGraph

    art = coldstart_artifacts
    n = 500 if art["quick"] else 20000
    repeats = 2 if art["quick"] else 5
    summary = SummaryGraph()
    keys = [
        summary.add_class_vertex(URI(f"c:{i:06d}"), agg_count=1).key for i in range(n)
    ]
    for i in range(n):
        summary.add_edge(
            URI(f"e:r{i:06d}"), SummaryEdgeKind.RELATION, keys[i], keys[(i + 1) % n]
        )
    for i in range(0, n, 3):
        summary.add_edge(
            URI(f"e:x{i:06d}"), SummaryEdgeKind.RELATION, keys[i], keys[(i * 7 + 3) % n]
        )
    substrate = summary.exploration_substrate()
    pairs = summary._canonical_pairs()

    with tempfile.NamedTemporaryFile(delete=False) as fh:
        offsets_blob = encode_raw_ids(substrate.offsets)
        fh.write(offsets_blob)
        fh.write(encode_raw_ids(substrate.targets))
        section_path = fh.name
    try:
        import mmap as mmap_module

        def rebuild():
            return ExplorationSubstrate(pairs, summary.neighbors)

        def adopt():
            with open(section_path, "rb") as raw:
                mapped = mmap_module.mmap(raw.fileno(), 0, access=mmap_module.ACCESS_READ)
            view = memoryview(mapped)
            return ExplorationSubstrate.from_arrays(
                pairs,
                decode_raw_ids(view[: len(offsets_blob)]),
                decode_raw_ids(view[len(offsets_blob) :]),
                backing=mapped,
            )

        rebuild_s, built = _best(rebuild, repeats)
        adopt_s, adopted = _best(adopt, repeats)
        assert list(adopted.offsets) == list(built.offsets)
        assert list(adopted.targets) == list(built.targets)
        _ROWS["substrate"] = {
            "elements": substrate.n,
            "rebuild_ms": rebuild_s * 1e3,
            "adopt_ms": adopt_s * 1e3,
        }
    finally:
        os.unlink(section_path)


def test_report(report):
    out = report("fig_coldstart")
    out.line("Cold start: offline build from triples vs bundle load (DBLP)")
    out.line("(every wall-time row includes the first search)")
    out.line("")
    wall = _ROWS.get("wall")
    if wall:
        out.line(
            f"DBLP generator: {wall['triples']} triples, "
            f"bundle {wall['bundle_mb']:.2f} MB"
        )
        rows = [
            ("parse .nt + build", f"{wall['parse_build_ms']:.1f}",
             f"{wall['parse_build_ms'] / wall['load_ms']:.1f}x"),
            ("build from in-memory triples", f"{wall['build_ms']:.1f}",
             f"{wall['build_ms'] / wall['load_ms']:.1f}x"),
            ("load() bundle (serving-ready)", f"{wall['load_ms']:.1f}", "1.0x"),
            ("load(lazy=False) (fully materialized)", f"{wall['load_full_ms']:.1f}",
             f"{wall['load_full_ms'] / wall['load_ms']:.1f}x"),
        ]
        out.table(("cold-start path", "wall ms", "vs load"), rows)
        out.line("")
    rss = _ROWS.get("rss")
    if rss:
        out.table(
            ("peak RSS (fresh process)", "MB"),
            [
                ("parse + build + search", f"{rss['build_rss_mb']:.1f}"),
                ("load bundle + search", f"{rss['load_rss_mb']:.1f}"),
            ],
        )
        out.line("")
    sub = _ROWS.get("substrate")
    if sub:
        out.line(
            f"Substrate CSR sections ({sub['elements']} elements): "
            f"rebuild {sub['rebuild_ms']:.1f}ms vs mmap-adopt "
            f"{sub['adopt_ms']:.1f}ms "
            f"({sub['rebuild_ms'] / max(sub['adopt_ms'], 1e-9):.1f}x)"
        )
