"""Scale sweep: out-of-core vs in-memory bundle builds on LUBM.

The paper indexes DBLP's 26M triples once, offline; PR 8's out-of-core
build (``repro build --stream``) is what makes that offline pass
feasible on bounded memory.  This figure prices both build paths across
LUBM sizes — 10^4 → 10^6 triples by default, 10^7 behind ``--full`` —
in fresh subprocesses so each row's ``VmHWM`` (peak RSS from
``/proc/self/status``) is the build's own high-water mark:

* **build s** — wall time of triple generation + build + bundle write;
* **peak MB** — VmHWM of the streamed build vs the in-memory build
  (``DataGraph`` → engine → ``save``) of the *same* triples;
* **bundle MB / cold ms / warm p50** — the artifact each path leaves
  behind is the same, so serving costs are measured once per scale.

The *serving* sweep prices the two index tiers on the same artifact,
each load in its own fresh subprocess so VmHWM isolates the tier:

* **cold ms** — load + first search + first execute, per tier;
* **peak MB** — the subprocess's VmHWM: the materialized tier decodes
  every section into Python dicts, the mmap tier
  (``--index-tier mmap``) binary-searches the format-v2 queryable
  sections in place and pays only for pages it touches.

Acceptance gates (non-``--quick``), both at the largest default scale:
the streamed build's peak RSS is at least **3x** below the in-memory
build's, and the mmap tier's serving peak RSS is at least **3x** below
the materialized tier's.  The streamed peak is dominated by the hot
structures the builder keeps resident (term interner, keyword-class
contexts, summary aggregates) plus its spill budget; a sensitivity row
at the top scale shows the budget knob working.

Results land in ``benchmarks/results/fig_scale.txt``.
"""

import os
import statistics
import subprocess
import sys
import tempfile
import time

import pytest

from repro.core.engine import KeywordSearchEngine

_QUERY = "professor department0"

#: LUBM yields ~2.7k triples per university (measured, deterministic).
_SWEEP = [
    ("10^4", 4),
    ("10^5", 37),
    ("10^6", 370),
]
_FULL_ROW = ("10^7", 3693)
_QUICK_SWEEP = [("10^4", 4)]

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

_PEAK_SUFFIX = """
import resource
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
try:
    for line in open('/proc/self/status'):
        if line.startswith('VmHWM:'):
            peak = int(line.split()[1])
except OSError:
    pass
print('PEAK', peak)
"""

_STREAM_CHILD = """
import time
from repro.datasets import LubmConfig, iter_lubm_triples
from repro.storage import build_bundle_streaming
started = time.perf_counter()
info = build_bundle_streaming(
    iter_lubm_triples(LubmConfig(universities={universities})),
    {path!r}, force=True, spill_budget_bytes={budget},
)
print('SECONDS', time.perf_counter() - started)
print('TRIPLES', info['triples'])
print('RUNS', info['postings_runs'])
"""

_MEMORY_CHILD = """
import time
from repro.core.engine import KeywordSearchEngine
from repro.datasets import LubmConfig, generate_lubm
started = time.perf_counter()
engine = KeywordSearchEngine(generate_lubm(LubmConfig(universities={universities})))
engine.save({path!r}, force=True)
print('SECONDS', time.perf_counter() - started)
"""

_SERVE_CHILD = """
import time
from repro.core.engine import KeywordSearchEngine
started = time.perf_counter()
engine = KeywordSearchEngine.load({path!r}, attach_wal=False, index_tier={tier!r})
result = engine.search({query!r})
best = result.best()
answers = list(engine.execute(best)) if best is not None else []
print('COLD', 1000 * (time.perf_counter() - started))
print('ANSWERS', len(answers))
"""


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code + _PEAK_SUFFIX],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    values = {}
    for line in out.stdout.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[0] in (
            "PEAK",
            "SECONDS",
            "TRIPLES",
            "RUNS",
            "COLD",
            "ANSWERS",
        ):
            values[parts[0]] = float(parts[1])
    return values


def _serving_costs(path: str) -> tuple:
    """(cold-start ms to first answer, warm p50 ms) on one bundle."""
    started = time.perf_counter()
    engine = KeywordSearchEngine.load(path, attach_wal=False)
    engine.search(_QUERY)
    cold_ms = 1000 * (time.perf_counter() - started)
    samples = []
    for _ in range(9):
        t0 = time.perf_counter()
        engine.search(_QUERY)
        samples.append(1000 * (time.perf_counter() - t0))
    return cold_ms, statistics.median(samples)


@pytest.fixture(scope="module")
def scale_rows(pytestconfig):
    quick = bool(pytestconfig.getoption("--quick", False))
    sweep = list(_QUICK_SWEEP if quick else _SWEEP)
    if pytestconfig.getoption("--full", False):
        sweep.append(_FULL_ROW)
    rows = []
    with tempfile.TemporaryDirectory(prefix="fig-scale-") as tmp:
        for label, universities in sweep:
            path = os.path.join(tmp, f"lubm-{universities}.reprobundle")
            streamed = _run_child(
                _STREAM_CHILD.format(
                    universities=universities, path=path, budget=64 * 1024 * 1024
                )
            )
            cold_ms, warm_ms = _serving_costs(path)
            bundle_mb = os.path.getsize(path) / 1e6
            in_memory = _run_child(
                _MEMORY_CHILD.format(
                    universities=universities, path=path + ".mem"
                )
            )
            serve = {
                tier: _run_child(
                    _SERVE_CHILD.format(path=path, tier=tier, query=_QUERY)
                )
                for tier in ("memory", "mmap")
            }
            rows.append(
                {
                    "label": label,
                    "triples": int(streamed["TRIPLES"]),
                    "stream_s": streamed["SECONDS"],
                    "memory_s": in_memory["SECONDS"],
                    "stream_mb": streamed["PEAK"] / 1024,
                    "memory_mb": in_memory["PEAK"] / 1024,
                    "runs": int(streamed["RUNS"]),
                    "bundle_mb": bundle_mb,
                    "cold_ms": cold_ms,
                    "warm_ms": warm_ms,
                    "serve_mem_cold_ms": serve["memory"]["COLD"],
                    "serve_mem_mb": serve["memory"]["PEAK"] / 1024,
                    "serve_mmap_cold_ms": serve["mmap"]["COLD"],
                    "serve_mmap_mb": serve["mmap"]["PEAK"] / 1024,
                    "serve_answers": int(serve["mmap"]["ANSWERS"]),
                }
            )
            # Same artifact, same query: both tiers must agree before
            # their costs are comparable at all.
            assert serve["memory"]["ANSWERS"] == serve["mmap"]["ANSWERS"]
        # Budget sensitivity at the top scale: a 8 MB spill budget must
        # lower the streamed peak further (the RSS model's spill term).
        label, universities = sweep[-1]
        path = os.path.join(tmp, "budget.reprobundle")
        tight = _run_child(
            _STREAM_CHILD.format(
                universities=universities, path=path, budget=8 * 1024 * 1024
            )
        )
        budget_row = {
            "label": label,
            "stream_mb": tight["PEAK"] / 1024,
            "runs": int(tight["RUNS"]),
        }
    return {"quick": quick, "rows": rows, "budget_row": budget_row}


def test_fig_scale(scale_rows, report):
    rows = scale_rows["rows"]
    rep = report("fig_scale")
    rep.line("Out-of-core vs in-memory build: LUBM scale sweep")
    rep.line("(each build in a fresh subprocess; peak = VmHWM)")
    rep.line()
    rep.table(
        [
            "scale",
            "triples",
            "stream s",
            "memory s",
            "stream MB",
            "memory MB",
            "ratio",
            "runs",
            "bundle MB",
            "cold ms",
            "warm p50 ms",
        ],
        [
            (
                r["label"],
                r["triples"],
                f"{r['stream_s']:.1f}",
                f"{r['memory_s']:.1f}",
                f"{r['stream_mb']:.0f}",
                f"{r['memory_mb']:.0f}",
                f"{r['memory_mb'] / r['stream_mb']:.2f}x",
                r["runs"],
                f"{r['bundle_mb']:.1f}",
                f"{r['cold_ms']:.1f}",
                f"{r['warm_ms']:.1f}",
            )
            for r in rows
        ],
    )
    budget = scale_rows["budget_row"]
    rep.line()
    rep.line(
        f"spill-budget sensitivity at {budget['label']}: 64 MB -> "
        f"{rows[-1]['stream_mb']:.0f} MB peak ({rows[-1]['runs']} postings runs), "
        f"8 MB -> {budget['stream_mb']:.0f} MB peak ({budget['runs']} runs)"
    )

    rep.line()
    rep.line("Serving tiers on the same bundle (fresh subprocess per load;")
    rep.line("cold = load + first search + first execute; peak = VmHWM)")
    rep.line()
    rep.table(
        [
            "scale",
            "triples",
            "materialized cold ms",
            "materialized MB",
            "mmap cold ms",
            "mmap MB",
            "RSS ratio",
        ],
        [
            (
                r["label"],
                r["triples"],
                f"{r['serve_mem_cold_ms']:.0f}",
                f"{r['serve_mem_mb']:.0f}",
                f"{r['serve_mmap_cold_ms']:.0f}",
                f"{r['serve_mmap_mb']:.0f}",
                f"{r['serve_mem_mb'] / r['serve_mmap_mb']:.2f}x",
            )
            for r in rows
        ],
    )

    top = rows[-1]
    ratio = top["memory_mb"] / top["stream_mb"]
    serve_ratio = top["serve_mem_mb"] / top["serve_mmap_mb"]
    rep.line()
    rep.line(
        f"acceptance: streamed peak RSS {ratio:.2f}x below in-memory at "
        f"{top['label']} triples (gate: >= 3x)"
    )
    rep.line(
        f"acceptance: mmap-tier serving peak RSS {serve_ratio:.2f}x below "
        f"materialized at {top['label']} triples (gate: >= 3x)"
    )
    if not scale_rows["quick"]:
        assert ratio >= 3.0, (
            f"streamed build peak RSS only {ratio:.2f}x below in-memory "
            f"at {top['label']} triples"
        )
        assert serve_ratio >= 3.0, (
            f"mmap-tier serving peak RSS only {serve_ratio:.2f}x below "
            f"materialized at {top['label']} triples"
        )


def test_streamed_artifact_serves(scale_rows):
    """The sweep's serving numbers came from real searches on streamed
    bundles; assert the smallest row produced sane measurements."""
    row = scale_rows["rows"][0]
    assert row["triples"] >= 10_000
    assert row["cold_ms"] > 0 and row["warm_ms"] > 0
    assert row["bundle_mb"] > 0
    assert row["serve_mem_cold_ms"] > 0 and row["serve_mmap_cold_ms"] > 0
