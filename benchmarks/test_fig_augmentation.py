"""Micro-benchmark: copy-based vs zero-copy (overlay) augmentation.

The seed implementation materialized a full copy of the summary graph per
query (Definition 5 realized by duplication) and recomputed every element
cost — an O(|summary|) term on each search.  The overlay implementation
layers the keyword-derived elements over the shared base graph and reuses
a cached base-cost table, so the per-query augmentation step allocates
O(#keyword matches).

Measured here, on the Fig. 5 DBLP workload (Q1–Q10) and on the
schema-rich TAP graph (bigger summary → bigger copy):

* ``augment`` alone (graph extension), copy vs overlay;
* the full augmentation step as ``engine.search`` times it
  (``augment`` + cost assignment), copy vs overlay;
* end-to-end search throughput.

Results land in ``benchmarks/results/fig_augmentation.txt``.
"""

import os
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import dblp_performance_queries
from repro.summary.augmentation import augment

_ROWS = {}


def _prepare(engine, keyword_lists):
    return [
        [m for m in engine.keyword_index.lookup_all(keywords) if m]
        for keywords in keyword_lists
    ]


def _one_round(engine, prepared, copy, with_costs, loops):
    started = time.perf_counter()
    for _ in range(loops):
        for matches in prepared:
            augmented = augment(engine.summary, matches, copy=copy)
            if with_costs:
                engine.cost_model.element_costs(augmented)
    return (time.perf_counter() - started) / (loops * len(prepared))


def _time_copy_vs_overlay(engine, prepared, with_costs, repeats=7, loops=50):
    """Best-of-``repeats`` per variant, with rounds *interleaved* so drifting
    machine load hits both variants symmetrically instead of flipping the
    comparison."""
    best_copy = best_overlay = float("inf")
    for _ in range(repeats):
        best_copy = min(best_copy, _one_round(engine, prepared, True, with_costs, loops))
        best_overlay = min(
            best_overlay, _one_round(engine, prepared, False, with_costs, loops)
        )
    return best_copy, best_overlay


@pytest.fixture(scope="module")
def workloads(performance_engine, tap_graph):
    dblp_queries = [q.keywords for q in dblp_performance_queries()]
    tap_engine = KeywordSearchEngine(tap_graph, cost_model="c3", k=10)
    tap_queries = [["business"], ["music person"], ["name"], ["sport location"]]
    return {
        "DBLP": (performance_engine, _prepare(performance_engine, dblp_queries), dblp_queries),
        "TAP": (tap_engine, _prepare(tap_engine, tap_queries), tap_queries),
    }


@pytest.mark.skipif(
    os.environ.get("CI") == "true",
    reason="wall-clock comparison; shared CI runners are too noisy to gate on",
)
@pytest.mark.parametrize("workload", ["DBLP", "TAP"])
def test_overlay_augmentation_beats_copy(workloads, workload):
    """The acceptance check: the overlay augmentation step (graph extension
    + cost assignment, exactly what ``engine.search`` times as
    ``augmentation``) is faster than the seed's copy-based step."""
    engine, prepared, _ = workloads[workload]
    # Warm the base-cost cache so steady-state behavior is measured.
    engine.cost_model.element_costs(augment(engine.summary, prepared[0]))

    copy_step, overlay_step = _time_copy_vs_overlay(engine, prepared, with_costs=True)
    copy_only, overlay_only = _time_copy_vs_overlay(engine, prepared, with_costs=False)

    _ROWS[workload] = {
        "summary_elements": len(engine.summary),
        "copy_step_us": copy_step * 1e6,
        "overlay_step_us": overlay_step * 1e6,
        "copy_only_us": copy_only * 1e6,
        "overlay_only_us": overlay_only * 1e6,
    }
    assert overlay_step < copy_step, (
        f"overlay augmentation ({overlay_step * 1e6:.1f}us) should beat the "
        f"seed's copy-based augmentation ({copy_step * 1e6:.1f}us) on {workload}"
    )


def test_search_throughput(workloads):
    engine, _, queries = workloads["DBLP"]
    started = time.perf_counter()
    loops = 20
    for _ in range(loops):
        for keywords in queries:
            engine.search(keywords, k=10)
    elapsed = time.perf_counter() - started
    _ROWS["throughput_qps"] = loops * len(queries) / elapsed


def test_report(report):
    out = report("fig_augmentation")
    out.line("Query-time augmentation: per-query copy (seed) vs zero-copy overlay")
    out.line("step = augment + element costs, as timed by engine.search")
    out.line("")
    rows = []
    for workload in ("DBLP", "TAP"):
        data = _ROWS.get(workload)
        if not data:
            continue
        speedup = data["copy_step_us"] / max(data["overlay_step_us"], 1e-9)
        rows.append(
            (
                workload,
                data["summary_elements"],
                f"{data['copy_step_us']:.1f}",
                f"{data['overlay_step_us']:.1f}",
                f"{data['copy_only_us']:.1f}",
                f"{data['overlay_only_us']:.1f}",
                f"{speedup:.2f}x",
            )
        )
    out.table(
        [
            "workload",
            "|summary|",
            "copy step (us)",
            "overlay step (us)",
            "copy aug (us)",
            "overlay aug (us)",
            "step speedup",
        ],
        rows,
    )
    if "throughput_qps" in _ROWS:
        out.line("")
        out.line(f"end-to-end search throughput (DBLP Q1-Q10): {_ROWS['throughput_qps']:.0f} queries/s")
