#!/usr/bin/env python
"""CI dispatch-smoke: prove the multiprocess serving tier is alive.

Boots a real ``repro serve --workers N --bundle ...`` as a subprocess,
waits for its URL announcement, then over HTTP: search, update, search —
asserting the update's epoch propagated to *every* worker (the sync
broadcast acked) and the new data is immediately visible no matter which
worker serves the follow-up search.  Finishes with a SIGTERM and checks
the drain exits cleanly.

Run under a hard ``timeout`` in CI so a deadlocked pipe fails the job in
minutes; any violated assertion exits nonzero.

Usage: python scripts/dispatch_smoke.py [bundle] [workers]
"""

import json
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request


def _get(url):
    with urllib.request.urlopen(url, timeout=60) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.loads(resp.read().decode("utf-8"))


def main() -> int:
    bundle = sys.argv[1] if len(sys.argv) > 1 else "example.reprobundle"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--bundle", bundle, "--workers", str(workers), "--port", "0",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    url = None
    try:
        for line in proc.stderr:
            print(line, end="", file=sys.stderr)
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "server exited before announcing its URL"
        # Keep draining stderr so the server never blocks on a full pipe.
        threading.Thread(
            target=lambda: [
                print(l, end="", file=sys.stderr) for l in proc.stderr
            ],
            daemon=True,
        ).start()

        before = _get(f"{url}/stats")
        assert before["service"]["mode"] == "dispatch", before["service"]
        assert before["service"]["live_workers"] == workers

        hit = _get(f"{url}/search?q=cimiano+2006")
        assert hit["candidates"], "pre-update search found no interpretations"

        add = (
            '<http://example.org/smoke/pub> '
            '<http://www.w3.org/2000/01/rdf-schema#label> '
            '"zzdispatchsmoke paper" .'
        )
        updated = _post(f"{url}/update", {"add": add})
        assert updated["changed"] == 1, updated
        assert updated["workers_synced"] == workers, updated

        fresh = _get(f"{url}/search?q=zzdispatchsmoke")
        assert fresh["ignored_keywords"] == [], fresh
        assert fresh["candidates"], "update not visible after sync broadcast"

        after = _get(f"{url}/stats")
        live = [w for w in after["workers"] if w.get("alive")]
        assert len(live) == workers, after["workers"]
        epochs = [w["epoch"] for w in live]
        assert all(e == updated["epoch"] for e in epochs), (
            f"epoch did not advance on all workers: {epochs} "
            f"!= {updated['epoch']}"
        )
        print(
            f"# dispatch-smoke ok: {workers} workers all at epoch "
            f"{updated['epoch']}, update visible over HTTP",
            file=sys.stderr,
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("dispatch-smoke: server did not drain on SIGTERM",
                  file=sys.stderr)
            return 1
    if code != 0:
        print(f"dispatch-smoke: server exited {code}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    deadline = threading.Timer(280.0, lambda: (_hard_exit()))

    def _hard_exit():  # belt and braces under CI's outer `timeout`
        print("dispatch-smoke: internal deadline exceeded", file=sys.stderr)
        import os

        os._exit(2)

    deadline.daemon = True
    deadline.start()
    start = time.time()
    rc = main()
    print(f"# dispatch-smoke finished in {time.time() - start:.1f}s",
          file=sys.stderr)
    raise SystemExit(rc)
