#!/usr/bin/env python
"""CI scale-smoke: prove the out-of-core build path works at real size.

Streams a ~10^5-triple LUBM corpus through ``repro build --stream`` in a
fresh subprocess, asserts the build's peak RSS (``VmHWM`` from
``/proc/self/status``) stays under a hard ceiling, then loads the
resulting bundle and runs one search against it.  The point is liveness
*and* the memory contract: a regression that quietly materializes the
corpus (or an index) during the streamed build shows up here as a
blown ceiling, not just as a slow job.

The same bundle is then served through the mmap tier
(``index_tier="mmap"``) in another fresh subprocess — search, execute,
and one update epoch — under a much lower RSS ceiling: the serving-side
counterpart of the build contract, failing if the tier quietly
materializes postings or triples it should be binary-searching on disk.

Run under a hard ``timeout`` in CI so a wedged merge fails the job in
minutes; any violated assertion exits nonzero.

Usage: python scripts/scale_smoke.py [universities] [rss_ceiling_mb] [serve_ceiling_mb]
"""

import os
import subprocess
import sys

#: ~37 universities ≈ 10^5 LUBM triples (the generator is deterministic).
DEFAULT_UNIVERSITIES = 37
#: The streamed build of 10^5 triples peaks near 110 MB (interpreter
#: included); 256 MB is ~2.3x headroom while still far below the
#: in-memory build's ~280 MB — the ceiling fails if streaming degrades
#: to materialization.
DEFAULT_CEILING_MB = 256
#: The mmap tier serving the same bundle peaks near 45 MB through load +
#: search + execute (touched pages plus the interpreter); the
#: materialized tier needs ~230 MB for the same work.  96 MB fails the
#: job if the tier regresses to decoding whole sections.  An update
#: epoch then materializes the lazy data graph (the maintenance path
#: needs it on every tier) and peaks near 125 MB — gated separately at
#: 2x that, still well below the materialized tier.
DEFAULT_SERVE_CEILING_MB = 96

_CHILD = """
import resource
from repro.datasets import LubmConfig, iter_lubm_triples
from repro.storage import build_bundle_streaming

info = build_bundle_streaming(
    iter_lubm_triples(LubmConfig(universities={universities})),
    {path!r},
    force=True,
)
print('TRIPLES', info['triples'])
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
try:
    for line in open('/proc/self/status'):
        if line.startswith('VmHWM:'):
            peak = int(line.split()[1])
except OSError:
    pass
print('PEAK_KB', peak)
"""

_SERVE_CHILD = """
import resource, time
from repro.core.engine import KeywordSearchEngine
from repro.rdf.namespace import RDF
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

started = time.perf_counter()
engine = KeywordSearchEngine.load({path!r}, attach_wal=False, index_tier='mmap')
result = engine.search('professor department0')
best = result.best()
assert best is not None, 'mmap-tier search returned no candidates'
answers = list(engine.execute(best))
print('COLD_MS', 1000 * (time.perf_counter() - started))
print('CANDIDATES', len(result.candidates))
print('ANSWERS', len(answers))

def peak_kb():
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    try:
        for line in open('/proc/self/status'):
            if line.startswith('VmHWM:'):
                peak = int(line.split()[1])
    except OSError:
        pass
    return peak

print('SERVE_PEAK_KB', peak_kb())

ns = 'http://example.org/smoke/'
added = [
    Triple(URI(ns + 'p1'), RDF.type, URI('http://swat.cse.lehigh.edu/onto/univ-bench.owl#Article')),
    Triple(URI(ns + 'p1'), URI(ns + 'name'), Literal('Smoke Overlay Paper')),
]
assert engine.add_triples(added) == len(added), 'mmap-tier update failed'
post = engine.search('smoke overlay')
assert post.candidates, 'updated data not searchable through the mmap tier'
print('UPDATED', len(post.candidates))
print('TOTAL_PEAK_KB', peak_kb())
"""


def main() -> int:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_UNIVERSITIES
    ceiling_mb = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_CEILING_MB
    serve_ceiling_mb = (
        int(sys.argv[3]) if len(sys.argv) > 3 else DEFAULT_SERVE_CEILING_MB
    )
    bundle = os.path.abspath("scale-smoke.reprobundle")

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    print(f"# streamed build: {universities} universities -> {bundle}")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(universities=universities, path=bundle)],
        env=env,
        capture_output=True,
        text=True,
    )
    sys.stderr.write(out.stderr)
    if out.returncode != 0:
        print("FAIL: streamed build exited nonzero")
        return 1
    values = dict(line.split() for line in out.stdout.split("\n") if line.strip())
    triples = int(values["TRIPLES"])
    peak_mb = int(values["PEAK_KB"]) / 1024
    print(f"# built {triples:,} triples, peak RSS {peak_mb:.0f} MB (ceiling {ceiling_mb} MB)")
    if triples < 50_000:
        print(f"FAIL: expected a ~10^5-triple corpus, generated {triples}")
        return 1
    if peak_mb > ceiling_mb:
        print(f"FAIL: streamed build peaked at {peak_mb:.0f} MB > {ceiling_mb} MB ceiling")
        return 1

    # The artifact must actually serve: load + one search, in-process.
    from repro.core.engine import KeywordSearchEngine

    engine = KeywordSearchEngine.load(bundle, attach_wal=False)
    result = engine.search("professor department0")
    if not result.candidates:
        print("FAIL: search over the streamed bundle returned no candidates")
        return 1
    print(f"# search ok: {len(result.candidates)} candidates, best cost {result.best().cost:.2f}")

    # Serving-side contract: a fresh subprocess maps the same bundle with
    # index_tier="mmap", searches, executes, and applies one update epoch
    # under its own (much lower) RSS ceiling.
    print(f"# mmap-tier serve: {bundle} (ceiling {serve_ceiling_mb} MB)")
    out = subprocess.run(
        [sys.executable, "-c", _SERVE_CHILD.format(path=bundle)],
        env=env,
        capture_output=True,
        text=True,
    )
    sys.stderr.write(out.stderr)
    if out.returncode != 0:
        print("FAIL: mmap-tier serve subprocess exited nonzero")
        return 1
    values = dict(line.split() for line in out.stdout.split("\n") if line.strip())
    serve_peak_mb = int(values["SERVE_PEAK_KB"]) / 1024
    total_peak_mb = int(values["TOTAL_PEAK_KB"]) / 1024
    print(
        f"# mmap serve ok: cold {float(values['COLD_MS']):.0f} ms, "
        f"{values['CANDIDATES']} candidates, {values['ANSWERS']} answers, "
        f"{values['UPDATED']} post-update candidates, "
        f"peak RSS {serve_peak_mb:.0f} MB serving / {total_peak_mb:.0f} MB "
        "incl. update epoch"
    )
    if serve_peak_mb > serve_ceiling_mb:
        print(
            f"FAIL: mmap-tier serve peaked at {serve_peak_mb:.0f} MB "
            f"> {serve_ceiling_mb} MB ceiling"
        )
        return 1
    if total_peak_mb > 2 * serve_ceiling_mb:
        print(
            f"FAIL: mmap-tier serve incl. update epoch peaked at "
            f"{total_peak_mb:.0f} MB > {2 * serve_ceiling_mb} MB ceiling"
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )
    sys.exit(main())
