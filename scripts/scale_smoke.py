#!/usr/bin/env python
"""CI scale-smoke: prove the out-of-core build path works at real size.

Streams a ~10^5-triple LUBM corpus through ``repro build --stream`` in a
fresh subprocess, asserts the build's peak RSS (``VmHWM`` from
``/proc/self/status``) stays under a hard ceiling, then loads the
resulting bundle and runs one search against it.  The point is liveness
*and* the memory contract: a regression that quietly materializes the
corpus (or an index) during the streamed build shows up here as a
blown ceiling, not just as a slow job.

Run under a hard ``timeout`` in CI so a wedged merge fails the job in
minutes; any violated assertion exits nonzero.

Usage: python scripts/scale_smoke.py [universities] [rss_ceiling_mb]
"""

import os
import subprocess
import sys

#: ~37 universities ≈ 10^5 LUBM triples (the generator is deterministic).
DEFAULT_UNIVERSITIES = 37
#: The streamed build of 10^5 triples peaks near 110 MB (interpreter
#: included); 256 MB is ~2.3x headroom while still far below the
#: in-memory build's ~280 MB — the ceiling fails if streaming degrades
#: to materialization.
DEFAULT_CEILING_MB = 256

_CHILD = """
import resource
from repro.datasets import LubmConfig, iter_lubm_triples
from repro.storage import build_bundle_streaming

info = build_bundle_streaming(
    iter_lubm_triples(LubmConfig(universities={universities})),
    {path!r},
    force=True,
)
print('TRIPLES', info['triples'])
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
try:
    for line in open('/proc/self/status'):
        if line.startswith('VmHWM:'):
            peak = int(line.split()[1])
except OSError:
    pass
print('PEAK_KB', peak)
"""


def main() -> int:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_UNIVERSITIES
    ceiling_mb = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_CEILING_MB
    bundle = os.path.abspath("scale-smoke.reprobundle")

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    print(f"# streamed build: {universities} universities -> {bundle}")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(universities=universities, path=bundle)],
        env=env,
        capture_output=True,
        text=True,
    )
    sys.stderr.write(out.stderr)
    if out.returncode != 0:
        print("FAIL: streamed build exited nonzero")
        return 1
    values = dict(line.split() for line in out.stdout.split("\n") if line.strip())
    triples = int(values["TRIPLES"])
    peak_mb = int(values["PEAK_KB"]) / 1024
    print(f"# built {triples:,} triples, peak RSS {peak_mb:.0f} MB (ceiling {ceiling_mb} MB)")
    if triples < 50_000:
        print(f"FAIL: expected a ~10^5-triple corpus, generated {triples}")
        return 1
    if peak_mb > ceiling_mb:
        print(f"FAIL: streamed build peaked at {peak_mb:.0f} MB > {ceiling_mb} MB ceiling")
        return 1

    # The artifact must actually serve: load + one search, in-process.
    from repro.core.engine import KeywordSearchEngine

    engine = KeywordSearchEngine.load(bundle, attach_wal=False)
    result = engine.search("professor department0")
    if not result.candidates:
        print("FAIL: search over the streamed bundle returned no candidates")
        return 1
    print(f"# search ok: {len(result.candidates)} candidates, best cost {result.best().cost:.2f}")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )
    sys.exit(main())
