"""Setuptools packaging for the reproduction.

The core is dependency-free on purpose — ``pip install repro`` pulls in
nothing, and every subsystem degrades gracefully.  The ``fast`` extra
opts into the numpy-vectorized exploration kernels
(:mod:`repro.core.kernels`); without it the engine runs the scalar
reference path with identical output.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "__init__.py")) as fh:
        match = re.search(r'^__version__ = "([^"]+)"', fh.read(), re.M)
    return match.group(1)


setup(
    name="repro",
    version=_version(),
    description=(
        "Top-k exploration of query candidates for keyword search on "
        "graph-shaped (RDF) data"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    install_requires=[],
    extras_require={
        # numpy accelerates the exploration hot loops (CSR ndarray views,
        # batched completion-bound sweeps); output stays byte-identical.
        "fast": ["numpy"],
        "dev": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
