"""Keyword search over a LUBM-style university knowledge base.

Shows the approach on a deeper class hierarchy than DBLP (Professor ⊑
Faculty ⊑ Employee ⊑ Person, …): class keywords ("professor", "student"),
relation keywords ("advisor", "teaches"), and the augmented summary graph
growing with the query.  Also demonstrates projection: choosing the
distinguished variables of a computed query before execution.

Run:  python examples/university_search.py
"""

from repro import KeywordSearchEngine
from repro.datasets import LubmConfig, generate_lubm


def main() -> None:
    graph = generate_lubm(LubmConfig(universities=2))
    stats = graph.stats()
    print(f"LUBM-style graph: {stats['triples']} triples, "
          f"{stats['classes']} classes, {stats['relation_labels']} relations")

    engine = KeywordSearchEngine(graph, cost_model="c3", k=8)
    print(f"Summary graph: {engine.summary}\n")

    queries = [
        "professor department0",  # class + value
        "advisor graduate",  # relation + class
        "student course",  # class + class
        "publication fullprofessor0",  # class + value
    ]
    for q in queries:
        result = engine.search(q)
        print(f"== {q!r}  ({1000 * result.timings['total']:.1f} ms, "
              f"{len(result)} interpretations)")
        for candidate in list(result)[:3]:
            print(f"  rank {candidate.rank}  cost {candidate.cost:6.2f}  {candidate.query}")
        print()

    # Projection: run the best 'advisor graduate' query but only return the
    # professor variable, as the paper's final remarks describe.
    result = engine.search("advisor graduate")
    best = result.best()
    if best is not None:
        query = best.query
        # Distinguish only the first variable of the advisor atom.
        advisor_atoms = [a for a in query.atoms if a.predicate.value.endswith("advisor")]
        if advisor_atoms and advisor_atoms[0].variables:
            projected = query.project([advisor_atoms[0].variables[-1]])
            print("Projected query (distinguished variable = the advisor):")
            print(f"  {projected}")
            answers = engine.execute(projected, limit=5)
            for answer in answers:
                names = [graph.label_of(t) for t in answer.values]
                print(f"  -> {names}")


if __name__ == "__main__":
    main()
