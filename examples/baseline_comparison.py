"""Our query-computation engine vs. the answer-computation baselines.

Runs the same keyword queries through four systems — our top-k query
computation (summary-graph exploration + database execution), BANKS
backward search, Kacholia bidirectional search, and the BLINKS-style
partition-index search — and reports wall-clock time and what each
returns.  This is a scaled-down interactive version of the Fig. 5
benchmark (``benchmarks/test_fig5_comparison.py`` regenerates the full
figure).

Run:  python examples/baseline_comparison.py
"""

import time

from repro import KeywordSearchEngine
from repro.baselines import (
    BackwardSearch,
    BidirectionalSearch,
    EntityGraphView,
    PartitionedIndexSearch,
)
from repro.datasets import DblpConfig, generate_dblp


def main() -> None:
    graph = generate_dblp(DblpConfig(publications=1500))
    print(f"Dataset: {graph.stats()['triples']} triples\n")

    engine = KeywordSearchEngine(graph, cost_model="c3", k=10)
    view = EntityGraphView(graph)
    systems = {
        "backward (BANKS)": BackwardSearch(view),
        "bidirectional": BidirectionalSearch(view),
        "300-BFS (BLINKS-style)": PartitionedIndexSearch(view, blocks=300, partitioner="bfs"),
        "300-METIS (BLINKS-style)": PartitionedIndexSearch(view, blocks=300, partitioner="metis"),
    }

    queries = ["cimiano 2006", "icde database index 2000", "wang tran keyword search 2006 icde"]
    for q in queries:
        print(f"== keyword query: {q!r}")

        started = time.perf_counter()
        ours = engine.search_and_execute(q, k=10, min_answers=10)
        our_time = time.perf_counter() - started
        print(f"  {'ours (query computation)':28s} {1000 * our_time:8.1f} ms   "
              f"{len(ours['result'])} queries, {len(ours['answers'])} answers")
        best = ours["result"].best()
        if best is not None:
            print(f"    top query: {best.query}")

        for name, system in systems.items():
            started = time.perf_counter()
            result = system.search(q.split(), k=10)
            elapsed = time.perf_counter() - started
            print(f"  {name:28s} {1000 * elapsed:8.1f} ms   "
                  f"{len(result)} answer trees, visited {result.nodes_visited} nodes")
        print()

    print("Note the structural difference: the baselines return answer")
    print("*trees* rooted at single nodes; our system returns *queries*")
    print("whose execution retrieves every matching answer, including ones")
    print("the distinct-root assumption cannot produce (Section VI-D).")


if __name__ == "__main__":
    main()
