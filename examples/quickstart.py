"""Quickstart: the paper's running example, end to end.

Builds the Fig. 1a data graph (publications, researchers, institutes),
searches for ``2006 cimiano aifb``, and shows everything the system
produces: ranked conjunctive queries, their SPARQL/SQL renderings, the
natural-language gloss the demo UI presented, and the answers the store
returns for the chosen query — the full "compute queries, let the user
pick, let the database answer" paradigm.

Run:  python examples/quickstart.py
"""

from repro import KeywordSearchEngine
from repro.datasets import running_example_graph


def main() -> None:
    graph = running_example_graph()
    print(f"Data graph: {graph}")
    print(f"Classes: {sorted(graph.label_of(c) for c in graph.classes)}")
    print()

    engine = KeywordSearchEngine(graph, cost_model="c3", k=5)
    summary = engine.summary
    print(f"Summary graph (the exploration space): {summary}")
    print(f"  — {len(graph)} triples summarized into {len(summary)} elements")
    print()

    result = engine.search("2006 cimiano aifb", k=5)
    print(f"Keyword query: {result.keywords}  "
          f"({1000 * result.timings['total']:.1f} ms total)")
    print()

    for candidate in result:
        print(f"Rank {candidate.rank}  (cost {candidate.cost:.2f})")
        print(f"  NL     : {candidate.verbalize()}")
        print(f"  CQ     : {candidate.query}")
        print(f"  SPARQL : {candidate.to_sparql().replace(chr(10), chr(10) + '           ')}")
        print()

    best = result.best()
    print("Fig. 1c check — the top-ranked query is the paper's example query.")
    print("Its single-table SQL rendering (Fig. 1c, bottom):")
    print(best.to_sql())
    print()

    answers = engine.execute(best)
    print(f"Answers ({len(answers)}):")
    for answer in answers:
        bindings = ", ".join(f"{v}={graph.label_of(t)}" for v, t in answer.as_dict().items())
        print(f"  {bindings}")


if __name__ == "__main__":
    main()
