"""Bibliographic keyword search over a DBLP-shaped dataset.

The scenario the paper's evaluation is built on: a user who knows authors,
venues, topics, and years — but not the schema — asks keyword queries and
picks among the computed interpretations.  Demonstrates:

* ambiguous keywords producing multiple ranked interpretations
  ("cimiano" also matches the decoy person "Ana Cimiano Rivera");
* imprecise matching — the typo "cimano" and the synonym "paper"
  (for the Publication class) still resolve;
* the cost models disagreeing on ranks (C1 vs C3);
* executing a chosen query to get actual publications.

Run:  python examples/bibliographic_search.py
"""

from repro import KeywordSearchEngine
from repro.datasets import DblpConfig, generate_dblp


def show(result, engine, limit=3):
    for candidate in list(result)[:limit]:
        print(f"  rank {candidate.rank}  cost {candidate.cost:6.2f}  {candidate.verbalize()}")
    if result.ignored_keywords:
        print(f"  (ignored keywords: {result.ignored_keywords})")
    print()


def main() -> None:
    graph = generate_dblp(DblpConfig(publications=1200))
    print(f"DBLP-shaped graph: {graph.stats()['triples']} triples, "
          f"{len(graph.classes)} classes")
    engine = KeywordSearchEngine(graph, cost_model="c3", k=10)
    print(f"Indices built in {engine.preprocessing_seconds:.2f}s; "
          f"summary graph has {len(engine.summary)} elements\n")

    print("== 'cimiano publications' — author search with a decoy")
    show(engine.search("cimiano publications"), engine)

    print("== 'cimano 2006' — typo, resolved by Levenshtein matching")
    show(engine.search("cimano 2006"), engine)

    print("== 'paper icde' — 'paper' matches class Publication via synonym")
    show(engine.search("paper icde"), engine)

    print("== 'algorithm 1999' — topic search (the paper's Fig. 4 example)")
    result = engine.search("algorithm 1999")
    show(result, engine)

    best = result.best()
    print("Executing the top interpretation:")
    print(f"  {best.to_sparql()}")
    answers = engine.execute(best, limit=5)
    for answer in answers:
        values = {str(v): graph.label_of(t) for v, t in answer.as_dict().items()}
        print(f"  -> {values}")
    print()

    print("== Cost models disagree under ambiguity ('tran icde'):")
    for model in ("c1", "c3"):
        alt = KeywordSearchEngine(
            graph,
            cost_model=model,
            k=5,
            summary=engine.summary,
            keyword_index=engine.keyword_index,
        )
        top = alt.search("tran icde").best()
        print(f"  {model}: {top.verbalize() if top else '(none)'}")


if __name__ == "__main__":
    main()
