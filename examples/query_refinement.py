"""Query refinement: the workflow the paper's demo (SearchWebDB) supports.

Section I argues that presenting *queries* (not answers) lets the user
refine precisely.  This example scripts that interaction: search, inspect
the ranked interpretations as NL + SPARQL, then refine the chosen query
programmatically — adding a constraint, swapping a constant, projecting
variables — and re-execute, all without another keyword round-trip.

Run:  python examples/query_refinement.py
"""

from repro import Atom, ConjunctiveQuery, KeywordSearchEngine, Literal
from repro.datasets import DblpConfig, generate_dblp
from repro.datasets.dblp import DBLP


def main() -> None:
    graph = generate_dblp(DblpConfig(publications=1200))
    engine = KeywordSearchEngine(graph, cost_model="c3", k=8)

    print("Step 1 — keyword search: 'database 2003'")
    result = engine.search("database 2003")
    for candidate in list(result)[:4]:
        print(f"  rank {candidate.rank}: {candidate.verbalize()}")
    print()

    chosen = result.best()
    print("Step 2 — user picks rank 1; the system shows the structured query:")
    print(f"  {chosen.to_sparql()}\n")

    answers = engine.execute(chosen)
    print(f"Step 3 — execute: {len(answers)} answers\n")

    # Refinement 1: restrict to ICDE (add presentedAt + name atoms).
    print("Step 4 — refine: 'only results presented at ICDE'")
    query = chosen.query
    x = query.atoms[0].variables[0]  # the publication variable
    from repro.rdf.terms import Variable

    venue = Variable("venue")
    refined = ConjunctiveQuery(
        list(query.atoms)
        + [
            Atom(DBLP.presentedAt, x, venue),
            Atom(DBLP.name, venue, Literal("ICDE")),
        ],
        distinguished=query.distinguished,
    )
    print(f"  {refined}")
    refined_answers = engine.execute(refined)
    print(f"  -> {len(refined_answers)} answers after refinement\n")

    # Refinement 2: swap the year constant (2003 -> 2004) without re-search.
    print("Step 5 — refine: change the year constant to 2004")
    swapped_atoms = [
        Atom(a.predicate, a.arg1, Literal("2004"))
        if a.predicate == DBLP.year
        else a
        for a in query.atoms
    ]
    swapped = ConjunctiveQuery(swapped_atoms, distinguished=query.distinguished)
    print(f"  {swapped}")
    print(f"  -> {len(engine.execute(swapped))} answers\n")

    # Refinement 3: project to just the publication variable.
    print("Step 6 — project: return only the publication")
    projected = query.project([x])
    sample = engine.execute(projected, limit=5)
    for answer in sample:
        print(f"  -> {graph.label_of(answer.values[0])}")


if __name__ == "__main__":
    main()
