"""RDF substrate: terms, triples, the data graph of Definition 1, and I/O.

This package implements the graph-shaped data model the paper builds on.
It is self-contained (no rdflib): terms are interned, hashable values;
:class:`~repro.rdf.graph.DataGraph` classifies vertices into E/C/V-vertices
and edges into relation/attribute/type/subclass edges exactly as Definition 1
of the paper prescribes.
"""

from repro.rdf.terms import URI, Literal, BNode, Term, Variable
from repro.rdf.triples import Triple
from repro.rdf.namespace import Namespace, RDF, RDFS, XSD, local_name
from repro.rdf.graph import (
    DataGraph,
    EdgeKind,
    VertexKind,
    GraphIntegrityError,
)
from repro.rdf.ntriples import (
    parse_ntriples,
    serialize_ntriples,
    NTriplesParseError,
)

__all__ = [
    "URI",
    "Literal",
    "BNode",
    "Term",
    "Variable",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "local_name",
    "DataGraph",
    "EdgeKind",
    "VertexKind",
    "GraphIntegrityError",
    "parse_ntriples",
    "serialize_ntriples",
    "NTriplesParseError",
]
