"""The RDF triple: the atomic statement of the data graph."""

from __future__ import annotations

from typing import Iterator

from repro.rdf.terms import Term, URI, Literal, BNode


class Triple:
    """An RDF statement ``(subject, predicate, object)``.

    Subjects are URIs or blank nodes, predicates are URIs, and objects may be
    any non-variable term.  Triples are immutable value objects and iterate
    like 3-tuples so they unpack naturally::

        s, p, o = triple
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: URI, obj: Term):
        if not isinstance(subject, (URI, BNode)):
            raise TypeError(
                f"triple subject must be URI or BNode, got {type(subject).__name__}"
            )
        if not isinstance(predicate, URI):
            raise TypeError(
                f"triple predicate must be URI, got {type(predicate).__name__}"
            )
        if not isinstance(obj, (URI, BNode, Literal)):
            raise TypeError(
                f"triple object must be URI, BNode or Literal, got {type(obj).__name__}"
            )
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)
        # Cached like the terms' hashes: triples key every index (graph,
        # store, buckets), so each one is hashed many times over its life.
        object.__setattr__(self, "_hash", hash((subject, predicate, obj)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Triple is immutable")

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __eq__(self, other):
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."
