"""RDF terms: URIs, literals, blank nodes, and query variables.

Terms are immutable and hashable so they can serve as graph-vertex keys and
dictionary keys throughout the library.  ``Variable`` is included here (rather
than in the query package) because conjunctive-query atoms mix variables and
constants freely (Definition 2 of the paper).
"""

from __future__ import annotations

from typing import Optional


class Term:
    """Base class for all RDF terms.

    Subclasses are value objects: equality and hashing are structural, and
    instances are immutable after construction.
    """

    __slots__ = ()

    @property
    def is_uri(self) -> bool:
        return isinstance(self, URI)

    @property
    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    @property
    def is_bnode(self) -> bool:
        return isinstance(self, BNode)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def n3(self) -> str:
        """Render the term in N-Triples / N3 surface syntax."""
        raise NotImplementedError


class URI(Term):
    """A URI reference identifying an entity, class, or predicate.

    >>> URI("http://example.org/Person").n3()
    '<http://example.org/Person>'
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"URI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("URI value must be non-empty")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("URI", value)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("URI is immutable")

    def __eq__(self, other):
        return isinstance(other, URI) and other.value == self.value

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"URI({self.value!r})"

    def __str__(self):
        return self.value

    def n3(self) -> str:
        return f"<{self.value}>"


class Literal(Term):
    """A data value (the paper's V-vertices carry literals as labels).

    Literals compare by lexical form plus datatype plus language tag, which is
    the RDF 1.1 notion of literal term equality.

    >>> Literal("2006").lexical
    '2006'
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(
        self,
        lexical: str,
        datatype: Optional[URI] = None,
        language: Optional[str] = None,
    ):
        if not isinstance(lexical, str):
            lexical = str(lexical)
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot carry both datatype and language")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(
            self, "_hash", hash(("Literal", lexical, datatype, language))
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Literal is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        parts = [repr(self.lexical)]
        if self.datatype is not None:
            parts.append(f"datatype={self.datatype!r}")
        if self.language is not None:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self):
        return self.lexical

    #: Characters that must be \uXXXX-escaped beyond the named escapes:
    #: C0 controls plus the Unicode line boundaries str.splitlines honors.
    _UNSAFE = frozenset(
        chr(c) for c in range(0x20) if chr(c) not in "\t\n\r"
    ) | {"\x85", "\u2028", "\u2029"}

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if any(ch in Literal._UNSAFE for ch in escaped):
            escaped = "".join(
                f"\\u{ord(ch):04x}" if ch in Literal._UNSAFE else ch
                for ch in escaped
            )
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def as_python(self):
        """Best-effort conversion to a Python value based on the datatype."""
        if self.datatype is not None:
            dt = self.datatype.value
            if dt.endswith(("#integer", "#int", "#long")):
                return int(self.lexical)
            if dt.endswith(("#decimal", "#double", "#float")):
                return float(self.lexical)
            if dt.endswith("#boolean"):
                return self.lexical in ("true", "1")
        return self.lexical


class BNode(Term):
    """A blank node: an entity without a global identifier."""

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: Optional[str] = None):
        if label is None:
            BNode._counter += 1
            label = f"b{BNode._counter}"
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("BNode", label)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("BNode is immutable")

    def __eq__(self, other):
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"BNode({self.label!r})"

    def __str__(self):
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"


class Variable(Term):
    """A query variable (``?x`` in SPARQL surface syntax)."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("variable name must be a non-empty string")
        if name.startswith("?"):
            name = name[1:]
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Variable is immutable")

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"
