"""The data graph of Definition 1.

A :class:`DataGraph` holds a set of triples and classifies

* vertices into **E-vertices** (entities), **C-vertices** (classes) and
  **V-vertices** (data values), and
* edges into **R-edges** (inter-entity relations, ``L_R``), **A-edges**
  (entity-attribute assignments, ``L_A``), and the two special edges
  ``type`` and ``subclass``

exactly as Definition 1 of the paper prescribes.  The classification is
derived, not declared: any URI that occurs as the object of a ``type`` edge
or on either side of a ``subclass`` edge is a C-vertex; literals are
V-vertices; remaining URIs/blank nodes are E-vertices.

The graph is fully dynamic: triples may be added *and removed*, and the
derived classification is maintained incrementally through per-term role
reference counts — a term is a class while any type/subclass triple
supports that role, an entity while it occurs in an entity position and is
not a class, and so on.  This is what lets the offline indexes (keyword
index, summary graph, triple store) be maintained by deltas instead of
rebuilt (see :mod:`repro.maintenance`).

Real-world RDF violates the disjointness Definition 1 assumes (a URI may be
used both as a class and as an entity).  The constructor resolves such
conflicts with a documented precedence (class wins) and records them; strict
mode raises :class:`GraphIntegrityError` instead.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.namespace import (
    LABEL_PREDICATES,
    SUBCLASS_PREDICATES,
    TYPE_PREDICATES,
    local_name,
)
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triples import Triple


class VertexKind(Enum):
    """The three disjoint vertex sets of Definition 1."""

    ENTITY = "entity"  # V_E
    CLASS = "class"  # V_C
    VALUE = "value"  # V_V


class EdgeKind(Enum):
    """The four edge-label sets of Definition 1."""

    RELATION = "relation"  # L_R : E-vertex -> E-vertex
    ATTRIBUTE = "attribute"  # L_A : E-vertex -> V-vertex
    TYPE = "type"  # type : E-vertex -> C-vertex
    SUBCLASS = "subclass"  # subclass : C-vertex -> C-vertex


class GraphIntegrityError(ValueError):
    """Raised in strict mode when triples violate Definition 1."""


class DataGraph:
    """An RDF data graph with the vertex/edge classification of Definition 1.

    Parameters
    ----------
    triples:
        Optional initial triples.
    strict:
        If true, triples that violate Definition 1 (e.g. a literal-valued
        ``type`` edge, or a term used both as class and entity) raise
        :class:`GraphIntegrityError`.  If false (default), conflicts are
        resolved by precedence — class beats entity — and recorded in
        :attr:`conflicts`.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, strict: bool = False):
        self.strict = strict
        # Insertion-ordered triple set (dict keys preserve order, O(1) remove).
        self._triples: Dict[Triple, None] = {}

        # Role reference counts: how many stored triples support each role.
        self._entity_refs: Dict[Term, int] = defaultdict(int)
        self._class_refs: Dict[Term, int] = defaultdict(int)
        self._value_refs: Dict[Literal, int] = defaultdict(int)

        # Vertex classification, derived from the refcounts (class wins).
        self._classes: Set[Term] = set()
        self._entities: Set[Term] = set()
        self._values: Set[Literal] = set()
        self._untyped: Set[Term] = set()

        # type / subclass structure, with per-pair refcounts so the same
        # (subject, object) pair asserted through several predicate
        # variants survives partial removal.
        self._type_pair_refs: Dict[Tuple[Term, Term], int] = defaultdict(int)
        self._subclass_pair_refs: Dict[Tuple[Term, Term], int] = defaultdict(int)
        self._types_of: Dict[Term, Set[Term]] = defaultdict(set)
        self._instances_of: Dict[Term, Set[Term]] = defaultdict(set)
        self._superclasses: Dict[Term, Set[Term]] = defaultdict(set)
        self._subclasses: Dict[Term, Set[Term]] = defaultdict(set)

        # Adjacency over non-type edges: subject -> {(predicate, object)} and
        # object -> {(predicate, subject)} as insertion-ordered dicts, so a
        # single removal is O(1) instead of an O(degree) list scan (pairs
        # are unique per vertex because triples are deduplicated).
        self._out: Dict[Term, Dict[Tuple[URI, Term], None]] = defaultdict(dict)
        self._in: Dict[Term, Dict[Tuple[URI, Term], None]] = defaultdict(dict)

        # Per-predicate triple sets (insertion-ordered), bucketed by kind.
        self._relation_triples: Dict[URI, Dict[Triple, None]] = defaultdict(dict)
        self._attribute_triples: Dict[URI, Dict[Triple, None]] = defaultdict(dict)

        # Labels: entity -> preferred human-readable label.
        self._labels: Dict[Term, str] = {}
        self._label_rank: Dict[Term, int] = {}

        # Which concrete type/subclass predicate variants the data uses,
        # so generated queries stay evaluable against this graph.
        self._type_pred_counts: Dict[URI, int] = defaultdict(int)
        self._subclass_pred_counts: Dict[URI, int] = defaultdict(int)

        self.conflicts: List[str] = []

        if triples is not None:
            for t in triples:
                self.add(t)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns False if it was already present.

        In strict mode, Definition 1 violations are detected *before* any
        state is touched, so a raised :class:`GraphIntegrityError` leaves
        the graph exactly as it was (no partial role refcounts).
        """
        if triple in self._triples:
            return False
        if self.strict:
            self._check_strict(triple)

        s, p, o = triple
        if p in TYPE_PREDICATES:
            self._add_type(triple)
        elif p in SUBCLASS_PREDICATES:
            self._add_subclass(triple)
        elif isinstance(o, Literal):
            self._add_attribute(triple)
        else:
            self._add_relation(triple)

        self._triples[triple] = None
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def _check_strict(self, triple: Triple) -> None:
        """Raise on any Definition 1 violation this triple would commit,
        without mutating — mirrors the conflict rules of the ``_acquire_*``
        helpers so strict adds are atomic."""
        s, p, o = triple
        if p in TYPE_PREDICATES:
            if isinstance(o, Literal):
                raise GraphIntegrityError(f"type edge with literal object: {triple.n3()}")
            if s == o:
                raise GraphIntegrityError(f"term used both as entity and class: {s}")
            if s in self._classes:
                raise GraphIntegrityError(f"term used both as class and entity: {s}")
            if o in self._entities:
                raise GraphIntegrityError(f"term used both as entity and class: {o}")
        elif p in SUBCLASS_PREDICATES:
            if isinstance(s, Literal) or isinstance(o, Literal):
                raise GraphIntegrityError(
                    f"subclass edge with literal endpoint: {triple.n3()}"
                )
            for term in (s, o):
                if term in self._entities:
                    raise GraphIntegrityError(
                        f"term used both as entity and class: {term}"
                    )
        elif isinstance(o, Literal):
            if s in self._classes:
                raise GraphIntegrityError(f"term used both as class and entity: {s}")
        else:
            for term in (s, o):
                if term in self._classes:
                    raise GraphIntegrityError(
                        f"term used both as class and entity: {term}"
                    )

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; returns False if it was not present.

        The derived classification is unwound incrementally: roles lose one
        reference each, and a term whose class role disappears falls back
        to being an entity if entity-positioned triples still mention it.
        """
        if triple not in self._triples:
            return False

        s, p, o = triple
        if p in TYPE_PREDICATES:
            self._remove_type(triple)
        elif p in SUBCLASS_PREDICATES:
            self._remove_subclass(triple)
        elif isinstance(o, Literal):
            self._remove_attribute(triple)
        else:
            self._remove_relation(triple)

        del self._triples[triple]
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove many triples; returns the number actually removed."""
        return sum(1 for t in triples if self.remove(t))

    # -- per-kind add/remove -------------------------------------------

    def _add_type(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(o, Literal):
            self._violation(f"type edge with literal object: {triple.n3()}")
            return
        self._acquire_entity(s)
        self._acquire_class(o)
        pair = (s, o)
        self._type_pair_refs[pair] += 1
        if self._type_pair_refs[pair] == 1:
            self._types_of[s].add(o)
            self._instances_of[o].add(s)
            self._untyped.discard(s)
        self._type_pred_counts[p] += 1

    def _remove_type(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(o, Literal):
            return  # was never classified
        pair = (s, o)
        self._type_pair_refs[pair] -= 1
        if self._type_pair_refs[pair] == 0:
            del self._type_pair_refs[pair]
            self._types_of[s].discard(o)
            self._instances_of[o].discard(s)
            if s in self._entities and not self._types_of.get(s):
                self._untyped.add(s)
        self._type_pred_counts[p] -= 1
        if self._type_pred_counts[p] == 0:
            del self._type_pred_counts[p]
        self._release_class(o)
        self._release_entity(s)

    def _add_subclass(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(s, Literal) or isinstance(o, Literal):
            self._violation(f"subclass edge with literal endpoint: {triple.n3()}")
            return
        self._acquire_class(s)
        self._acquire_class(o)
        pair = (s, o)
        self._subclass_pair_refs[pair] += 1
        if self._subclass_pair_refs[pair] == 1:
            self._superclasses[s].add(o)
            self._subclasses[o].add(s)
        self._subclass_pred_counts[p] += 1

    def _remove_subclass(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(s, Literal) or isinstance(o, Literal):
            return
        pair = (s, o)
        self._subclass_pair_refs[pair] -= 1
        if self._subclass_pair_refs[pair] == 0:
            del self._subclass_pair_refs[pair]
            self._superclasses[s].discard(o)
            self._subclasses[o].discard(s)
        self._subclass_pred_counts[p] -= 1
        if self._subclass_pred_counts[p] == 0:
            del self._subclass_pred_counts[p]
        self._release_class(o)
        self._release_class(s)

    def _add_attribute(self, triple: Triple) -> None:
        s, p, o = triple
        self._acquire_entity(s)
        self._acquire_value(o)
        self._attribute_triples[p][triple] = None
        self._out[s][(p, o)] = None
        self._in[o][(p, s)] = None
        self._maybe_label(s, p, o)

    def _remove_attribute(self, triple: Triple) -> None:
        s, p, o = triple
        bucket = self._attribute_triples[p]
        del bucket[triple]
        if not bucket:
            del self._attribute_triples[p]
        del self._out[s][(p, o)]
        del self._in[o][(p, s)]
        if p in LABEL_PREDICATES and self._labels.get(s) == o.lexical:
            self._recompute_label(s)
        self._release_value(o)
        self._release_entity(s)

    def _add_relation(self, triple: Triple) -> None:
        s, p, o = triple
        self._acquire_entity(s)
        self._acquire_entity(o)
        self._relation_triples[p][triple] = None
        self._out[s][(p, o)] = None
        self._in[o][(p, s)] = None

    def _remove_relation(self, triple: Triple) -> None:
        s, p, o = triple
        bucket = self._relation_triples[p]
        del bucket[triple]
        if not bucket:
            del self._relation_triples[p]
        del self._out[s][(p, o)]
        del self._in[o][(p, s)]
        self._release_entity(o)
        self._release_entity(s)

    # -- role reference counting ---------------------------------------

    def _acquire_entity(self, term: Term) -> None:
        self._entity_refs[term] += 1
        if term in self._classes:
            # Class role wins; keep the term out of the entity set.
            self._violation(f"term used both as class and entity: {term}")
            return
        if term not in self._entities:
            self._entities.add(term)
            if not self._types_of.get(term):
                self._untyped.add(term)

    def _release_entity(self, term: Term) -> None:
        self._entity_refs[term] -= 1
        if self._entity_refs[term] == 0:
            del self._entity_refs[term]
            self._entities.discard(term)
            self._untyped.discard(term)

    def _acquire_class(self, term: Term) -> None:
        self._class_refs[term] += 1
        if term in self._entities:
            self._violation(f"term used both as entity and class: {term}")
            self._entities.discard(term)
            self._untyped.discard(term)
        self._classes.add(term)

    def _release_class(self, term: Term) -> None:
        self._class_refs[term] -= 1
        if self._class_refs[term] == 0:
            del self._class_refs[term]
            self._classes.discard(term)
            if self._entity_refs.get(term, 0) > 0:
                # The entity role resurfaces once the class role is gone.
                self._entities.add(term)
                if not self._types_of.get(term):
                    self._untyped.add(term)

    def _acquire_value(self, literal: Literal) -> None:
        self._value_refs[literal] += 1
        self._values.add(literal)

    def _release_value(self, literal: Literal) -> None:
        self._value_refs[literal] -= 1
        if self._value_refs[literal] == 0:
            del self._value_refs[literal]
            self._values.discard(literal)

    # -- labels ---------------------------------------------------------

    def _maybe_label(self, s: Term, p: URI, o: Literal) -> None:
        try:
            rank = LABEL_PREDICATES.index(p)
        except ValueError:
            return
        if s not in self._labels or rank < self._label_rank[s]:
            self._labels[s] = o.lexical
            self._label_rank[s] = rank

    def _recompute_label(self, s: Term) -> None:
        """Re-derive a subject's preferred label after a label triple left."""
        self._labels.pop(s, None)
        self._label_rank.pop(s, None)
        for p, o in self._out.get(s, ()):
            if isinstance(o, Literal):
                self._maybe_label(s, p, o)

    def _violation(self, message: str) -> None:
        if self.strict:
            raise GraphIntegrityError(message)
        self.conflicts.append(message)

    # ------------------------------------------------------------------
    # Size / membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def triples(self) -> Tuple[Triple, ...]:
        return tuple(self._triples)

    # ------------------------------------------------------------------
    # Vertex classification (Definition 1)
    # ------------------------------------------------------------------

    def vertex_kind(self, term: Term) -> Optional[VertexKind]:
        """Classify a term, or None if it does not occur as a vertex."""
        if term in self._classes:
            return VertexKind.CLASS
        if term in self._entities:
            return VertexKind.ENTITY
        if isinstance(term, Literal) and term in self._values:
            return VertexKind.VALUE
        return None

    @property
    def classes(self) -> FrozenSet[Term]:
        """The C-vertices."""
        return frozenset(self._classes)

    @property
    def entities(self) -> FrozenSet[Term]:
        """The E-vertices."""
        return frozenset(self._entities)

    @property
    def values(self) -> FrozenSet[Literal]:
        """The V-vertices (shared literal nodes)."""
        return frozenset(self._values)

    # ------------------------------------------------------------------
    # Edge classification (Definition 1)
    # ------------------------------------------------------------------

    def edge_kind(self, triple: Triple) -> EdgeKind:
        p = triple.predicate
        if p in TYPE_PREDICATES:
            return EdgeKind.TYPE
        if p in SUBCLASS_PREDICATES:
            return EdgeKind.SUBCLASS
        if isinstance(triple.object, Literal):
            return EdgeKind.ATTRIBUTE
        return EdgeKind.RELATION

    @property
    def relation_labels(self) -> FrozenSet[URI]:
        """The edge labels L_R."""
        return frozenset(self._relation_triples)

    @property
    def attribute_labels(self) -> FrozenSet[URI]:
        """The edge labels L_A."""
        return frozenset(self._attribute_triples)

    def has_relation_label(self, label: URI) -> bool:
        """O(1): does any stored R-edge carry this label?"""
        return label in self._relation_triples

    def has_attribute_label(self, label: URI) -> bool:
        """O(1): does any stored A-edge carry this label?"""
        return label in self._attribute_triples

    def relation_triples(self, label: Optional[URI] = None) -> Iterator[Triple]:
        """All R-edge triples, optionally restricted to one label."""
        if label is not None:
            yield from self._relation_triples.get(label, ())
        else:
            for triples in self._relation_triples.values():
                yield from triples

    def attribute_triples(self, label: Optional[URI] = None) -> Iterator[Triple]:
        """All A-edge triples, optionally restricted to one label."""
        if label is not None:
            yield from self._attribute_triples.get(label, ())
        else:
            for triples in self._attribute_triples.values():
                yield from triples

    # ------------------------------------------------------------------
    # type / subclass structure
    # ------------------------------------------------------------------

    def types_of(self, entity: Term) -> FrozenSet[Term]:
        """The classes an entity is directly typed with (may be empty)."""
        return frozenset(self._types_of.get(entity, ()))

    def instances_of(self, cls: Term) -> FrozenSet[Term]:
        """The entities directly typed with a class."""
        return frozenset(self._instances_of.get(cls, ()))

    def superclasses_of(self, cls: Term, transitive: bool = False) -> FrozenSet[Term]:
        """Direct (or transitive) superclasses of a class."""
        if not transitive:
            return frozenset(self._superclasses.get(cls, ()))
        seen: Set[Term] = set()
        stack = list(self._superclasses.get(cls, ()))
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self._superclasses.get(c, ()))
        return frozenset(seen)

    def subclasses_of(self, cls: Term, transitive: bool = False) -> FrozenSet[Term]:
        """Direct (or transitive) subclasses of a class."""
        if not transitive:
            return frozenset(self._subclasses.get(cls, ()))
        seen: Set[Term] = set()
        stack = list(self._subclasses.get(cls, ()))
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self._subclasses.get(c, ()))
        return frozenset(seen)

    def subclass_pairs(self) -> Iterator[Tuple[Term, Term]]:
        """All direct ``(subclass, superclass)`` pairs."""
        for sub, supers in self._superclasses.items():
            for sup in supers:
                yield sub, sup

    @property
    def preferred_type_predicate(self) -> URI:
        """The ``type`` predicate variant the data actually uses (most
        frequent wins; defaults to ``rdf:type``)."""
        if self._type_pred_counts:
            return max(
                self._type_pred_counts.items(), key=lambda kv: (kv[1], kv[0].value)
            )[0]
        from repro.rdf.namespace import RDF

        return RDF.type

    @property
    def preferred_subclass_predicate(self) -> URI:
        """The ``subclass`` predicate variant the data actually uses."""
        if self._subclass_pred_counts:
            return max(
                self._subclass_pred_counts.items(), key=lambda kv: (kv[1], kv[0].value)
            )[0]
        from repro.rdf.namespace import RDFS

        return RDFS.subClassOf

    @property
    def untyped_entities(self) -> FrozenSet[Term]:
        """Entities with no ``type`` edge — aggregated into ``Thing``."""
        return frozenset(self._untyped)

    @property
    def untyped_entity_count(self) -> int:
        """O(1) count of untyped entities (the ``Thing`` aggregation)."""
        return len(self._untyped)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def outgoing(self, vertex: Term) -> Tuple[Tuple[URI, Term], ...]:
        """Outgoing (predicate, object) pairs over R- and A-edges."""
        return tuple(self._out.get(vertex, ()))

    def incoming(self, vertex: Term) -> Tuple[Tuple[URI, Term], ...]:
        """Incoming (predicate, subject) pairs over R- and A-edges."""
        return tuple(self._in.get(vertex, ()))

    def attribute_occurrences(
        self, value: Literal
    ) -> Iterator[Tuple[URI, Term, FrozenSet[Term]]]:
        """For a V-vertex: its ``(A-edge label, entity, entity classes)`` uses.

        This is the raw material for the keyword index's
        ``[V-vertex, A-edge, (C-vertex_1..n)]`` structure (Section IV-A).
        """
        for p, s in self._in.get(value, ()):
            yield p, s, self.types_of(s)

    def label_of(self, term: Term) -> str:
        """A human-readable label: the entity's name/title/label attribute,
        a literal's lexical form, or the URI's local name."""
        if isinstance(term, Literal):
            return term.lexical
        if term in self._labels:
            return self._labels[term]
        if isinstance(term, URI):
            return local_name(term)
        return str(term)

    # ------------------------------------------------------------------
    # Persistence (used by repro.storage)
    # ------------------------------------------------------------------
    #
    # The derived classification is a pure function of the triples, but
    # re-deriving it costs one full `add()` replay — the per-triple
    # branching that dominates cold start.  The persistence layer instead
    # stores the *irreducible* state (triples in insertion order, role
    # refcounts, pair refcounts, adjacency, labels) and `from_state`
    # reconstitutes everything else from documented invariants:
    # classes == keys of the class refcounts, an entity is an
    # entity-positioned term that is not a class, untyped entities are
    # entities without a type pair.  tests/property/ enforces that a
    # restored graph is search- and maintenance-equivalent to a rebuilt
    # one.

    def state_for_persistence(self) -> Dict[str, object]:
        """Live references to the state :meth:`from_state` needs back.

        Callers must treat every container as read-only; the dict exists
        so the storage codec owns the byte format while this class owns
        the field list.
        """
        return {
            "strict": self.strict,
            "conflicts": self.conflicts,
            "triples": self._triples,
            "entity_refs": self._entity_refs,
            "class_refs": self._class_refs,
            "value_refs": self._value_refs,
            "type_pair_refs": self._type_pair_refs,
            "subclass_pair_refs": self._subclass_pair_refs,
            "out": self._out,
            "in": self._in,
            "relation_triples": self._relation_triples,
            "attribute_triples": self._attribute_triples,
            "labels": self._labels,
            "label_rank": self._label_rank,
            "type_pred_counts": self._type_pred_counts,
            "subclass_pred_counts": self._subclass_pred_counts,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DataGraph":
        """Reconstitute a graph from :meth:`state_for_persistence` shapes.

        The containers are adopted, not copied (the caller — the bundle
        loader — built them for this purpose): ``out``/``in`` must map
        vertices to ``{(predicate, other): None}`` dicts,
        ``relation_triples``/``attribute_triples`` must map predicates to
        ``{Triple: None}`` dicts sharing the Triple objects of
        ``triples``, and all orderings must be insertion order, which the
        codec preserves.
        """
        graph = cls.__new__(cls)
        graph.strict = bool(state["strict"])
        graph.conflicts = list(state["conflicts"])
        graph._triples = dict.fromkeys(state["triples"])

        graph._entity_refs = defaultdict(int, state["entity_refs"])
        graph._class_refs = defaultdict(int, state["class_refs"])
        graph._value_refs = defaultdict(int, state["value_refs"])
        graph._classes = set(graph._class_refs)
        graph._entities = {
            t for t in graph._entity_refs if t not in graph._classes
        }
        graph._values = set(graph._value_refs)

        graph._type_pair_refs = defaultdict(int, state["type_pair_refs"])
        graph._subclass_pair_refs = defaultdict(int, state["subclass_pair_refs"])
        types_of: Dict[Term, Set[Term]] = defaultdict(set)
        instances_of: Dict[Term, Set[Term]] = defaultdict(set)
        for entity, class_term in graph._type_pair_refs:
            types_of[entity].add(class_term)
            instances_of[class_term].add(entity)
        graph._types_of = types_of
        graph._instances_of = instances_of
        superclasses: Dict[Term, Set[Term]] = defaultdict(set)
        subclasses: Dict[Term, Set[Term]] = defaultdict(set)
        for sub, sup in graph._subclass_pair_refs:
            superclasses[sub].add(sup)
            subclasses[sup].add(sub)
        graph._superclasses = superclasses
        graph._subclasses = subclasses
        graph._untyped = {t for t in graph._entities if not types_of.get(t)}

        out: Dict[Term, Dict[Tuple[URI, Term], None]] = defaultdict(dict)
        out.update(state["out"])
        graph._out = out
        in_: Dict[Term, Dict[Tuple[URI, Term], None]] = defaultdict(dict)
        in_.update(state["in"])
        graph._in = in_
        graph._relation_triples = defaultdict(dict, state["relation_triples"])
        graph._attribute_triples = defaultdict(dict, state["attribute_triples"])

        graph._labels = dict(state["labels"])
        graph._label_rank = dict(state["label_rank"])
        graph._type_pred_counts = defaultdict(int, state["type_pred_counts"])
        graph._subclass_pred_counts = defaultdict(int, state["subclass_pred_counts"])
        return graph

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Structural counts used in the paper's Fig. 6b discussion."""
        return {
            "triples": len(self._triples),
            "entities": len(self._entities),
            "classes": len(self._classes),
            "values": len(self._values),
            "relation_labels": len(self._relation_triples),
            "attribute_labels": len(self._attribute_triples),
            "relation_edges": sum(len(v) for v in self._relation_triples.values()),
            "attribute_edges": sum(len(v) for v in self._attribute_triples.values()),
            "untyped_entities": len(self._untyped),
        }

    def __repr__(self):
        s = self.stats()
        return (
            f"DataGraph(triples={s['triples']}, entities={s['entities']}, "
            f"classes={s['classes']}, values={s['values']})"
        )
