"""The data graph of Definition 1.

A :class:`DataGraph` holds a set of triples and classifies

* vertices into **E-vertices** (entities), **C-vertices** (classes) and
  **V-vertices** (data values), and
* edges into **R-edges** (inter-entity relations, ``L_R``), **A-edges**
  (entity-attribute assignments, ``L_A``), and the two special edges
  ``type`` and ``subclass``

exactly as Definition 1 of the paper prescribes.  The classification is
derived, not declared: any URI that occurs as the object of a ``type`` edge
or on either side of a ``subclass`` edge is a C-vertex; literals are
V-vertices; remaining URIs/blank nodes are E-vertices.

Real-world RDF violates the disjointness Definition 1 assumes (a URI may be
used both as a class and as an entity).  The constructor resolves such
conflicts with a documented precedence (class wins) and records them; strict
mode raises :class:`GraphIntegrityError` instead.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.namespace import (
    LABEL_PREDICATES,
    SUBCLASS_PREDICATES,
    TYPE_PREDICATES,
    local_name,
)
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triples import Triple


class VertexKind(Enum):
    """The three disjoint vertex sets of Definition 1."""

    ENTITY = "entity"  # V_E
    CLASS = "class"  # V_C
    VALUE = "value"  # V_V


class EdgeKind(Enum):
    """The four edge-label sets of Definition 1."""

    RELATION = "relation"  # L_R : E-vertex -> E-vertex
    ATTRIBUTE = "attribute"  # L_A : E-vertex -> V-vertex
    TYPE = "type"  # type : E-vertex -> C-vertex
    SUBCLASS = "subclass"  # subclass : C-vertex -> C-vertex


class GraphIntegrityError(ValueError):
    """Raised in strict mode when triples violate Definition 1."""


class DataGraph:
    """An RDF data graph with the vertex/edge classification of Definition 1.

    The graph is append-only: triples may be added but not removed, which lets
    the derived classification be maintained incrementally.

    Parameters
    ----------
    triples:
        Optional initial triples.
    strict:
        If true, triples that violate Definition 1 (e.g. a literal-valued
        ``type`` edge, or a term used both as class and entity) raise
        :class:`GraphIntegrityError`.  If false (default), conflicts are
        resolved by precedence — class beats entity — and recorded in
        :attr:`conflicts`.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, strict: bool = False):
        self.strict = strict
        self._triples: List[Triple] = []
        self._triple_set: Set[Triple] = set()

        # Vertex classification.
        self._classes: Set[Term] = set()
        self._entities: Set[Term] = set()
        self._values: Set[Literal] = set()

        # type / subclass structure.
        self._types_of: Dict[Term, Set[Term]] = defaultdict(set)
        self._instances_of: Dict[Term, Set[Term]] = defaultdict(set)
        self._superclasses: Dict[Term, Set[Term]] = defaultdict(set)
        self._subclasses: Dict[Term, Set[Term]] = defaultdict(set)

        # Adjacency over non-type edges: subject -> [(predicate, object)] and
        # object -> [(predicate, subject)].
        self._out: Dict[Term, List[Tuple[URI, Term]]] = defaultdict(list)
        self._in: Dict[Term, List[Tuple[URI, Term]]] = defaultdict(list)

        # Per-predicate triple lists, bucketed by derived edge kind.
        self._relation_triples: Dict[URI, List[Triple]] = defaultdict(list)
        self._attribute_triples: Dict[URI, List[Triple]] = defaultdict(list)

        # Labels: entity -> preferred human-readable label.
        self._labels: Dict[Term, str] = {}
        self._label_rank: Dict[Term, int] = {}

        # Which concrete type/subclass predicate variants the data uses,
        # so generated queries stay evaluable against this graph.
        self._type_pred_counts: Dict[URI, int] = defaultdict(int)
        self._subclass_pred_counts: Dict[URI, int] = defaultdict(int)

        self.conflicts: List[str] = []

        if triples is not None:
            for t in triples:
                self.add(t)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns False if it was already present."""
        if triple in self._triple_set:
            return False

        s, p, o = triple
        if p in TYPE_PREDICATES:
            self._add_type(triple)
        elif p in SUBCLASS_PREDICATES:
            self._add_subclass(triple)
        elif isinstance(o, Literal):
            self._add_attribute(triple)
        else:
            self._add_relation(triple)

        self._triples.append(triple)
        self._triple_set.add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def _add_type(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(o, Literal):
            self._violation(f"type edge with literal object: {triple.n3()}")
            return
        self._mark_entity(s)
        self._mark_class(o)
        self._types_of[s].add(o)
        self._instances_of[o].add(s)
        self._type_pred_counts[p] += 1

    def _add_subclass(self, triple: Triple) -> None:
        s, p, o = triple
        if isinstance(s, Literal) or isinstance(o, Literal):
            self._violation(f"subclass edge with literal endpoint: {triple.n3()}")
            return
        self._mark_class(s)
        self._mark_class(o)
        self._superclasses[s].add(o)
        self._subclasses[o].add(s)
        self._subclass_pred_counts[p] += 1

    def _add_attribute(self, triple: Triple) -> None:
        s, p, o = triple
        self._mark_entity(s)
        self._values.add(o)
        self._attribute_triples[p].append(triple)
        self._out[s].append((p, o))
        self._in[o].append((p, s))
        self._maybe_label(s, p, o)

    def _add_relation(self, triple: Triple) -> None:
        s, p, o = triple
        self._mark_entity(s)
        self._mark_entity(o)
        self._relation_triples[p].append(triple)
        self._out[s].append((p, o))
        self._in[o].append((p, s))

    def _mark_entity(self, term: Term) -> None:
        if term in self._classes:
            # Class role wins; keep the term out of the entity set.
            self._violation(f"term used both as class and entity: {term}")
            return
        self._entities.add(term)

    def _mark_class(self, term: Term) -> None:
        if term in self._entities:
            self._violation(f"term used both as entity and class: {term}")
            self._entities.discard(term)
        self._classes.add(term)

    def _maybe_label(self, s: Term, p: URI, o: Literal) -> None:
        try:
            rank = LABEL_PREDICATES.index(p)
        except ValueError:
            return
        if s not in self._labels or rank < self._label_rank[s]:
            self._labels[s] = o.lexical
            self._label_rank[s] = rank

    def _violation(self, message: str) -> None:
        if self.strict:
            raise GraphIntegrityError(message)
        self.conflicts.append(message)

    # ------------------------------------------------------------------
    # Size / membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triple_set

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def triples(self) -> Tuple[Triple, ...]:
        return tuple(self._triples)

    # ------------------------------------------------------------------
    # Vertex classification (Definition 1)
    # ------------------------------------------------------------------

    def vertex_kind(self, term: Term) -> Optional[VertexKind]:
        """Classify a term, or None if it does not occur as a vertex."""
        if term in self._classes:
            return VertexKind.CLASS
        if term in self._entities:
            return VertexKind.ENTITY
        if isinstance(term, Literal) and term in self._values:
            return VertexKind.VALUE
        return None

    @property
    def classes(self) -> FrozenSet[Term]:
        """The C-vertices."""
        return frozenset(self._classes)

    @property
    def entities(self) -> FrozenSet[Term]:
        """The E-vertices."""
        return frozenset(self._entities)

    @property
    def values(self) -> FrozenSet[Literal]:
        """The V-vertices (shared literal nodes)."""
        return frozenset(self._values)

    # ------------------------------------------------------------------
    # Edge classification (Definition 1)
    # ------------------------------------------------------------------

    def edge_kind(self, triple: Triple) -> EdgeKind:
        p = triple.predicate
        if p in TYPE_PREDICATES:
            return EdgeKind.TYPE
        if p in SUBCLASS_PREDICATES:
            return EdgeKind.SUBCLASS
        if isinstance(triple.object, Literal):
            return EdgeKind.ATTRIBUTE
        return EdgeKind.RELATION

    @property
    def relation_labels(self) -> FrozenSet[URI]:
        """The edge labels L_R."""
        return frozenset(self._relation_triples)

    @property
    def attribute_labels(self) -> FrozenSet[URI]:
        """The edge labels L_A."""
        return frozenset(self._attribute_triples)

    def relation_triples(self, label: Optional[URI] = None) -> Iterator[Triple]:
        """All R-edge triples, optionally restricted to one label."""
        if label is not None:
            yield from self._relation_triples.get(label, ())
        else:
            for triples in self._relation_triples.values():
                yield from triples

    def attribute_triples(self, label: Optional[URI] = None) -> Iterator[Triple]:
        """All A-edge triples, optionally restricted to one label."""
        if label is not None:
            yield from self._attribute_triples.get(label, ())
        else:
            for triples in self._attribute_triples.values():
                yield from triples

    # ------------------------------------------------------------------
    # type / subclass structure
    # ------------------------------------------------------------------

    def types_of(self, entity: Term) -> FrozenSet[Term]:
        """The classes an entity is directly typed with (may be empty)."""
        return frozenset(self._types_of.get(entity, ()))

    def instances_of(self, cls: Term) -> FrozenSet[Term]:
        """The entities directly typed with a class."""
        return frozenset(self._instances_of.get(cls, ()))

    def superclasses_of(self, cls: Term, transitive: bool = False) -> FrozenSet[Term]:
        """Direct (or transitive) superclasses of a class."""
        if not transitive:
            return frozenset(self._superclasses.get(cls, ()))
        seen: Set[Term] = set()
        stack = list(self._superclasses.get(cls, ()))
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self._superclasses.get(c, ()))
        return frozenset(seen)

    def subclasses_of(self, cls: Term, transitive: bool = False) -> FrozenSet[Term]:
        """Direct (or transitive) subclasses of a class."""
        if not transitive:
            return frozenset(self._subclasses.get(cls, ()))
        seen: Set[Term] = set()
        stack = list(self._subclasses.get(cls, ()))
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self._subclasses.get(c, ()))
        return frozenset(seen)

    def subclass_pairs(self) -> Iterator[Tuple[Term, Term]]:
        """All direct ``(subclass, superclass)`` pairs."""
        for sub, supers in self._superclasses.items():
            for sup in supers:
                yield sub, sup

    @property
    def preferred_type_predicate(self) -> URI:
        """The ``type`` predicate variant the data actually uses (most
        frequent wins; defaults to ``rdf:type``)."""
        if self._type_pred_counts:
            return max(self._type_pred_counts.items(), key=lambda kv: kv[1])[0]
        from repro.rdf.namespace import RDF

        return RDF.type

    @property
    def preferred_subclass_predicate(self) -> URI:
        """The ``subclass`` predicate variant the data actually uses."""
        if self._subclass_pred_counts:
            return max(self._subclass_pred_counts.items(), key=lambda kv: kv[1])[0]
        from repro.rdf.namespace import RDFS

        return RDFS.subClassOf

    @property
    def untyped_entities(self) -> FrozenSet[Term]:
        """Entities with no ``type`` edge — aggregated into ``Thing``."""
        return frozenset(e for e in self._entities if not self._types_of.get(e))

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def outgoing(self, vertex: Term) -> Tuple[Tuple[URI, Term], ...]:
        """Outgoing (predicate, object) pairs over R- and A-edges."""
        return tuple(self._out.get(vertex, ()))

    def incoming(self, vertex: Term) -> Tuple[Tuple[URI, Term], ...]:
        """Incoming (predicate, subject) pairs over R- and A-edges."""
        return tuple(self._in.get(vertex, ()))

    def attribute_occurrences(
        self, value: Literal
    ) -> Iterator[Tuple[URI, Term, FrozenSet[Term]]]:
        """For a V-vertex: its ``(A-edge label, entity, entity classes)`` uses.

        This is the raw material for the keyword index's
        ``[V-vertex, A-edge, (C-vertex_1..n)]`` structure (Section IV-A).
        """
        for p, s in self._in.get(value, ()):
            yield p, s, self.types_of(s)

    def label_of(self, term: Term) -> str:
        """A human-readable label: the entity's name/title/label attribute,
        a literal's lexical form, or the URI's local name."""
        if isinstance(term, Literal):
            return term.lexical
        if term in self._labels:
            return self._labels[term]
        if isinstance(term, URI):
            return local_name(term)
        return str(term)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Structural counts used in the paper's Fig. 6b discussion."""
        return {
            "triples": len(self._triples),
            "entities": len(self._entities),
            "classes": len(self._classes),
            "values": len(self._values),
            "relation_labels": len(self._relation_triples),
            "attribute_labels": len(self._attribute_triples),
            "relation_edges": sum(len(v) for v in self._relation_triples.values()),
            "attribute_edges": sum(len(v) for v in self._attribute_triples.values()),
            "untyped_entities": len(self.untyped_entities),
        }

    def __repr__(self):
        s = self.stats()
        return (
            f"DataGraph(triples={s['triples']}, entities={s['entities']}, "
            f"classes={s['classes']}, values={s['values']})"
        )
