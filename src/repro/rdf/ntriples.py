"""A line-oriented N-Triples parser and serializer.

Supports the W3C N-Triples grammar subset needed for dataset I/O: URI refs,
blank nodes, plain/typed/language-tagged literals with the standard string
escapes, comments, and blank lines.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, TextIO, Union

from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triples import Triple


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples input; carries the line number."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


class _LineScanner:
    """Single-line tokenizer for the N-Triples grammar."""

    def __init__(self, line: str, line_number: int):
        self.line = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> NTriplesParseError:
        return NTriplesParseError(f"{message} (at column {self.pos})", self.line_number)

    def skip_ws(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_uri(self) -> URI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated URI")
        value = self.line[self.pos : end]
        self.pos = end + 1
        if not value:
            raise self.error("empty URI")
        return URI(value)

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.line) and (
            self.line[self.pos].isalnum() or self.line[self.pos] in "_-"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.line[start : self.pos])

    def read_string(self) -> str:
        self.expect('"')
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            ch = self.line[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                esc = self.line[self.pos]
                self.pos += 1
                if esc in _ESCAPES:
                    out.append(_ESCAPES[esc])
                elif esc == "u":
                    hexval = self.line[self.pos : self.pos + 4]
                    if len(hexval) < 4:
                        raise self.error("truncated \\u escape")
                    out.append(chr(int(hexval, 16)))
                    self.pos += 4
                elif esc == "U":
                    hexval = self.line[self.pos : self.pos + 8]
                    if len(hexval) < 8:
                        raise self.error("truncated \\U escape")
                    out.append(chr(int(hexval, 16)))
                    self.pos += 8
                else:
                    raise self.error(f"unknown escape \\{esc}")
            else:
                out.append(ch)

    def read_literal(self) -> Literal:
        lexical = self.read_string()
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (
                self.line[self.pos].isalnum() or self.line[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(lexical, language=self.line[start : self.pos])
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            return Literal(lexical, datatype=self.read_uri())
        return Literal(lexical)

    def read_subject(self) -> Term:
        if self.peek() == "<":
            return self.read_uri()
        if self.peek() == "_":
            return self.read_bnode()
        raise self.error("subject must be a URI or blank node")

    def read_object(self) -> Term:
        if self.peek() == "<":
            return self.read_uri()
        if self.peek() == "_":
            return self.read_bnode()
        if self.peek() == '"':
            return self.read_literal()
        raise self.error("object must be a URI, blank node, or literal")


def parse_ntriples(source: Union[str, TextIO, Iterable[str]]) -> Iterator[Triple]:
    """Parse N-Triples from a string or line iterable, yielding triples.

    Streaming contract: ``source`` is consumed strictly line by line —
    ``.read()`` is never called and no list of lines is ever built, so an
    open file handle (or any lazy line generator) parses in O(1) memory
    regardless of corpus size.  Errors carry the 1-based line number and
    column.  The out-of-core build path (``repro build --stream``) feeds
    file handles through here directly.

    >>> list(parse_ntriples('<a:s> <a:p> "v" .'))
    [Triple(URI('a:s'), URI('a:p'), Literal('v'))]
    """
    if isinstance(source, str):
        # Iterate \n-delimited lines without materializing a split list.
        # (str.splitlines() would also break on Unicode line separators —
        # U+0085, U+2028, … — which are data, not structure; StringIO
        # splits on \n only.)
        lines: Iterable[str] = io.StringIO(source)
    else:
        lines = source
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        scanner = _LineScanner(line, number)
        scanner.skip_ws()
        subject = scanner.read_subject()
        scanner.skip_ws()
        predicate = scanner.read_uri()
        scanner.skip_ws()
        obj = scanner.read_object()
        scanner.skip_ws()
        scanner.expect(".")
        scanner.skip_ws()
        if not scanner.at_end() and not scanner.line[scanner.pos :].lstrip().startswith("#"):
            raise scanner.error("trailing content after '.'")
        yield Triple(subject, predicate, obj)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "\n".join(t.n3() for t in triples) + "\n"
