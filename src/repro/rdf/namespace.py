"""Namespace helpers and the standard vocabularies the library understands.

The paper's examples use bare labels (``type``, ``subclass``, ``name``); real
RDF uses full URIs (``rdf:type``, ``rdfs:subClassOf``).  The data-graph layer
accepts both: :data:`TYPE_PREDICATES` and :data:`SUBCLASS_PREDICATES` list the
URIs recognized as class-membership and class-hierarchy edges.
"""

from __future__ import annotations

from repro.rdf.terms import URI


class Namespace:
    """A URI prefix from which terms can be minted by attribute access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Person
    URI('http://example.org/Person')
    >>> EX["has name"]
    URI('http://example.org/has name')
    """

    __slots__ = ("_prefix",)

    def __init__(self, prefix: str):
        object.__setattr__(self, "_prefix", prefix)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Namespace is immutable")

    @property
    def prefix(self) -> str:
        return self._prefix

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return URI(self._prefix + name)

    def __getitem__(self, name: str) -> URI:
        return URI(self._prefix + name)

    def __contains__(self, term) -> bool:
        return isinstance(term, URI) and term.value.startswith(self._prefix)

    def __repr__(self):
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: Predicates interpreted as the paper's ``type`` edge (class membership).
TYPE_PREDICATES = frozenset({RDF.type, URI("type")})

#: Predicates interpreted as the paper's ``subclass`` edge (class hierarchy).
SUBCLASS_PREDICATES = frozenset({RDFS.subClassOf, URI("subclass")})

#: Predicates whose literal object is treated as the human-readable label of
#: the subject, in priority order (first match wins).
LABEL_PREDICATES = (
    RDFS.label,
    URI("name"),
    URI("title"),
    URI("label"),
)


def local_name(uri: URI) -> str:
    """The fragment/last path segment of a URI — its human-oriented name.

    >>> local_name(URI("http://example.org/ontology#worksAt"))
    'worksAt'
    >>> local_name(URI("http://example.org/Person"))
    'Person'
    >>> local_name(URI("http://example.org/path/"))
    'path'
    """
    value = uri.value.rstrip("#/")
    for sep in ("#", "/", ":"):
        idx = value.rfind(sep)
        if 0 <= idx < len(value) - 1:
            return value[idx + 1 :]
    return value
