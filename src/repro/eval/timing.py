"""Small timing utilities shared by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Sequence


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn: Callable, repeat: int = 3) -> List[float]:
    """Wall-clock seconds of ``repeat`` invocations of ``fn``."""
    out = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        out.append(time.perf_counter() - started)
    return out


def summarize_times(samples: Sequence[float]) -> Dict[str, float]:
    """min/median/mean of a timing sample, in milliseconds."""
    return {
        "min_ms": 1000 * min(samples),
        "median_ms": 1000 * statistics.median(samples),
        "mean_ms": 1000 * statistics.fmean(samples),
    }
