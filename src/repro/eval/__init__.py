"""Evaluation harness: effectiveness (MRR), index statistics, timing."""

from repro.eval.effectiveness import (
    reciprocal_rank,
    evaluate_effectiveness,
    EffectivenessReport,
)
from repro.eval.index_stats import collect_index_stats, IndexStatsRow
from repro.eval.timing import Timer, summarize_times

__all__ = [
    "reciprocal_rank",
    "evaluate_effectiveness",
    "EffectivenessReport",
    "collect_index_stats",
    "IndexStatsRow",
    "Timer",
    "summarize_times",
]
