"""Effectiveness metrics: reciprocal rank and the Fig. 4 MRR study.

``RR = 1/r`` where ``r`` is the rank of the first generated query matching
the workload entry's intent; 0 if none of the top-k queries match — exactly
the paper's Section VII-A protocol.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import KeywordSearchEngine
from repro.datasets.workloads import WorkloadQuery
from repro.query.conjunctive import ConjunctiveQuery


def reciprocal_rank(
    queries: Sequence[ConjunctiveQuery], workload_query: WorkloadQuery
) -> float:
    """1/rank of the first query matching the entry's intent, else 0.0."""
    intent = workload_query.intent
    if intent is None:
        raise ValueError(f"{workload_query.qid} carries no intent spec")
    for rank, query in enumerate(queries, start=1):
        if intent.matches(query):
            return 1.0 / rank
    return 0.0


class EffectivenessReport:
    """Per-query RR values and their mean, for one cost model."""

    def __init__(self, cost_model: str, per_query: Dict[str, float]):
        self.cost_model = cost_model
        self.per_query = per_query

    @property
    def mrr(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(self.per_query.values()) / len(self.per_query)

    def rr(self, qid: str) -> float:
        return self.per_query[qid]

    def __repr__(self):
        return f"EffectivenessReport({self.cost_model}, MRR={self.mrr:.3f})"


def evaluate_effectiveness(
    engine: Union[KeywordSearchEngine, str, "os.PathLike"],
    workload: Sequence[WorkloadQuery],
    k: int = 10,
    dmax: Optional[int] = None,
    index_tier: str = "memory",
    cost_model: Optional[str] = None,
) -> EffectivenessReport:
    """Run a workload through an engine and score every query's RR.

    ``engine`` may be a live :class:`KeywordSearchEngine` or a path to a
    ``.reprobundle`` — the bundle is then loaded read-only under
    ``index_tier`` (``"memory"`` or ``"mmap"``) with ``cost_model``
    optionally overriding the one it was built with, so the MRR study
    can score exactly the artifact a deployment serves.
    """
    if isinstance(engine, (str, os.PathLike)):
        engine = KeywordSearchEngine.load(
            engine,
            attach_wal=False,
            index_tier=index_tier,
            cost_model=cost_model,
            k=k,
        )
    per_query: Dict[str, float] = {}
    for entry in workload:
        result = engine.search(entry.keywords, k=k, dmax=dmax)
        per_query[entry.qid] = reciprocal_rank(result.queries, entry)
    return EffectivenessReport(engine.cost_model.name, per_query)
