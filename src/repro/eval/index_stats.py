"""Index statistics for the Fig. 6b reproduction.

For each dataset we report the keyword-index size, the graph-index
(summary-graph) size, the indexing time, and the summary-to-data
compression ratio the paper's Section VI-C complexity argument relies on
("|G| ... tends to be orders of magnitude smaller than the data graph").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from repro.keyword.keyword_index import KeywordIndex
from repro.rdf.graph import DataGraph
from repro.summary.summary_graph import SummaryGraph


@dataclass
class IndexStatsRow:
    """One dataset's row of the Fig. 6b table."""

    dataset: str
    triples: int
    values: int
    classes: int
    keyword_index_entries: int
    keyword_index_bytes: int
    keyword_index_seconds: float
    graph_index_elements: int
    graph_index_bytes: int
    graph_index_seconds: float
    summary_ratio: float  # (data vertices+edges) / summary elements

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


def collect_index_stats(name: str, graph: DataGraph) -> IndexStatsRow:
    """Build both indices over a graph and measure sizes and times."""
    started = time.perf_counter()
    summary = SummaryGraph.from_data_graph(graph)
    graph_seconds = time.perf_counter() - started

    started = time.perf_counter()
    keyword_index = KeywordIndex(graph)
    keyword_seconds = time.perf_counter() - started

    stats = graph.stats()
    kw_stats = keyword_index.stats()
    summary_stats = summary.stats()
    data_elements = (
        stats["entities"]
        + stats["classes"]
        + stats["values"]
        + stats["relation_edges"]
        + stats["attribute_edges"]
    )
    summary_elements = summary_stats["vertices"] + summary_stats["edges"]

    return IndexStatsRow(
        dataset=name,
        triples=stats["triples"],
        values=stats["values"],
        classes=stats["classes"],
        keyword_index_entries=int(kw_stats["terms"]),
        keyword_index_bytes=int(kw_stats["estimated_bytes"]),
        keyword_index_seconds=keyword_seconds,
        graph_index_elements=int(summary_elements),
        graph_index_bytes=int(summary_stats["estimated_bytes"]),
        graph_index_seconds=graph_seconds,
        summary_ratio=data_elements / max(summary_elements, 1),
    )
