"""The keyword-element map ``f : keyword → 2^(V_C ⊎ V_V ⊎ E)`` (Section IV-A).

Keywords are matched against the labels of C-vertices, V-vertices and edge
labels — *not* E-vertices, which the paper deliberately omits ("the user will
enter keywords corresponding to attribute values … rather than the verbose
URI").  Matching is imprecise: exact analyzed-term hits, synonym/hypernym
expansion through the lexicon, and Levenshtein-bounded fuzzy hits all
contribute, and each match carries the score ``sm(n) ∈ (0, 1]`` that the C3
cost function divides by (Section V).

Matches for V-vertices and A-edges carry the neighbor structures the paper
requires for on-the-fly augmentation (Definition 5):

* ``ValueMatch`` — ``[V-vertex, A-edge, (C-vertex_1..n)]``
* ``AttributeMatch`` — ``[A-edge, (C-vertex_1..n)]``

where ``None`` in a class set denotes "untyped" and augmentation maps it to
the summary graph's ``Thing`` vertex.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.util import LruDict

from repro.keyword.analysis import Analyzer
from repro.keyword.inverted_index import InvertedIndex
from repro.keyword.levenshtein import levenshtein, similarity
from repro.keyword.synonyms import DEFAULT_LEXICON, SynonymLexicon
from repro.rdf.graph import DataGraph, VertexKind
from repro.rdf.namespace import local_name
from repro.rdf.terms import Literal, Term, URI


class KeywordMatch:
    """Base class for keyword-element matches; ``score`` is ``sm(n)``."""

    __slots__ = ("score",)

    def __init__(self, score: float):
        object.__setattr__(self, "score", float(score))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def element_key(self) -> Hashable:
        """A hashable identity for the matched graph element."""
        raise NotImplementedError

    def with_score(self, score: float) -> "KeywordMatch":
        raise NotImplementedError


class ClassMatch(KeywordMatch):
    """The keyword names a C-vertex (a class)."""

    __slots__ = ("cls",)

    def __init__(self, cls: Term, score: float):
        super().__init__(score)
        object.__setattr__(self, "cls", cls)

    @property
    def element_key(self) -> Hashable:
        return ("class", self.cls)

    def with_score(self, score: float) -> "ClassMatch":
        return ClassMatch(self.cls, score)

    def __repr__(self):
        return f"ClassMatch({self.cls}, score={self.score:.3f})"


class RelationMatch(KeywordMatch):
    """The keyword names an R-edge label (a relation predicate)."""

    __slots__ = ("label",)

    def __init__(self, label: URI, score: float):
        super().__init__(score)
        object.__setattr__(self, "label", label)

    @property
    def element_key(self) -> Hashable:
        return ("relation", self.label)

    def with_score(self, score: float) -> "RelationMatch":
        return RelationMatch(self.label, score)

    def __repr__(self):
        return f"RelationMatch({local_name(self.label)}, score={self.score:.3f})"


class AttributeMatch(KeywordMatch):
    """The keyword names an A-edge label; carries ``[A-edge, (C-vertices)]``.

    ``classes`` holds every class whose instances carry this attribute
    (``None`` = untyped / Thing), per the paper's augmentation structure.
    """

    __slots__ = ("label", "classes")

    def __init__(self, label: URI, classes: FrozenSet[Optional[Term]], score: float):
        super().__init__(score)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "classes", frozenset(classes))

    @property
    def element_key(self) -> Hashable:
        return ("attribute", self.label)

    def with_score(self, score: float) -> "AttributeMatch":
        return AttributeMatch(self.label, self.classes, score)

    def __repr__(self):
        return f"AttributeMatch({local_name(self.label)}, score={self.score:.3f})"


class ValueMatch(KeywordMatch):
    """The keyword matches a V-vertex; carries ``[V-vertex, A-edge, (C..)]``.

    ``occurrences`` lists the distinct ``(A-edge label, subject class)``
    contexts the literal occurs in (class ``None`` = untyped / Thing).
    """

    __slots__ = ("value", "occurrences")

    def __init__(
        self,
        value: Literal,
        occurrences: FrozenSet[Tuple[URI, Optional[Term]]],
        score: float,
    ):
        super().__init__(score)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "occurrences", frozenset(occurrences))

    @property
    def element_key(self) -> Hashable:
        return ("value", self.value)

    def with_score(self, score: float) -> "ValueMatch":
        return ValueMatch(self.value, self.occurrences, score)

    def __repr__(self):
        return f"ValueMatch({self.value.lexical!r}, score={self.score:.3f})"


# Internal element-key kinds stored in the inverted index.
_KIND_CLASS = "class"
_KIND_RELATION = "relation"
_KIND_ATTRIBUTE = "attribute"
_KIND_VALUE = "value"


def element_label_text(kind: str, term, label_of) -> str:
    """The label text one index element is analyzed under.

    Shared between :meth:`KeywordIndex._build` and the out-of-core
    streaming build (``repro.storage.stream_build``) so both paths feed
    the analyzer byte-identical input: classes use the graph's display
    label, edge labels their URI local name, values their lexical form.
    ``label_of`` is only consulted for classes, so streamed callers can
    pass a resident-aggregate implementation.
    """
    if kind == _KIND_CLASS:
        return label_of(term)
    if kind == _KIND_VALUE:
        return term.lexical
    return local_name(term)


class KeywordIndex:
    """The IR engine over element labels: build once, look keywords up fast.

    Parameters
    ----------
    graph:
        The data graph whose C-vertices, V-vertices, and edge labels are
        indexed.
    analyzer:
        Lexical analysis chain; defaults to tokenize+stopwords+Porter.
    lexicon:
        Synonym/hypernym table; defaults to the bundled offline lexicon.
    fuzzy_max_distance:
        Levenshtein bound for imprecise matching (0 disables fuzzy lookup).
    max_matches_per_keyword:
        Keeps only the best-scoring elements per keyword; bounds the
        branching factor of the subsequent graph exploration.
    lookup_cache_size:
        LRU bound for memoized :meth:`lookup` results.  Entries are keyed
        on :attr:`version`, which advances with every incremental index
        mutation, so maintenance invalidates them automatically.  ``0``
        disables the cache.
    """

    def __init__(
        self,
        graph: DataGraph,
        analyzer: Optional[Analyzer] = None,
        lexicon: Optional[SynonymLexicon] = None,
        fuzzy_max_distance: int = 1,
        max_matches_per_keyword: int = 8,
        lookup_cache_size: int = 1024,
    ):
        self._graph = graph
        self._analyzer = analyzer or Analyzer()
        self._lexicon = lexicon if lexicon is not None else DEFAULT_LEXICON
        self._fuzzy_max_distance = fuzzy_max_distance
        self._max_matches = max_matches_per_keyword

        #: Monotone mutation counter; caches over lookups key on it.
        self.version: int = 0
        self._lookup_cache = LruDict(lookup_cache_size)

        self._index = InvertedIndex()
        # Attribute label -> {subject class (None = untyped): refcount}.
        # The refcounts make class-context maintenance delta-bounded: one
        # attribute triple or one retyped entity adjusts a handful of
        # counters instead of rescanning the predicate's triples.
        self._attribute_class_refs: Dict[URI, Dict[Optional[Term], int]] = {}
        # V-vertex -> {(attribute label, subject class or None): refcount}.
        self._value_occurrence_refs: Dict[
            Literal, Dict[Tuple[URI, Optional[Term]], int]
        ] = {}

        started = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph = self._graph

        for cls in graph.classes:
            self._index_class(cls)

        for label in graph.relation_labels:
            self._index_relation_label(label)

        for label in graph.attribute_labels:
            self._index.index(
                (_KIND_ATTRIBUTE, label),
                self._analyzer.analyze(
                    element_label_text(_KIND_ATTRIBUTE, label, graph.label_of)
                ),
            )
        for value in graph.values:
            self._index.index(
                (_KIND_VALUE, value),
                self._analyzer.analyze(
                    element_label_text(_KIND_VALUE, value, graph.label_of)
                ),
            )

        # One pass over all A-edges seeds the class-context refcounts.
        for triple in graph.attribute_triples():
            self._adjust_occurrence_refs(
                triple.predicate,
                triple.object,
                graph.types_of(triple.subject),
                +1,
            )

    def _index_class(self, cls: Term) -> None:
        self._index.index(
            (_KIND_CLASS, cls),
            self._analyzer.analyze(
                element_label_text(_KIND_CLASS, cls, self._graph.label_of)
            ),
        )

    def _index_relation_label(self, label: URI) -> None:
        self._index.index(
            (_KIND_RELATION, label),
            self._analyzer.analyze(
                element_label_text(_KIND_RELATION, label, self._graph.label_of)
            ),
        )

    def _adjust_occurrence_refs(self, label, value, classes, delta: int) -> None:
        label_refs = self._attribute_class_refs.setdefault(label, {})
        value_refs = self._value_occurrence_refs.setdefault(value, {})
        for cls in classes or (None,):
            count = label_refs.get(cls, 0) + delta
            if count > 0:
                label_refs[cls] = count
            else:
                label_refs.pop(cls, None)
            pair = (label, cls)
            count = value_refs.get(pair, 0) + delta
            if count > 0:
                value_refs[pair] = count
            else:
                value_refs.pop(pair, None)
        if not label_refs:
            del self._attribute_class_refs[label]
        if not value_refs:
            del self._value_occurrence_refs[value]

    # ------------------------------------------------------------------
    # Incremental maintenance (used by repro.maintenance.IndexManager)
    # ------------------------------------------------------------------
    #
    # ``refresh_*`` re-derives one element's postings from the *already
    # updated* data graph: unindex the stale postings, then re-index if
    # the element still exists.  ``adjust_attribute_occurrence`` applies a
    # class-context delta for one A-edge incidence — a few counter
    # updates, so maintenance cost is bounded by the delta, never by how
    # many triples share the predicate or the value.

    def refresh_class(self, cls: Term) -> None:
        self.version += 1
        self._index.unindex((_KIND_CLASS, cls))
        if self._graph.vertex_kind(cls) is VertexKind.CLASS:
            self._index_class(cls)

    def refresh_relation_label(self, label: URI) -> None:
        self.version += 1
        self._index.unindex((_KIND_RELATION, label))
        if self._graph.has_relation_label(label):
            self._index_relation_label(label)

    def adjust_attribute_occurrence(
        self,
        label: URI,
        value: Literal,
        classes: FrozenSet[Optional[Term]],
        delta: int,
    ) -> None:
        """Apply one A-edge incidence delta under the subject's classes.

        ``classes`` must be the subject's types at the moment the
        incidence was (or is being) counted: current types for additions,
        the pre-update snapshot for removals/retypings.  Postings for the
        attribute label and the value toggle with their existence.
        """
        self.version += 1
        had_label = label in self._attribute_class_refs
        had_value = value in self._value_occurrence_refs
        self._adjust_occurrence_refs(label, value, classes, delta)
        has_label = label in self._attribute_class_refs
        has_value = value in self._value_occurrence_refs
        if has_label and not had_label:
            self._index.index(
                (_KIND_ATTRIBUTE, label), self._analyzer.analyze(local_name(label))
            )
        elif had_label and not has_label:
            self._index.unindex((_KIND_ATTRIBUTE, label))
        if has_value and not had_value:
            self._index.index(
                (_KIND_VALUE, value), self._analyzer.analyze(value.lexical)
            )
        elif had_value and not has_value:
            self._index.unindex((_KIND_VALUE, value))

    # ------------------------------------------------------------------
    # Persistence (used by repro.storage)
    # ------------------------------------------------------------------

    def uses_default_analysis(self) -> bool:
        """True when analyzer and lexicon are the stock configuration.

        The bundle format stores no code, so only the default analysis
        chain round-trips; a custom analyzer or lexicon makes the index
        unsaveable (the storage layer refuses loudly rather than load an
        index whose future maintenance would analyze differently).
        """
        default = Analyzer()
        analyzer = self._analyzer
        return (
            type(analyzer) is Analyzer
            and analyzer.__dict__ == default.__dict__
            and self._lexicon is DEFAULT_LEXICON
        )

    def state_for_persistence(self) -> Dict[str, object]:
        """Read-only references to the state :meth:`from_state` restores."""
        return {
            "version": self.version,
            "fuzzy_max_distance": self._fuzzy_max_distance,
            "max_matches": self._max_matches,
            "lookup_cache_size": self._lookup_cache.maxsize,
            "build_seconds": self.build_seconds,
            "index": self._index.state_for_persistence(),
            "attribute_class_refs": self._attribute_class_refs,
            "value_occurrence_refs": self._value_occurrence_refs,
        }

    @classmethod
    def from_state(
        cls,
        graph: DataGraph,
        inverted_index: InvertedIndex,
        attribute_class_refs: Dict[URI, Dict[Optional[Term], int]],
        value_occurrence_refs: Dict[Literal, Dict[Tuple[URI, Optional[Term]], int]],
        *,
        version: int,
        fuzzy_max_distance: int,
        max_matches: Optional[int],
        lookup_cache_size: int,
        build_seconds: float,
    ) -> "KeywordIndex":
        """Reconstitute an index around restored postings and refcounts.

        The analysis chain is the stock one (see
        :meth:`uses_default_analysis` — the save side enforces it), the
        mutation ``version`` is carried over so the restored index's
        :attr:`snapshot_key` equals the saved one, and the lookup memo
        starts cold.
        """
        index = cls.__new__(cls)
        index._graph = graph
        index._analyzer = Analyzer()
        index._lexicon = DEFAULT_LEXICON
        index._fuzzy_max_distance = fuzzy_max_distance
        index._max_matches = max_matches
        index.version = version
        index._lookup_cache = LruDict(lookup_cache_size)
        index._index = inverted_index
        index._attribute_class_refs = attribute_class_refs
        index._value_occurrence_refs = value_occurrence_refs
        index.build_seconds = build_seconds
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def snapshot_key(self) -> int:
        """The formal snapshot key of this index: its mutation version.

        The lookup memo keys on it, and
        :class:`~repro.core.snapshot.EngineSnapshot` pins it (paired
        with the summary graph's key) as the identity of one engine state.
        """
        return self.version

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the lookup memo (service ``/stats``)."""
        return self._lookup_cache.cache_stats()

    @property
    def index_tier(self) -> str:
        """Serving tier of the underlying inverted index (memory/mmap)."""
        return getattr(self._index, "tier", "memory")

    def postings_cache_stats(self) -> Optional[Dict[str, float]]:
        """Decoded-postings LRU statistics, or None on the memory tier.

        Only the mmap-resident index decodes posting runs on demand and
        keeps an LRU over them; the materialized tier holds everything,
        so there is nothing to count.
        """
        if self.index_tier != "mmap":
            return None
        return self._index.cache_stats()

    def lookup(self, keyword: str) -> List[KeywordMatch]:
        """All elements matching a keyword, best score first.

        A keyword may analyze to several terms (e.g. ``"x-media"``); an
        element matches only if *every* keyword term matches its label, and
        the score combines per-term match quality with a coverage penalty
        for labels longer than the keyword (the paper's TF/IDF remark).

        Results are memoized (LRU, ``lookup_cache_size`` entries) keyed on
        ``(version, keyword)``: incremental maintenance advances
        :attr:`version`, so stale entries can never be served — they just
        age out of the LRU.  Matches are immutable; each call returns a
        fresh list of the shared match objects.
        """
        cache = self._lookup_cache
        if cache.maxsize <= 0:
            return self._lookup_uncached(keyword)
        key = (self.version, keyword)
        hit = cache.hit(key)
        if hit is not None:
            return list(hit)
        matches = self._lookup_uncached(keyword)
        cache.put(key, tuple(matches))
        return matches

    def _lookup_uncached(self, keyword: str) -> List[KeywordMatch]:
        terms = self._analyzer.analyze_unique(keyword)
        if not terms:
            return []

        # element_key -> list of per-term best factors.
        per_term: List[Dict[Hashable, Tuple[float, int]]] = []
        for term in terms:
            per_term.append(self._term_candidates(term))

        # Intersect: every term must match.
        common = set(per_term[0])
        for candidates in per_term[1:]:
            common &= set(candidates)
        if not common:
            return []

        matches: List[KeywordMatch] = []
        for key in common:
            factor_product = 1.0
            label_terms = 1
            for candidates in per_term:
                factor, label_len = candidates[key]
                factor_product *= factor
                label_terms = max(label_terms, label_len)
            base = factor_product ** (1.0 / len(terms))
            coverage = min(1.0, len(terms) / max(label_terms, 1))
            score = max(1e-6, base * (coverage ** 0.5))
            matches.append(self._materialize(key, score))

        # Tie-break equal scores canonically (by element-key repr) so the
        # result — and the max_matches cutoff — does not depend on index
        # insertion order; incremental maintenance and a fresh rebuild
        # must rank identically.
        matches.sort(key=lambda m: (-m.score, repr(m.element_key)))
        if self._max_matches is not None:
            matches = matches[: self._max_matches]
        return matches

    def _term_candidates(self, term: str) -> Dict[Hashable, Tuple[float, int]]:
        """element_key -> (best factor, label length) for one analyzed term."""
        out: Dict[Hashable, Tuple[float, int]] = {}

        def _offer(key: Hashable, factor: float, label_len: int) -> None:
            current = out.get(key)
            if current is None or factor > current[0]:
                out[key] = (factor, label_len)

        for posting in self._index.lookup(term):
            _offer(posting.element, 1.0, posting.label_terms)

        for related_term, rel_factor in self._lexicon.related(term):
            for posting in self._index.lookup(related_term):
                _offer(posting.element, rel_factor, posting.label_terms)

        if not out and self._fuzzy_max_distance > 0:
            bound = self._fuzzy_max_distance
            for vocab_term in self._index.iter_terms():
                if abs(len(vocab_term) - len(term)) > bound:
                    continue
                if levenshtein(term, vocab_term, bound) <= bound:
                    factor = similarity(term, vocab_term)
                    for posting in self._index.lookup(vocab_term):
                        _offer(posting.element, factor, posting.label_terms)
        return out

    def _materialize(self, key: Hashable, score: float) -> KeywordMatch:
        kind, element = key
        if kind == _KIND_CLASS:
            return ClassMatch(element, score)
        if kind == _KIND_RELATION:
            return RelationMatch(element, score)
        if kind == _KIND_ATTRIBUTE:
            classes = frozenset(self._attribute_class_refs.get(element) or {None})
            return AttributeMatch(element, classes, score)
        if kind == _KIND_VALUE:
            occurrences = frozenset(self._value_occurrence_refs.get(element, ()))
            return ValueMatch(element, occurrences, score)
        raise ValueError(f"unknown element kind {kind!r}")  # pragma: no cover

    def lookup_all(self, keywords: Sequence[str]) -> List[List[KeywordMatch]]:
        """Per-keyword match lists (the K_i sets of Algorithm 1's input)."""
        return [self.lookup(k) for k in keywords]

    def attribute_classes(self, label: URI) -> FrozenSet[Optional[Term]]:
        """The classes whose instances carry attribute ``label``."""
        return frozenset(self._attribute_class_refs.get(label, ()))

    def attribute_labels(self) -> FrozenSet[URI]:
        """All indexed A-edge labels."""
        return frozenset(self._attribute_class_refs)

    # ------------------------------------------------------------------
    # Statistics (Fig. 6b)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "terms": self._index.term_count,
            "elements": self._index.element_count,
            "postings": self._index.posting_count,
            "estimated_bytes": self._index.estimated_bytes(),
            "build_seconds": self.build_seconds,
        }
