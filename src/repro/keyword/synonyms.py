"""An offline synonym/hypernym lexicon standing in for WordNet.

The paper links "semantically similar entries such as synonyms, hyponyms and
hypernyms extracted from WordNet" to each indexed term.  WordNet itself is
unavailable offline, so :data:`DEFAULT_LEXICON` provides a curated table
covering the vocabulary of the bundled datasets (bibliographic, academic,
and the TAP-style domains) — the *code path* (semantic expansion with a
relation-dependent score factor) is identical, only the coverage is smaller.
Entries are stored over **stemmed** terms so expansion composes with the
analyzer.  See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.keyword.stemmer import porter_stem

#: Score factors by semantic relation: exact synonymy is stronger evidence
#: than hierarchy membership (used in sm(n), Section V).
SYNONYM_FACTOR = 0.9
HYPERNYM_FACTOR = 0.7
HYPONYM_FACTOR = 0.7


class SynonymLexicon:
    """Bidirectional semantic-relation table over stemmed terms.

    ``related(term)`` yields ``(other_term, factor)`` pairs: all terms that
    should also be looked up when ``term`` is queried, with the score factor
    their relation carries.
    """

    def __init__(self):
        self._related: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_synonyms(self, *words: str) -> None:
        """Declare a synonym set; all pairs become mutually related."""
        stems = [porter_stem(w.lower()) for w in words]
        for a in stems:
            for b in stems:
                if a != b:
                    self._link(a, b, SYNONYM_FACTOR)

    def add_hypernym(self, word: str, hypernym: str) -> None:
        """Declare ``hypernym`` as a broader term for ``word``.

        Both directions are recorded (a query for the broader term may
        intend the narrower one and vice versa), with the weaker factor.
        """
        a = porter_stem(word.lower())
        b = porter_stem(hypernym.lower())
        if a != b:
            self._link(a, b, HYPERNYM_FACTOR)
            self._link(b, a, HYPONYM_FACTOR)

    def _link(self, a: str, b: str, factor: float) -> None:
        current = self._related.setdefault(a, {})
        if factor > current.get(b, 0.0):
            current[b] = factor

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def related(self, term: str) -> List[Tuple[str, float]]:
        """(related stemmed term, score factor) pairs for a stemmed term."""
        return sorted(self._related.get(term, {}).items(), key=lambda kv: -kv[1])

    def __contains__(self, term: str) -> bool:
        return term in self._related

    def __len__(self) -> int:
        return len(self._related)


def _build_default() -> SynonymLexicon:
    lex = SynonymLexicon()
    synonym_sets: Iterable[Tuple[str, ...]] = (
        # Bibliographic domain.
        ("publication", "paper", "article"),
        ("author", "writer", "creator"),
        ("researcher", "scientist"),
        ("institute", "institution", "organization", "organisation"),
        ("university", "college"),
        ("conference", "venue", "proceedings"),
        ("journal", "periodical"),
        ("year", "date"),
        ("name", "label"),
        ("title", "heading"),
        ("work", "employment"),
        ("project", "undertaking"),
        ("cite", "reference", "quote"),
        ("edit", "redact"),
        # Academic domain (LUBM).
        ("professor", "faculty"),
        ("teacher", "instructor", "lecturer"),
        ("student", "pupil"),
        ("course", "lecture"),
        ("department", "division"),
        ("advisor", "supervisor", "mentor"),
        ("degree", "qualification"),
        ("email", "mail"),
        ("phone", "telephone"),
        # TAP-style broad domains.
        ("movie", "film", "picture"),
        ("song", "track", "tune"),
        ("musician", "artist"),
        ("band", "group", "ensemble"),
        ("team", "club", "squad"),
        ("athlete", "player", "sportsman"),
        ("city", "town"),
        ("country", "nation", "state"),
        ("mountain", "peak"),
        ("river", "stream"),
        ("company", "firm", "corporation", "business"),
        ("person", "human", "individual"),
        ("location", "place", "site"),
        ("sport", "game"),
        ("book", "volume"),
        ("writes", "authors", "pens"),
    )
    for words in synonym_sets:
        lex.add_synonyms(*words)

    hypernym_pairs: Iterable[Tuple[str, str]] = (
        ("researcher", "person"),
        ("professor", "person"),
        ("student", "person"),
        ("author", "person"),
        ("university", "organization"),
        ("institute", "organization"),
        ("company", "organization"),
        ("department", "organization"),
        ("article", "document"),
        ("publication", "document"),
        ("book", "document"),
        ("city", "location"),
        ("country", "location"),
        ("mountain", "location"),
        ("river", "location"),
        ("movie", "artwork"),
        ("song", "artwork"),
        ("basketball", "sport"),
        ("football", "sport"),
        ("tennis", "sport"),
        ("conference", "event"),
    )
    for word, hypernym in hypernym_pairs:
        lex.add_hypernym(word, hypernym)
    return lex


#: The lexicon used by default when building a :class:`KeywordIndex`.
DEFAULT_LEXICON = _build_default()
