"""The Porter stemming algorithm (Porter, 1980), implemented in full.

This is the same stemmer Lucene's ``PorterStemFilter`` applies — the paper's
keyword index relies on Lucene-style lexical analysis, so we reproduce the
algorithm faithfully: measure-based condition checks and the five rule steps
(1a, 1b + cleanup, 1c, 2, 3, 4, 5a, 5b).
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: the number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # Skip initial consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        m += 1
        # Consonant run.
        while i < n and _is_consonant(stem, i):
            i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Ends consonant-vowel-consonant, final consonant not w, x, or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    """If word ends with suffix and the stem's measure > min_measure, replace."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: rule consumed, no change


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def porter_stem(word: str) -> str:
    """Stem a lowercase word with the Porter algorithm.

    >>> porter_stem("publications")
    'public'
    >>> porter_stem("relational")
    'relat'
    """
    if len(word) <= 2:
        return word
    word = word.lower()

    # Step 1a — plurals.
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b — -ed / -ing.
    flag_1b = False
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            word = word[:-1]
    elif word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag_1b = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag_1b = True
    if flag_1b:
        if word.endswith(("at", "bl", "iz")):
            word += "e"
        elif _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            word = word[:-1]
        elif _measure(word) == 1 and _ends_cvc(word):
            word += "e"

    # Step 1c — -y to -i.
    if word.endswith("y") and _contains_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2.
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            result = _replace(word, suffix, replacement, 0)
            if result is not None:
                word = result
            break

    # Step 3.
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            result = _replace(word, suffix, replacement, 0)
            if result is not None:
                word = result
            break

    # Step 4 — drop suffix when measure of stem > 1.
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                word = stem
            break
    else:
        # -ion only after s or t.
        if word.endswith("ion"):
            stem = word[:-3]
            if stem.endswith(("s", "t")) and _measure(stem) > 1:
                word = stem

    # Step 5a — final -e.
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem

    # Step 5b — -ll to -l.
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        word = word[:-1]

    return word
