"""A generic inverted index: analyzed term → postings with TF weights.

Elements are opaque hashable keys; the keyword-element map layers RDF
semantics on top.  Document frequencies and IDF are exposed so callers can
apply TF/IDF weighting to multi-term labels, as the paper suggests for
improving the keyword-to-element mapping.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, NamedTuple, Optional, Tuple


class Posting(NamedTuple):
    """One indexed occurrence list entry."""

    element: Hashable
    term_frequency: int
    label_terms: int  # total analyzed terms in the element's label


class InvertedIndex:
    """term → postings, with document-frequency bookkeeping."""

    #: Which serving tier the index lives in; the mmap-resident reader
    #: (:class:`repro.storage.mmap_tier.MmapInvertedIndex`) overrides
    #: this so stats endpoints can report the active tier.
    tier = "memory"

    def __init__(self):
        self._postings: Dict[str, Dict[Hashable, List[int]]] = {}
        self._indexed_elements: set = set()
        # element -> terms it is posted under, for O(|label|) unindexing.
        self._element_terms: Dict[Hashable, set] = {}

    def index(self, element: Hashable, terms: Iterable[str]) -> None:
        """Index an element under its analyzed label terms."""
        terms = list(terms)
        total = len(terms)
        if total == 0:
            return
        counts: Dict[str, int] = {}
        for t in terms:
            counts[t] = counts.get(t, 0) + 1
        for term, tf in counts.items():
            bucket = self._postings.setdefault(term, {})
            entry = bucket.get(element)
            if entry is None:
                bucket[element] = [tf, total]
            else:
                entry[0] += tf
                entry[1] = max(entry[1], total)
        self._indexed_elements.add(element)
        self._element_terms.setdefault(element, set()).update(counts)

    def unindex(self, element: Hashable) -> bool:
        """Remove an element's postings; returns False if never indexed."""
        terms = self._element_terms.pop(element, None)
        if terms is None:
            return False
        for term in terms:
            bucket = self._postings.get(term)
            if bucket is None:
                continue
            bucket.pop(element, None)
            if not bucket:
                del self._postings[term]
        self._indexed_elements.discard(element)
        return True

    # ------------------------------------------------------------------
    # Persistence (used by repro.storage)
    # ------------------------------------------------------------------

    def state_for_persistence(self) -> Dict[str, object]:
        """Read-only references to the postings and the reverse map
        (``_indexed_elements`` is derivable as the reverse map's keys)."""
        return {"postings": self._postings, "element_terms": self._element_terms}

    @classmethod
    def from_state(
        cls,
        postings: Dict[str, Dict[Hashable, List[int]]],
        element_terms: Dict[Hashable, set],
    ) -> "InvertedIndex":
        """Adopt pre-built postings; ``[tf, total]`` lists must be fresh
        (they are mutated in place by later :meth:`index` calls)."""
        index = cls.__new__(cls)
        index._postings = postings
        index._element_terms = element_terms
        index._indexed_elements = set(element_terms)
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, term: str) -> List[Posting]:
        """All postings for an exact (already analyzed) term."""
        bucket = self._postings.get(term)
        if not bucket:
            return []
        return [Posting(el, tf, total) for el, (tf, total) in bucket.items()]

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        """All indexed terms (the fuzzy-scan dictionary)."""
        return tuple(self._postings.keys())

    def iter_terms(self) -> Iterator[str]:
        return iter(self._postings.keys())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency."""
        n = max(len(self._indexed_elements), 1)
        df = self.document_frequency(term)
        return math.log((n + 1) / (df + 1)) + 1.0

    @property
    def element_count(self) -> int:
        return len(self._indexed_elements)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    @property
    def posting_count(self) -> int:
        return sum(len(bucket) for bucket in self._postings.values())

    def estimated_bytes(self) -> int:
        """A rough, deterministic size estimate for Fig. 6b-style reporting:
        term text plus a fixed 16 bytes per posting."""
        return sum(
            len(term.encode()) + 16 * len(bucket)
            for term, bucket in self._postings.items()
        )

    def __len__(self) -> int:
        return self.term_count


class SpillingPostingsBuilder:
    """Out-of-core posting-list accumulator for the streaming build.

    Accepts ``(vocab_id, element_id, tf, total)`` rows in element
    processing order, keeping at most ``budget_rows`` resident; past the
    budget a sorted run spills to ``directory`` and the runs are k-way
    merged on read-back.  :meth:`merged_groups` yields per-term posting
    lists in ascending vocab-id order — element order *within* a term is
    ascending element id, which equals first-indexed order because the
    streamed build assigns element ids sequentially.  That matches the
    in-memory :class:`InvertedIndex`, whose per-term dict buckets also
    record elements in first-indexed order.

    Mirrors :meth:`InvertedIndex.index` semantics for the build-only
    case: every element is indexed exactly once, so the ``tf`` merge
    (``+=``) and ``total`` merge (``max``) paths never trigger.
    """

    def __init__(self, directory, budget_rows: int):
        from repro.storage.segments import ExternalSorter

        self._sorter = ExternalSorter(directory, 4, budget_rows, prefix="postings")
        self.posting_rows = 0

    @property
    def runs_spilled(self) -> int:
        return self._sorter.runs_spilled

    def add(self, vocab_id: int, element_id: int, tf: int, total: int) -> None:
        self._sorter.add((vocab_id, element_id, tf, total))
        self.posting_rows += 1

    def merged_groups(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(vocab_id, flat [element_id, tf, total, ...])`` groups."""
        from itertools import groupby

        for vocab_id, rows in groupby(
            self._sorter.sorted_rows(), key=lambda row: row[0]
        ):
            flat: List[int] = []
            for _, element_id, tf, total in rows:
                flat.append(element_id)
                flat.append(tf)
                flat.append(total)
            yield vocab_id, flat

    def cleanup(self) -> None:
        self._sorter.cleanup()
