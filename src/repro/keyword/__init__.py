"""The keyword index of Section IV-A: a self-contained IR engine.

The paper implements its keyword-element map "as an inverted index" over
lexically analyzed element labels (stemming, stopword removal as in Lucene),
with WordNet-derived synonym entries and Levenshtein-based imprecise
matching.  This package rebuilds each piece from scratch:

* :mod:`~repro.keyword.analysis` — tokenizer + stopwords + analyzer chain
* :mod:`~repro.keyword.stemmer` — the Porter stemming algorithm
* :mod:`~repro.keyword.levenshtein` — bounded edit distance for fuzzy lookup
* :mod:`~repro.keyword.synonyms` — offline synonym/hypernym lexicon
* :mod:`~repro.keyword.inverted_index` — generic term → postings index
* :mod:`~repro.keyword.keyword_index` — the keyword-element map ``f`` with
  the paper's ``[V-vertex, A-edge, (C-vertex_1..n)]`` structures and the
  matching score ``sm(n)`` of Section V
"""

from repro.keyword.analysis import Analyzer, tokenize, STOPWORDS
from repro.keyword.stemmer import porter_stem
from repro.keyword.levenshtein import levenshtein, similarity, within_distance
from repro.keyword.synonyms import SynonymLexicon, DEFAULT_LEXICON
from repro.keyword.inverted_index import InvertedIndex, Posting
from repro.keyword.keyword_index import (
    KeywordIndex,
    KeywordMatch,
    ClassMatch,
    RelationMatch,
    AttributeMatch,
    ValueMatch,
)

__all__ = [
    "Analyzer",
    "tokenize",
    "STOPWORDS",
    "porter_stem",
    "levenshtein",
    "similarity",
    "within_distance",
    "SynonymLexicon",
    "DEFAULT_LEXICON",
    "InvertedIndex",
    "Posting",
    "KeywordIndex",
    "KeywordMatch",
    "ClassMatch",
    "RelationMatch",
    "AttributeMatch",
    "ValueMatch",
]
