"""Lexical analysis: tokenization, stopword removal, stemming.

Reproduces the paper's "lexical analysis (stemming, removal of stopwords) as
supported by standard IR engines (c.f. Lucene)".  Labels such as ``worksAt``
or ``has_project`` are split at case and separator boundaries so schema
identifiers yield searchable terms.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.keyword.stemmer import porter_stem

#: A standard English stopword list (Lucene's default set plus a few common
#: query fillers); applied after lowercasing.
STOPWORDS = frozenset(
    """
    a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with from has have
    had what which who whom whose when where why how all any both each few
    more most other some own same so than too very s t can just don should
    now about
    """.split()
)

# Split camelCase ("worksAt" -> "works At") and letter/digit boundaries
# ("year2006" -> "year 2006") before the alphanumeric token scan.
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Za-z])(?=[0-9])|(?<=[0-9])(?=[A-Za-z])")
_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercased word/number tokens with identifier-boundary splitting.

    >>> tokenize("worksAt X-Media 2006")
    ['works', 'at', 'x', 'media', '2006']
    """
    expanded = _CAMEL_RE.sub(" ", text)
    return [m.group().lower() for m in _TOKEN_RE.finditer(expanded)]


class Analyzer:
    """The full analysis chain: tokenize → drop stopwords → stem.

    ``min_token_length`` drops single-character noise tokens (but never
    digit tokens, since years like "2006" matter to the workloads).
    """

    def __init__(
        self,
        stem: bool = True,
        stopwords: frozenset = STOPWORDS,
        min_token_length: int = 1,
    ):
        self._stem = stem
        self._stopwords = stopwords
        self._min_len = min_token_length

    def analyze(self, text: str) -> List[str]:
        """Terms for indexing or querying, in occurrence order."""
        terms = []
        for token in tokenize(text):
            if token in self._stopwords:
                continue
            if len(token) < self._min_len and not token.isdigit():
                continue
            if self._stem and not token.isdigit():
                token = porter_stem(token)
            terms.append(token)
        return terms

    def analyze_unique(self, text: str) -> List[str]:
        """Like :meth:`analyze` but with duplicates removed, order kept."""
        return list(dict.fromkeys(self.analyze(text)))
