"""Levenshtein edit distance, with the banded early-exit variant used for
imprecise keyword-to-term matching (Section IV-A).
"""

from __future__ import annotations

from typing import Optional


def levenshtein(a: str, b: str, max_distance: Optional[int] = None) -> int:
    """The edit distance between two strings.

    With ``max_distance`` the computation runs in a diagonal band and returns
    ``max_distance + 1`` as soon as the true distance provably exceeds the
    bound — the standard trick for fuzzy dictionary scans.

    >>> levenshtein("cimiano", "cimiano")
    0
    >>> levenshtein("cimiano", "cimano")
    1
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    la, lb = len(a), len(b)
    if max_distance is not None and lb - la > max_distance:
        return max_distance + 1
    if la == 0:
        return lb

    previous = list(range(la + 1))
    for j in range(1, lb + 1):
        bj = b[j - 1]
        current = [j]
        row_min = j
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            value = min(
                previous[i] + 1,  # deletion
                current[i - 1] + 1,  # insertion
                previous[i - 1] + cost,  # substitution
            )
            current.append(value)
            if value < row_min:
                row_min = value
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    distance = previous[la]
    if max_distance is not None and distance > max_distance:
        # The row minima never exceeded the bound (some band cell stayed
        # cheap) but the final cell did: clamp to the sentinel so the
        # bounded variant's contract — d <= bound ? d : bound + 1 — holds.
        return max_distance + 1
    return distance


def within_distance(a: str, b: str, max_distance: int) -> bool:
    """True iff edit distance ≤ max_distance (early-exits)."""
    return levenshtein(a, b, max_distance) <= max_distance


def similarity(a: str, b: str) -> float:
    """Normalized syntactic similarity in [0, 1]: ``1 − d/max(|a|, |b|)``.

    This is the paper's Levenshtein-based component of the matching score
    ``sm(n)``.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest
