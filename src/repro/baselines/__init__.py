"""Baseline keyword-search systems the paper compares against (Fig. 5).

All baselines share the *answer-computation* paradigm the paper contrasts
with: they search the **data graph** directly for answer trees with distinct
roots, instead of computing queries over a summary.

* :mod:`~repro.baselines.backward` — BANKS backward search [Bhalotia+ 02]
* :mod:`~repro.baselines.bidirectional` — bidirectional expansion with
  activation spreading [Kacholia+ 05]
* :mod:`~repro.baselines.blinks` — partition-index guided search in the
  style of BLINKS [He+ 07], with BFS or METIS-like partitioners and
  configurable block counts (the paper's "300/1000 BFS/METIS" variants)
"""

from repro.baselines.graph_adapter import EntityGraphView
from repro.baselines.answer_trees import AnswerTree
from repro.baselines.backward import BackwardSearch
from repro.baselines.bidirectional import BidirectionalSearch
from repro.baselines.partitioning import bfs_partition, metis_like_partition, partition_quality
from repro.baselines.blinks import PartitionedIndexSearch

__all__ = [
    "EntityGraphView",
    "AnswerTree",
    "BackwardSearch",
    "BidirectionalSearch",
    "bfs_partition",
    "metis_like_partition",
    "partition_quality",
    "PartitionedIndexSearch",
]
