"""BLINKS-style partition-index guided search [He et al., SIGMOD 2007].

BLINKS accelerates backward search with a two-level index: the graph is cut
into blocks, and block-level distance information steers the expansion
toward keyword nodes instead of flooding equi-distantly.  We reproduce that
mechanism as an A*-guided backward search:

* offline — partition the node set (BFS or METIS-like, 300/1000 blocks) and
  materialize the block-level adjacency (blocks joined by portal edges);
* per query — BFS over the *block graph* gives, per keyword, a lower bound
  on the distance from any block to that keyword's nearest match
  (block-hop counts never overestimate node-hop counts);
* search — backward Dijkstra whose priority is ``g + h`` with ``h`` the
  block-level bound, which is the "searching with distance information"
  regime the paper's Section VI-A describes (the original BLINKS stores
  exact per-keyword distances; the block-granular bound trades index size
  for guidance precision exactly along the 300-vs-1000-block axis).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.baselines.answer_trees import AnswerTree, BaselineResult
from repro.baselines.graph_adapter import EntityGraphView
from repro.baselines.partitioning import bfs_partition, metis_like_partition


class PartitionedIndexSearch:
    """Backward search guided by a block-level distance index."""

    def __init__(
        self,
        view: EntityGraphView,
        blocks: int = 300,
        partitioner: str = "bfs",
        max_distance: int = 6,
        seed: int = 0,
    ):
        self._view = view
        self._max_distance = max_distance
        self.blocks = blocks
        self.partitioner = partitioner
        self.name = f"{blocks}-{partitioner}"

        adjacency = self._undirected_adjacency(view)
        if partitioner == "bfs":
            self._block = bfs_partition(adjacency, blocks, seed=seed)
        elif partitioner in ("metis", "metis-like"):
            self._block = metis_like_partition(adjacency, blocks, seed=seed)
        else:
            raise ValueError(f"unknown partitioner {partitioner!r}")

        self._block_adj = self._build_block_graph(adjacency, self._block)

    @staticmethod
    def _undirected_adjacency(view: EntityGraphView) -> List[List[int]]:
        adjacency: List[List[int]] = [[] for _ in range(view.node_count)]
        for node in range(view.node_count):
            for neighbor, _label in view.out_edges(node):
                adjacency[node].append(neighbor)
                adjacency[neighbor].append(node)
        return adjacency

    @staticmethod
    def _build_block_graph(
        adjacency: Sequence[Sequence[int]], block: Sequence[int]
    ) -> List[Set[int]]:
        block_count = max(block, default=-1) + 1
        block_adj: List[Set[int]] = [set() for _ in range(block_count)]
        for node, neighbors in enumerate(adjacency):
            for neighbor in neighbors:
                if block[node] != block[neighbor]:
                    block_adj[block[node]].add(block[neighbor])
                    block_adj[block[neighbor]].add(block[node])
        return block_adj

    # ------------------------------------------------------------------
    # Per-query block-level lower bounds
    # ------------------------------------------------------------------

    def _block_bounds(self, keyword_nodes: FrozenSet[int]) -> List[int]:
        """BFS over the block graph from the blocks containing matches."""
        INF = 10 ** 9
        bounds = [INF] * len(self._block_adj)
        queue = deque()
        for node in keyword_nodes:
            b = self._block[node]
            if bounds[b]:
                bounds[b] = 0
                queue.append(b)
        while queue:
            b = queue.popleft()
            for neighbor in self._block_adj[b]:
                if bounds[neighbor] > bounds[b] + 1:
                    bounds[neighbor] = bounds[b] + 1
                    queue.append(neighbor)
        return bounds

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, keywords: Sequence[str], k: int = 10) -> BaselineResult:
        keyword_sets = [s for s in self._view.keyword_nodes_all(keywords) if s]
        m = len(keyword_sets)
        if m == 0:
            return BaselineResult([], 0, 0, "no-keywords")

        bounds = [self._block_bounds(nodes) for nodes in keyword_sets]
        dist: List[Dict[int, Tuple[int, Optional[int]]]] = [{} for _ in range(m)]

        # (f = g + h, seq, keyword, node, g).
        heap: List[Tuple[int, int, int, int, int]] = []
        seq = 0
        for i, nodes in enumerate(keyword_sets):
            for node in sorted(nodes):
                dist[i][node] = (0, None)
                heap.append((0, seq, i, node, 0))
                seq += 1
        heapq.heapify(heap)

        trees: List[AnswerTree] = []
        seen_roots = set()
        nodes_visited = 0
        edges = 0
        terminated_by = "exhausted"

        while heap:
            _, _, i, node, g = heapq.heappop(heap)
            if dist[i].get(node, (None,))[0] != g:
                continue
            nodes_visited += 1

            if node not in seen_roots and all(node in dist[j] for j in range(m)):
                seen_roots.add(node)
                trees.append(self._build_tree(node, dist))
                if len(trees) >= k:
                    terminated_by = "k-found"
                    break

            if g >= self._max_distance:
                continue
            for neighbor, _label in self._view.in_edges(node):
                edges += 1
                ng = g + 1
                current = dist[i].get(neighbor)
                if current is None or ng < current[0]:
                    dist[i][neighbor] = (ng, node)
                    # Guide toward blocks that can still reach the *other*
                    # keywords: h = max over other keywords' block bounds.
                    h = 0
                    for j in range(m):
                        if j != i:
                            h = max(h, bounds[j][self._block[neighbor]])
                    seq += 1
                    heapq.heappush(heap, (ng + h, seq, i, neighbor, ng))

        trees.sort(key=lambda t: t.cost)
        return BaselineResult(trees, nodes_visited, edges, terminated_by)

    @staticmethod
    def _build_tree(root: int, dist: List[Dict[int, Tuple[int, Optional[int]]]]) -> AnswerTree:
        paths = []
        for table in dist:
            path = [root]
            node = root
            while True:
                _, successor = table[node]
                if successor is None:
                    break
                path.append(successor)
                node = successor
            paths.append(tuple(path))
        return AnswerTree(root, paths)

    def index_stats(self) -> Dict[str, float]:
        """Block-index size measures (for Fig. 5's index-size trade-off)."""
        portal_edges = sum(len(s) for s in self._block_adj) // 2
        return {
            "blocks": float(len(self._block_adj)),
            "portal_edges": float(portal_edges),
            "nodes": float(len(self._block)),
        }
