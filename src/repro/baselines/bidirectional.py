"""Bidirectional expansion with activation spreading [Kacholia et al., VLDB 2005].

Improves on backward search by also expanding *forward* (along outgoing
edges) from already-explored nodes, so hub-avoiding paths toward answer
roots are found sooner.  Prioritization is heuristic: every keyword node
starts with activation 1/|origin set|, activation decays by a factor μ per
hop and spreads through the queue; the node with the highest accumulated
activation is expanded next.  There is no worst-case or top-k optimality
guarantee — the behaviour the paper's Section VI-A contrasts its own
exploration against.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.answer_trees import AnswerTree, BaselineResult
from repro.baselines.graph_adapter import EntityGraphView


class BidirectionalSearch:
    """Kacholia-style bidirectional search over an :class:`EntityGraphView`."""

    name = "bidirectional"

    def __init__(
        self,
        view: EntityGraphView,
        decay: float = 0.5,
        max_distance: int = 6,
        expansion_budget: int = 200_000,
    ):
        self._view = view
        self._decay = decay
        self._max_distance = max_distance
        self._budget = expansion_budget

    def search(self, keywords: Sequence[str], k: int = 10) -> BaselineResult:
        keyword_sets = [s for s in self._view.keyword_nodes_all(keywords) if s]
        m = len(keyword_sets)
        if m == 0:
            return BaselineResult([], 0, 0, "no-keywords")

        dist: List[Dict[int, Tuple[int, Optional[int]]]] = [{} for _ in range(m)]
        activation: List[Dict[int, float]] = [{} for _ in range(m)]

        # Max-heap on activation: (-activation, seq, keyword, node, distance).
        heap: List[Tuple[float, int, int, int, int]] = []
        seq = 0
        for i, nodes in enumerate(keyword_sets):
            origin_activation = 1.0 / len(nodes)
            for node in sorted(nodes):
                dist[i][node] = (0, None)
                activation[i][node] = origin_activation
                heap.append((-origin_activation, seq, i, node, 0))
                seq += 1
        heapq.heapify(heap)

        trees: List[AnswerTree] = []
        seen_roots = set()
        nodes_visited = 0
        edges = 0
        terminated_by = "exhausted"

        while heap:
            neg_act, _, i, node, d = heapq.heappop(heap)
            if dist[i].get(node, (None,))[0] != d:
                continue
            nodes_visited += 1
            if nodes_visited > self._budget:
                terminated_by = "budget"
                break

            if node not in seen_roots and all(node in dist[j] for j in range(m)):
                seen_roots.add(node)
                trees.append(self._build_tree(node, dist))
                if len(trees) >= k:
                    terminated_by = "k-found"
                    break

            if d >= self._max_distance:
                continue

            spread = -neg_act * self._decay
            # Backward expansion (toward potential roots) and forward
            # expansion (following edge direction) both apply — forward is
            # what "bidirectional" adds over BANKS.
            for neighbor, _label in self._view.undirected_neighbors(node):
                edges += 1
                nd = d + 1
                current = dist[i].get(neighbor)
                if current is None or nd < current[0]:
                    dist[i][neighbor] = (nd, node)
                    new_act = activation[i].get(neighbor, 0.0) + spread
                    activation[i][neighbor] = new_act
                    seq += 1
                    heapq.heappush(heap, (-new_act, seq, i, neighbor, nd))

        trees.sort(key=lambda t: t.cost)
        return BaselineResult(trees, nodes_visited, edges, terminated_by)

    @staticmethod
    def _build_tree(root: int, dist: List[Dict[int, Tuple[int, Optional[int]]]]) -> AnswerTree:
        paths = []
        for table in dist:
            path = [root]
            node = root
            while True:
                _, successor = table[node]
                if successor is None:
                    break
                path.append(successor)
                node = successor
            paths.append(tuple(path))
        return AnswerTree(root, paths)
