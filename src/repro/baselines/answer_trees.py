"""Answer trees: the result model of the distinct-root baselines.

Under the distinct-root assumption (Section VI-A of the paper), an answer is
a tree rooted at some node with a directed path from the root to at least
one node per keyword; its cost is the sum of the path lengths — the basic
metric the BANKS family ranks by.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple


class AnswerTree:
    """One distinct-root answer: root + one root→keyword path per keyword."""

    __slots__ = ("root", "paths", "cost")

    def __init__(self, root: int, paths: Sequence[Tuple[int, ...]]):
        cost = float(sum(max(len(p) - 1, 0) for p in paths))
        object.__setattr__(self, "root", root)
        object.__setattr__(self, "paths", tuple(tuple(p) for p in paths))
        object.__setattr__(self, "cost", cost)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("AnswerTree is immutable")

    @property
    def nodes(self) -> FrozenSet[int]:
        out = {self.root}
        for path in self.paths:
            out.update(path)
        return frozenset(out)

    @property
    def keyword_nodes(self) -> Tuple[int, ...]:
        """The leaf (keyword-matching) node of each path."""
        return tuple(p[-1] for p in self.paths)

    @property
    def canonical_key(self) -> Tuple:
        """Distinct-root identity: the root plus the matched keyword nodes."""
        return (self.root, self.keyword_nodes)

    def __eq__(self, other):
        return isinstance(other, AnswerTree) and other.canonical_key == self.canonical_key

    def __hash__(self):
        return hash(self.canonical_key)

    def __repr__(self):
        return f"AnswerTree(root={self.root}, cost={self.cost:.0f}, paths={len(self.paths)})"


class BaselineResult:
    """Top-k answer trees plus exploration statistics."""

    __slots__ = ("trees", "nodes_visited", "edges_traversed", "terminated_by")

    def __init__(
        self,
        trees: List[AnswerTree],
        nodes_visited: int,
        edges_traversed: int,
        terminated_by: str,
    ):
        self.trees = trees
        self.nodes_visited = nodes_visited
        self.edges_traversed = edges_traversed
        self.terminated_by = terminated_by

    def __len__(self) -> int:
        return len(self.trees)

    def __repr__(self):
        return (
            f"BaselineResult(trees={len(self.trees)}, visited={self.nodes_visited}, "
            f"terminated_by={self.terminated_by!r})"
        )
