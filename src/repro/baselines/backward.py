"""BANKS backward search [Bhalotia et al., ICDE 2002].

Concurrent single-source shortest-path iterators run *backward* (along
incoming edges) from every keyword node, always expanding the globally
nearest frontier node ("equi-distance expansion").  A node reached by
iterators of every keyword is an answer root; answers are emitted in
discovery order, which approximates ascending cost — BANKS provides no
exact top-k guarantee, which is precisely the gap the paper's Algorithm 2
closes.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.answer_trees import AnswerTree, BaselineResult
from repro.baselines.graph_adapter import EntityGraphView


class BackwardSearch:
    """The BANKS algorithm over an :class:`EntityGraphView`."""

    name = "backward"

    def __init__(self, view: EntityGraphView, max_distance: int = 6):
        self._view = view
        self._max_distance = max_distance

    def search(self, keywords: Sequence[str], k: int = 10) -> BaselineResult:
        """Find up to k distinct-root answer trees."""
        keyword_sets = [s for s in self._view.keyword_nodes_all(keywords) if s]
        m = len(keyword_sets)
        if m == 0:
            return BaselineResult([], 0, 0, "no-keywords")

        # dist[i] maps node -> (distance, successor-toward-keyword).
        dist: List[Dict[int, Tuple[int, Optional[int]]]] = [{} for _ in range(m)]
        heap: List[Tuple[int, int, int, int]] = []  # (distance, seq, keyword, node)
        seq = 0
        for i, nodes in enumerate(keyword_sets):
            for node in sorted(nodes):
                dist[i][node] = (0, None)
                heap.append((0, seq, i, node))
                seq += 1
        heapq.heapify(heap)

        trees: List[AnswerTree] = []
        seen_roots = set()
        nodes_visited = 0
        edges = 0
        terminated_by = "exhausted"

        while heap:
            d, _, i, node = heapq.heappop(heap)
            if dist[i].get(node, (None,))[0] != d:
                continue  # stale entry
            nodes_visited += 1

            # Answer-root check: reached by every keyword iterator.
            if node not in seen_roots and all(node in dist[j] for j in range(m)):
                seen_roots.add(node)
                trees.append(self._build_tree(node, dist))
                if len(trees) >= k:
                    terminated_by = "k-found"
                    break

            if d >= self._max_distance:
                continue
            for neighbor, _label in self._view.in_edges(node):
                edges += 1
                nd = d + 1
                current = dist[i].get(neighbor)
                if current is None or nd < current[0]:
                    dist[i][neighbor] = (nd, node)
                    seq += 1
                    heapq.heappush(heap, (nd, seq, i, neighbor))

        trees.sort(key=lambda t: t.cost)
        return BaselineResult(trees, nodes_visited, edges, terminated_by)

    @staticmethod
    def _build_tree(root: int, dist: List[Dict[int, Tuple[int, Optional[int]]]]) -> AnswerTree:
        paths = []
        for table in dist:
            path = [root]
            node = root
            while True:
                _, successor = table[node]
                if successor is None:
                    break
                path.append(successor)
                node = successor
            paths.append(tuple(path))
        return AnswerTree(root, paths)
