"""Graph partitioners for the BLINKS-style baseline.

BLINKS [He et al., SIGMOD 2007] partitions the data graph into blocks and
builds a two-level index over them; the paper's Fig. 5 compares variants
with 300/1000 blocks produced by BFS partitioning and by METIS.  METIS
itself is unavailable offline, so :func:`metis_like_partition` implements
the same recipe METIS popularized — multilevel coarsening by heavy-edge
matching, greedy partitioning of the coarse graph, Kernighan–Lin-style
boundary refinement — at the quality level this workload needs
(DESIGN.md §4).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

Adjacency = Sequence[Sequence[int]]


def bfs_partition(adjacency: Adjacency, block_count: int, seed: int = 0) -> List[int]:
    """Partition nodes into ≤ ``block_count`` blocks by repeated bounded BFS.

    Seeds are chosen deterministically; each BFS grows a block up to the
    target size ``ceil(n / block_count)``, the strategy the BLINKS paper
    evaluates as its cheap partitioner.  Returns ``block_id`` per node.
    """
    n = len(adjacency)
    if block_count < 1:
        raise ValueError("block_count must be >= 1")
    target = max(1, -(-n // block_count))
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)

    block = [-1] * n
    current = 0
    for start in order:
        if block[start] != -1:
            continue
        size = 0
        queue = deque([start])
        while queue and size < target:
            node = queue.popleft()
            if block[node] != -1:
                continue
            block[node] = current
            size += 1
            for neighbor in adjacency[node]:
                if block[neighbor] == -1:
                    queue.append(neighbor)
        current += 1
    return block


def _coarsen(adjacency: Adjacency, seed: int) -> Tuple[List[int], List[List[int]]]:
    """One level of heavy-edge matching: pairs adjacent nodes greedily.

    Returns (coarse id per node, coarse adjacency).
    """
    n = len(adjacency)
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for node in order:
        if match[node] != -1:
            continue
        for neighbor in adjacency[node]:
            if neighbor != node and match[neighbor] == -1:
                match[node] = neighbor
                match[neighbor] = node
                break
        if match[node] == -1:
            match[node] = node  # unmatched: singleton

    coarse_id = [-1] * n
    next_id = 0
    for node in range(n):
        if coarse_id[node] != -1:
            continue
        coarse_id[node] = next_id
        partner = match[node]
        if partner != node:
            coarse_id[partner] = next_id
        next_id += 1

    coarse_sets: List[Set[int]] = [set() for _ in range(next_id)]
    for node in range(n):
        cid = coarse_id[node]
        for neighbor in adjacency[node]:
            nid = coarse_id[neighbor]
            if nid != cid:
                coarse_sets[cid].add(nid)
    return coarse_id, [sorted(s) for s in coarse_sets]


def metis_like_partition(
    adjacency: Adjacency,
    block_count: int,
    seed: int = 0,
    refinement_passes: int = 2,
) -> List[int]:
    """Multilevel partitioning: coarsen → partition → project → refine."""
    n = len(adjacency)
    if n == 0:
        return []

    # Coarsening phase: halve until small enough (or no progress).
    levels: List[Tuple[List[int], Adjacency]] = []
    current_adj: Adjacency = adjacency
    level_seed = seed
    while len(current_adj) > max(4 * block_count, 64):
        coarse_id, coarse_adj = _coarsen(current_adj, level_seed)
        if len(coarse_adj) >= len(current_adj):
            break
        levels.append((coarse_id, current_adj))
        current_adj = coarse_adj
        level_seed += 1

    # Initial partition of the coarsest graph.
    block = bfs_partition(current_adj, block_count, seed=seed)

    # Uncoarsening with refinement at every level.
    for coarse_id, fine_adj in reversed(levels):
        block = [block[coarse_id[node]] for node in range(len(fine_adj))]
        block = _refine(fine_adj, block, block_count, refinement_passes)
    if not levels:
        block = _refine(adjacency, block, block_count, refinement_passes)
    return block


def _refine(
    adjacency: Adjacency, block: List[int], block_count: int, passes: int
) -> List[int]:
    """KL-style greedy refinement: move boundary nodes to the neighboring
    block holding most of their neighbors, under a balance constraint."""
    n = len(adjacency)
    sizes: Dict[int, int] = {}
    for b in block:
        sizes[b] = sizes.get(b, 0) + 1
    max_size = max(1, int(1.3 * (-(-n // block_count))))

    for _ in range(passes):
        moved = 0
        for node in range(n):
            current_block = block[node]
            counts: Dict[int, int] = {}
            for neighbor in adjacency[node]:
                neighbor_block = block[neighbor]
                counts[neighbor_block] = counts.get(neighbor_block, 0) + 1
            if not counts:
                continue
            best_block, best_count = max(
                counts.items(), key=lambda kv: (kv[1], -kv[0])
            )
            internal = counts.get(current_block, 0)
            if (
                best_block != current_block
                and best_count > internal
                and sizes.get(best_block, 0) < max_size
                and sizes.get(current_block, 0) > 1
            ):
                sizes[current_block] -= 1
                sizes[best_block] = sizes.get(best_block, 0) + 1
                block[node] = best_block
                moved += 1
        if moved == 0:
            break
    return block


def partition_quality(adjacency: Adjacency, block: Sequence[int]) -> Dict[str, float]:
    """Edge-cut fraction and balance of a partition (for the ablation
    benchmark comparing BFS vs METIS-like quality)."""
    cut = 0
    total = 0
    for node, neighbors in enumerate(adjacency):
        for neighbor in neighbors:
            total += 1
            if block[node] != block[neighbor]:
                cut += 1
    sizes: Dict[int, int] = {}
    for b in block:
        sizes[b] = sizes.get(b, 0) + 1
    n = max(len(block), 1)
    blocks = max(len(sizes), 1)
    return {
        "edge_cut_fraction": cut / total if total else 0.0,
        "blocks": float(blocks),
        "max_block_size": float(max(sizes.values(), default=0)),
        "balance": max(sizes.values(), default=0) / max(1.0, n / blocks),
    }
