"""The data-graph view the baseline systems operate on.

BANKS-family systems model the database as a directed graph whose nodes are
tuples/entities; a keyword matches a node if it occurs in the node's text
(labels and attribute values).  This adapter derives that view from a
:class:`~repro.rdf.graph.DataGraph`:

* nodes — entities and classes (V-vertices fold into their owning entity:
  a node's text is its label plus all its attribute values);
* directed edges — R-edges plus ``type`` edges, with labels retained;
* keyword→nodes — an exact-match inverted index over node text (the
  baselines' published matching is exact, Section I of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.keyword.analysis import Analyzer
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import local_name
from repro.rdf.terms import Term, URI


class EntityGraphView:
    """Adjacency + keyword index over the entity-level data graph."""

    def __init__(self, graph: DataGraph, analyzer: Optional[Analyzer] = None):
        self._graph = graph
        self._analyzer = analyzer or Analyzer()

        # Node universe: entities + classes, with integer ids for speed.
        self._nodes: List[Term] = []
        self._ids: Dict[Term, int] = {}
        self._out: List[List[Tuple[int, URI]]] = []
        self._in: List[List[Tuple[int, URI]]] = []
        self._term_to_nodes: Dict[str, Set[int]] = {}

        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _node_id(self, term: Term) -> int:
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        node_id = len(self._nodes)
        self._ids[term] = node_id
        self._nodes.append(term)
        self._out.append([])
        self._in.append([])
        return node_id

    def _index_text(self, node_id: int, text: str) -> None:
        for term in self._analyzer.analyze_unique(text):
            self._term_to_nodes.setdefault(term, set()).add(node_id)

    def _build(self) -> None:
        graph = self._graph
        for entity in graph.entities:
            node_id = self._node_id(entity)
            self._index_text(node_id, local_name(entity) if isinstance(entity, URI) else str(entity))
            for predicate, value in graph.outgoing(entity):
                if value.is_literal:
                    self._index_text(node_id, value.lexical)
        for cls in graph.classes:
            node_id = self._node_id(cls)
            self._index_text(node_id, graph.label_of(cls))

        type_pred = graph.preferred_type_predicate
        subclass_pred = graph.preferred_subclass_predicate
        for triple in graph.relation_triples():
            source = self._ids[triple.subject]
            target = self._ids[triple.object]
            self._out[source].append((target, triple.predicate))
            self._in[target].append((source, triple.predicate))
        for entity in graph.entities:
            source = self._ids[entity]
            for cls in graph.types_of(entity):
                target = self._ids[cls]
                self._out[source].append((target, type_pred))
                self._in[target].append((source, type_pred))
        for sub, sup in graph.subclass_pairs():
            source = self._ids[sub]
            target = self._ids[sup]
            self._out[source].append((target, subclass_pred))
            self._in[target].append((source, subclass_pred))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out)

    def term_of(self, node_id: int) -> Term:
        return self._nodes[node_id]

    def label_of(self, node_id: int) -> str:
        return self._graph.label_of(self._nodes[node_id])

    def out_edges(self, node_id: int) -> Sequence[Tuple[int, URI]]:
        return self._out[node_id]

    def in_edges(self, node_id: int) -> Sequence[Tuple[int, URI]]:
        return self._in[node_id]

    def undirected_neighbors(self, node_id: int) -> Iterable[Tuple[int, URI]]:
        yield from self._out[node_id]
        yield from self._in[node_id]

    # ------------------------------------------------------------------
    # Keyword matching (exact, per the baselines' published behaviour)
    # ------------------------------------------------------------------

    def keyword_nodes(self, keyword: str) -> FrozenSet[int]:
        """Nodes whose text contains every analyzed term of the keyword."""
        terms = self._analyzer.analyze_unique(keyword)
        if not terms:
            return frozenset()
        result: Optional[Set[int]] = None
        for term in terms:
            bucket = self._term_to_nodes.get(term, set())
            result = set(bucket) if result is None else (result & bucket)
            if not result:
                return frozenset()
        return frozenset(result)

    def keyword_nodes_all(self, keywords: Sequence[str]) -> List[FrozenSet[int]]:
        return [self.keyword_nodes(k) for k in keywords]

    def __repr__(self):
        return f"EntityGraphView(nodes={self.node_count}, edges={self.edge_count})"
