"""Small shared utilities."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class LruDict(OrderedDict):
    """A bounded mapping with least-recently-used eviction.

    The query-time memo layers (engine search results, keyword lookups,
    guided bound tables) all share this shape: :meth:`hit` returns a value
    and refreshes its recency, :meth:`put` inserts and evicts the oldest
    entries beyond ``maxsize``.  ``None`` is not a valid value (it marks a
    miss).

    Concurrent queries against one engine share these caches, so both
    operations tolerate a key disappearing between their individual
    (GIL-atomic) dict steps — a lost recency refresh or a lost entry is
    harmless; a raised ``KeyError`` out of a cache would not be.
    """

    def __init__(self, maxsize: int):
        super().__init__()
        self.maxsize = maxsize

    def hit(self, key) -> Optional[object]:
        """The cached value, refreshed as most-recent; None on a miss."""
        value = self.get(key)
        if value is not None:
            try:
                self.move_to_end(key)
            except KeyError:  # evicted by a concurrent put
                pass
        return value

    def put(self, key, value) -> None:
        """Insert a value as most-recent and evict least-recently-used
        entries (overwriting an existing key refreshes its recency)."""
        self[key] = value
        try:
            self.move_to_end(key)
        except KeyError:  # removed by a concurrent eviction
            pass
        while len(self) > self.maxsize:
            try:
                self.popitem(last=False)
            except KeyError:  # drained by a concurrent eviction
                break
