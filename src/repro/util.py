"""Small shared utilities."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional


class LruDict(OrderedDict):
    """A bounded, thread-safe mapping with least-recently-used eviction.

    The query-time memo layers (engine search results, keyword lookups,
    guided bound tables) all share this shape: :meth:`hit` returns a value
    and refreshes its recency, :meth:`put` inserts and evicts the oldest
    entries beyond ``maxsize``.  ``None`` is not a valid value (it marks a
    miss).

    The serving layer (:mod:`repro.service`) runs many searches against
    one engine from a worker pool, so these caches are hammered from
    several threads at once.  :meth:`hit`, :meth:`put`, and :meth:`clear`
    therefore hold a private lock for the duration of their (short,
    non-reentrant) critical sections: the size bound holds at every
    quiescent point, and no internal ``KeyError``/``RuntimeError`` can
    escape from interleaved eviction, overwrite, and clear.

    Hit/miss counters are maintained for service-level cache statistics
    (:meth:`cache_stats`); they count :meth:`hit` calls only, so code that
    bypasses the memo protocol does not skew the rates.
    """

    def __init__(self, maxsize: int):
        self._lock = threading.Lock()
        super().__init__()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def hit(self, key) -> Optional[object]:
        """The cached value, refreshed as most-recent; None on a miss."""
        with self._lock:
            value = self.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Insert a value as most-recent and evict least-recently-used
        entries (overwriting an existing key refreshes its recency)."""
        with self._lock:
            self[key] = value
            self.move_to_end(key)
            while len(self) > self.maxsize:
                self.popitem(last=False)

    def clear(self) -> None:  # type: ignore[override]
        with self._lock:
            super().clear()

    def cache_stats(self) -> Dict[str, float]:
        """Size, bound, and hit/miss counts — the service ``/stats`` shape."""
        with self._lock:
            hits, misses = self.hits, self.misses
            lookups = hits + misses
            return {
                "size": len(self),
                "maxsize": self.maxsize,
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
