"""Conjunctive queries (Definition 2), their evaluation (Definition 3),
and surface renderings (SPARQL, single-table SQL, natural language).
"""

from repro.query.conjunctive import Atom, ConjunctiveQuery, QueryValidationError
from repro.query.evaluator import QueryEvaluator, Answer
from repro.query.sparql import to_sparql, parse_sparql, SparqlParseError
from repro.query.sql import to_sql
from repro.query.nlg import verbalize
from repro.query.isomorphism import queries_isomorphic, canonical_form

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "QueryValidationError",
    "QueryEvaluator",
    "Answer",
    "to_sparql",
    "parse_sparql",
    "SparqlParseError",
    "to_sql",
    "verbalize",
    "queries_isomorphic",
    "canonical_form",
]
