"""FILTER support: the query-operator extension of the paper's Section IX.

The conclusions name one concrete piece of future work: "the current
indices and algorithms can be extended to recognize keywords that
correspond to special query operators such as filters".  This module
implements that extension end to end:

* :class:`Filter` — a comparison constraint over one query variable
  (``<``, ``≤``, ``>``, ``≥``, ``≠``, range), with numeric-aware ordering;
* :class:`FilteredQuery` — a conjunctive query plus filters, renderable as
  SPARQL ``FILTER`` clauses and evaluable on the store;
* :func:`parse_filter_keyword` — the keyword-side recognizer: ``before
  2005``, ``after 2000``, ``2000-2005``, ``under 300`` become filter
  operators instead of plain value keywords.

The engine applies recognized filter keywords to the attribute variable
the remaining keywords' best interpretation binds (see
``KeywordSearchEngine.search_with_filters``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.evaluator import Answer, QueryEvaluator
from repro.query.sparql import to_sparql
from repro.rdf.terms import Literal, Term, Variable


def _comparable(term: Term):
    """A sortable value for a term: numbers compare numerically, everything
    else by lexical form (numbers sort before strings deterministically)."""
    if isinstance(term, Literal):
        text = term.lexical.strip()
        try:
            return (0, float(text))
        except ValueError:
            return (1, text)
    return (1, str(term))


class Filter:
    """A comparison constraint ``variable OP value`` (or a closed range)."""

    OPS = ("<", "<=", ">", ">=", "!=", "range")

    __slots__ = ("variable", "op", "value", "upper")

    def __init__(
        self,
        variable: Variable,
        op: str,
        value: Literal,
        upper: Optional[Literal] = None,
    ):
        if op not in self.OPS:
            raise ValueError(f"unknown filter operator {op!r}")
        if op == "range" and upper is None:
            raise ValueError("range filter needs an upper bound")
        object.__setattr__(self, "variable", variable)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "upper", upper)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Filter is immutable")

    def accepts(self, term: Term) -> bool:
        """Does a bound term satisfy the constraint?"""
        actual = _comparable(term)
        bound = _comparable(self.value)
        if self.op == "<":
            return actual < bound
        if self.op == "<=":
            return actual <= bound
        if self.op == ">":
            return actual > bound
        if self.op == ">=":
            return actual >= bound
        if self.op == "!=":
            return actual != bound
        return bound <= actual <= _comparable(self.upper)

    def rebind(self, variable: Variable) -> "Filter":
        return Filter(variable, self.op, self.value, self.upper)

    def to_sparql(self) -> str:
        if self.op == "range":
            return (
                f"FILTER({self.variable} >= {self.value.n3()} && "
                f"{self.variable} <= {self.upper.n3()})"
            )
        return f"FILTER({self.variable} {self.op} {self.value.n3()})"

    def __eq__(self, other):
        return (
            isinstance(other, Filter)
            and (other.variable, other.op, other.value, other.upper)
            == (self.variable, self.op, self.value, self.upper)
        )

    def __hash__(self):
        return hash((self.variable, self.op, self.value, self.upper))

    def __repr__(self):
        if self.op == "range":
            return f"Filter({self.variable} in [{self.value.lexical}, {self.upper.lexical}])"
        return f"Filter({self.variable} {self.op} {self.value.lexical})"


class FilteredQuery:
    """A conjunctive query with attached filters."""

    __slots__ = ("query", "filters")

    def __init__(self, query: ConjunctiveQuery, filters: Sequence[Filter]):
        known = set(query.variables)
        for f in filters:
            if f.variable not in known:
                raise ValueError(f"filter variable {f.variable} not in query")
        object.__setattr__(self, "query", query)
        object.__setattr__(self, "filters", tuple(filters))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("FilteredQuery is immutable")

    def to_sparql(self) -> str:
        base = to_sparql(self.query)
        if not self.filters:
            return base
        clauses = "\n  ".join(f.to_sparql() for f in self.filters)
        return base.replace("\n}", f"\n  {clauses}\n}}")

    def evaluate(
        self, evaluator: QueryEvaluator, limit: Optional[int] = None
    ) -> List[Answer]:
        """All (or the first ``limit``) answers satisfying every filter."""
        out: List[Answer] = []
        for answer in evaluator.iter_answers(self.query):
            bindings = answer.as_dict()
            if all(f.accepts(bindings[f.variable]) for f in self.filters):
                out.append(answer)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def __repr__(self):
        return f"FilteredQuery({self.query}, filters={list(self.filters)})"


# ----------------------------------------------------------------------
# Keyword-side recognition
# ----------------------------------------------------------------------

#: Recognized comparison words and the operator they carry.
_COMPARISON_WORDS = {
    "before": "<",
    "until": "<=",
    "after": ">",
    "since": ">=",
    "under": "<",
    "below": "<",
    "over": ">",
    "above": ">",
    "not": "!=",
    "except": "!=",
}

_RANGE_RE = re.compile(r"^(\d{1,9})\s*(?:-|–|\.\.|to)\s*(\d{1,9})$")
_COMPARISON_RE = re.compile(r"^([a-z]+)\s+(\S.*)$")


class FilterKeyword:
    """A recognized filter operator, before it is bound to a variable."""

    __slots__ = ("op", "value", "upper", "source")

    def __init__(self, op: str, value: Literal, upper: Optional[Literal], source: str):
        self.op = op
        self.value = value
        self.upper = upper
        self.source = source

    def bind(self, variable: Variable) -> Filter:
        return Filter(variable, self.op, self.value, self.upper)

    def __repr__(self):
        if self.op == "range":
            return f"FilterKeyword([{self.value.lexical}..{self.upper.lexical}])"
        return f"FilterKeyword({self.op} {self.value.lexical})"


def parse_filter_keyword(keyword: str) -> Optional[FilterKeyword]:
    """Recognize a keyword as a filter operator, or return None.

    >>> parse_filter_keyword("before 2005").op
    '<'
    >>> parse_filter_keyword("2000-2005").op
    'range'
    >>> parse_filter_keyword("cimiano") is None
    True
    """
    text = keyword.strip().lower()
    range_match = _RANGE_RE.match(text)
    if range_match:
        low, high = range_match.groups()
        if int(low) <= int(high):
            return FilterKeyword("range", Literal(low), Literal(high), keyword)
        return FilterKeyword("range", Literal(high), Literal(low), keyword)
    comparison = _COMPARISON_RE.match(text)
    if comparison:
        word, operand = comparison.groups()
        op = _COMPARISON_WORDS.get(word)
        if op is not None:
            return FilterKeyword(op, Literal(operand.strip()), None, keyword)
    return None
