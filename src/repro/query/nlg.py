"""Template-based natural-language verbalization of conjunctive queries.

The paper's demo (SearchWebDB) "transforms [the top-k queries] to simple
natural language questions and presents them to the user" (Section VII).
This module reproduces that presentation layer: a deterministic, readable
English gloss of a query, grouped per variable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.query.conjunctive import ConjunctiveQuery
from repro.rdf.namespace import SUBCLASS_PREDICATES, TYPE_PREDICATES, local_name
from repro.rdf.terms import Literal, Term, URI, Variable


def _term_text(term) -> str:
    if isinstance(term, Variable):
        return f"something ({term})"
    if isinstance(term, Literal):
        return f"'{term.lexical}'"
    if isinstance(term, URI):
        return local_name(term)
    return str(term)


def _humanize(label: str) -> str:
    """camelCase / snake_case predicate names to spaced words."""
    out = []
    for ch in label:
        if ch.isupper() and out and out[-1] != " ":
            out.append(" ")
            out.append(ch.lower())
        elif ch == "_":
            out.append(" ")
        else:
            out.append(ch)
    return "".join(out)


def verbalize(query: ConjunctiveQuery) -> str:
    """A one-paragraph English reading of the query.

    >>> from repro.rdf.terms import URI, Variable, Literal
    >>> from repro.query.conjunctive import Atom, ConjunctiveQuery
    >>> q = ConjunctiveQuery([
    ...     Atom(URI("type"), Variable("x"), URI("Publication")),
    ...     Atom(URI("year"), Variable("x"), Literal("2006")),
    ... ])
    >>> verbalize(q)
    "Find ?x, a Publication, whose year is '2006'."
    """
    types: Dict[Variable, List[str]] = {}
    facts: Dict[Variable, List[str]] = {}
    order: List[Variable] = []

    def _var_bucket(v: Variable) -> List[str]:
        if v not in facts:
            facts[v] = []
            if v not in order:
                order.append(v)
        return facts[v]

    for atom in query.atoms:
        pred = atom.predicate
        if pred in TYPE_PREDICATES and isinstance(atom.arg1, Variable):
            types.setdefault(atom.arg1, []).append(_term_text(atom.arg2))
            if atom.arg1 not in order:
                order.append(atom.arg1)
            continue
        if pred in SUBCLASS_PREDICATES:
            subject = atom.arg1
            if isinstance(subject, Variable):
                _var_bucket(subject).append(
                    f"is a kind of {_term_text(atom.arg2)}"
                )
            continue
        predicate_text = _humanize(local_name(pred))
        if isinstance(atom.arg1, Variable):
            _var_bucket(atom.arg1).append(
                f"whose {predicate_text} is {_term_text(atom.arg2)}"
            )
        else:
            # Constant subject: phrase it as a standalone fact.
            subject_text = _term_text(atom.arg1)
            obj = atom.arg2
            if isinstance(obj, Variable):
                _var_bucket(obj).append(
                    f"is the {predicate_text} of {subject_text}"
                )

    sentences: List[str] = []
    for v in order:
        parts: List[str] = []
        type_list = types.get(v, [])
        if type_list:
            parts.append("a " + " and ".join(type_list))
        parts.extend(facts.get(v, []))
        if not parts:
            continue
        if v in set(query.distinguished):
            lead = f"Find {v}"
        else:
            lead = f"where {v} is"
        sentences.append(f"{lead}, {', '.join(parts)}")
    if not sentences:
        return "Find all matches."
    return ". ".join(sentences) + "."
