"""Rendering conjunctive queries as single-table self-join SQL (Fig. 1c).

The paper's Fig. 1c shows the SQL an RDF store of its era would run: one
alias of the three-column table ``Ex(s, p, o)`` per query atom, equality
predicates wiring shared variables together.  :func:`to_sql` reproduces that
rendering, and :func:`to_table_patterns` yields the equivalent pattern list
for :class:`repro.store.single_table.SingleTableStore`.
"""

from __future__ import annotations

import string
from typing import Dict, List, Sequence, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.rdf.terms import Literal, Term, URI, Variable

#: Column names of the single-table schema, in atom-argument order.
_COLUMNS = ("s", "o")


def _alias_name(i: int) -> str:
    """A, B, …, Z, A1, B1, … — readable table aliases like Fig. 1c."""
    letters = string.ascii_uppercase
    if i < len(letters):
        return letters[i]
    return f"{letters[i % len(letters)]}{i // len(letters)}"


def _sql_value(term: Term) -> str:
    if isinstance(term, Literal):
        escaped = term.lexical.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(term, URI):
        escaped = term.value.replace("'", "''")
        return f"'{escaped}'"
    raise TypeError(f"cannot render {term!r} as SQL value")


def to_sql(query: ConjunctiveQuery, table: str = "Ex") -> str:
    """Render a conjunctive query as Fig. 1c-style self-join SQL."""
    aliases = [_alias_name(i) for i in range(len(query.atoms))]

    # First column reference for every variable, for SELECT and joins.
    var_columns: Dict[Variable, str] = {}
    conditions: List[str] = []

    for alias, atom in zip(aliases, query.atoms):
        conditions.append(f"{alias}.p = {_sql_value(atom.predicate)}")
        for col, arg in zip(_COLUMNS, (atom.arg1, atom.arg2)):
            ref = f"{alias}.{col}"
            if isinstance(arg, Variable):
                if arg in var_columns:
                    conditions.append(f"{ref} = {var_columns[arg]}")
                else:
                    var_columns[arg] = ref
            else:
                conditions.append(f"{ref} = {_sql_value(arg)}")

    select = ", ".join(var_columns[v] for v in query.distinguished)
    from_clause = ", ".join(f"{table} AS {a}" for a in aliases)
    where = "\n  AND ".join(conditions)
    return f"SELECT {select}\nFROM {from_clause}\nWHERE {where}"


def to_table_patterns(
    query: ConjunctiveQuery,
) -> Tuple[List[Tuple[Term, Term, Term]], Sequence[Variable]]:
    """The (patterns, projection) pair for ``SingleTableStore`` evaluation."""
    patterns = [(a.arg1, a.predicate, a.arg2) for a in query.atoms]
    return patterns, query.distinguished
