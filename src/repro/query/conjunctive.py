"""Conjunctive queries per Definition 2 of the paper.

A query is ``(x_1..x_k). ∃ x_{k+1}..x_m . A_1 ∧ … ∧ A_r`` where each atom is
``P(v_1, v_2)`` with ``P`` a predicate (an edge label of the data graph) and
``v_1, v_2`` variables or constants.  Distinguished variables are those bound
to produce answers; the rest are existential.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.namespace import local_name
from repro.rdf.terms import Literal, Term, URI, Variable

AtomArg = Union[Variable, Term]


class QueryValidationError(ValueError):
    """Raised when a query violates Definition 2's well-formedness rules."""


class Atom:
    """A query atom ``P(v1, v2)`` — one triple pattern.

    ``predicate`` is always a constant URI (Definition 2 has no predicate
    variables); the two arguments may each be a variable or a constant.
    """

    __slots__ = ("predicate", "arg1", "arg2")

    def __init__(self, predicate: URI, arg1: AtomArg, arg2: AtomArg):
        if not isinstance(predicate, URI):
            raise QueryValidationError(
                f"atom predicate must be a URI, got {type(predicate).__name__}"
            )
        if isinstance(arg1, Literal):
            raise QueryValidationError("atom subject cannot be a literal")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "arg1", arg1)
        object.__setattr__(self, "arg2", arg2)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Atom is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and other.predicate == self.predicate
            and other.arg1 == self.arg1
            and other.arg2 == self.arg2
        )

    def __hash__(self):
        return hash((self.predicate, self.arg1, self.arg2))

    def __repr__(self):
        return f"Atom({self.predicate!r}, {self.arg1!r}, {self.arg2!r})"

    def __str__(self):
        return f"{local_name(self.predicate)}({_arg_str(self.arg1)}, {_arg_str(self.arg2)})"

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The variables occurring in this atom, in position order."""
        out = []
        if isinstance(self.arg1, Variable):
            out.append(self.arg1)
        if isinstance(self.arg2, Variable):
            out.append(self.arg2)
        return tuple(out)

    def substitute(self, binding) -> "Atom":
        """Apply a variable binding, leaving unbound variables in place."""
        a1 = binding.get(self.arg1, self.arg1) if isinstance(self.arg1, Variable) else self.arg1
        a2 = binding.get(self.arg2, self.arg2) if isinstance(self.arg2, Variable) else self.arg2
        return Atom(self.predicate, a1, a2)


def _arg_str(arg: AtomArg) -> str:
    if isinstance(arg, Variable):
        return str(arg)
    if isinstance(arg, Literal):
        return repr(arg.lexical)
    if isinstance(arg, URI):
        return local_name(arg)
    return str(arg)


class ConjunctiveQuery:
    """A conjunctive query: atoms plus the distinguished-variable tuple.

    If ``distinguished`` is omitted, *all* variables are distinguished — the
    paper's default when nothing but keywords is known (Section VI-D).
    """

    __slots__ = ("atoms", "distinguished")

    def __init__(
        self,
        atoms: Iterable[Atom],
        distinguished: Optional[Sequence[Variable]] = None,
    ):
        # Duplicate atoms are logically redundant in a conjunction; drop
        # them (first occurrence kept) so equality, isomorphism and
        # canonical forms all see the same atom multiset.
        atoms = tuple(dict.fromkeys(atoms))
        if not atoms:
            raise QueryValidationError("a conjunctive query needs at least one atom")
        all_vars = _ordered_variables(atoms)
        if distinguished is None:
            distinguished = all_vars
        else:
            distinguished = tuple(distinguished)
            unknown = [v for v in distinguished if v not in set(all_vars)]
            if unknown:
                raise QueryValidationError(
                    f"distinguished variables not in query: {unknown}"
                )
            if len(set(distinguished)) != len(distinguished):
                raise QueryValidationError("duplicate distinguished variable")
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "distinguished", tuple(distinguished))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("ConjunctiveQuery is immutable")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, in first-occurrence order."""
        return _ordered_variables(self.atoms)

    @property
    def undistinguished(self) -> Tuple[Variable, ...]:
        """The existential variables."""
        chosen = set(self.distinguished)
        return tuple(v for v in self.variables if v not in chosen)

    @property
    def constants(self) -> FrozenSet[Term]:
        """All constant arguments (URIs and literals)."""
        out: Set[Term] = set()
        for atom in self.atoms:
            if not isinstance(atom.arg1, Variable):
                out.add(atom.arg1)
            if not isinstance(atom.arg2, Variable):
                out.add(atom.arg2)
        return frozenset(out)

    @property
    def predicates(self) -> FrozenSet[URI]:
        return frozenset(a.predicate for a in self.atoms)

    def is_connected(self) -> bool:
        """True if the query's join graph is connected.

        Atoms are nodes; two atoms are adjacent when they share a variable.
        Matching subgraphs are connected by construction (Definition 6), so
        queries derived from them must pass this check.
        """
        if len(self.atoms) <= 1:
            return True
        var_to_atoms = {}
        for i, atom in enumerate(self.atoms):
            for v in atom.variables:
                var_to_atoms.setdefault(v, []).append(i)
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for v in self.atoms[i].variables:
                for j in var_to_atoms[v]:
                    if j not in seen:
                        seen.add(j)
                        stack.append(j)
        return len(seen) == len(self.atoms)

    def project(self, variables: Sequence[Variable]) -> "ConjunctiveQuery":
        """A copy with a different distinguished-variable tuple."""
        return ConjunctiveQuery(self.atoms, distinguished=variables)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other):
        """Syntactic equality: same atom *set* and same projection *set*.

        Tuple order is presentation, not identity — the default
        distinguished tuple derives from atom order, and answers carry
        their own variable order.
        """
        return (
            isinstance(other, ConjunctiveQuery)
            and frozenset(other.atoms) == frozenset(self.atoms)
            and frozenset(other.distinguished) == frozenset(self.distinguished)
        )

    def __hash__(self):
        return hash((frozenset(self.atoms), frozenset(self.distinguished)))

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __repr__(self):
        return f"ConjunctiveQuery({list(self.atoms)!r}, distinguished={list(self.distinguished)!r})"

    def __str__(self):
        head = ", ".join(str(v) for v in self.distinguished)
        exist = self.undistinguished
        prefix = f"({head})."
        if exist:
            prefix += " ∃" + ",".join(str(v) for v in exist) + "."
        body = " ∧ ".join(str(a) for a in self.atoms)
        return f"{prefix} {body}"


def _ordered_variables(atoms: Iterable[Atom]) -> Tuple[Variable, ...]:
    seen: List[Variable] = []
    seen_set: Set[Variable] = set()
    for atom in atoms:
        for v in atom.variables:
            if v not in seen_set:
                seen_set.add(v)
                seen.append(v)
    return tuple(seen)
