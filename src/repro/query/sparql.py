"""SPARQL rendering and a parser for the emitted subset.

The paper presents each computed conjunctive query to the user as SPARQL
(Fig. 1c).  :func:`to_sparql` renders; :func:`parse_sparql` reads back the
same subset — ``SELECT ?v ... WHERE { pattern . ... }`` with URIs in angle
brackets, plain/typed literals, and variables — enabling round-trip tests
and programmatic query input.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.terms import Literal, Term, URI, Variable


def to_sparql(query: ConjunctiveQuery, pretty: bool = True) -> str:
    """Render a conjunctive query as a SPARQL SELECT query.

    >>> q = ConjunctiveQuery([Atom(URI("p"), Variable("x"), Literal("2006"))])
    >>> to_sparql(q, pretty=False)
    'SELECT ?x WHERE { ?x <p> "2006" . }'
    """
    head = " ".join(str(v) for v in query.distinguished)
    patterns = [
        f"{_term_sparql(a.arg1)} {_term_sparql(a.predicate)} {_term_sparql(a.arg2)} ."
        for a in query.atoms
    ]
    if pretty:
        body = "\n  ".join(patterns)
        return f"SELECT {head} WHERE {{\n  {body}\n}}"
    return f"SELECT {head} WHERE {{ {' '.join(patterns)} }}"


def _term_sparql(term: Union[Term, Variable]) -> str:
    if isinstance(term, Variable):
        return str(term)
    if isinstance(term, Literal):
        return term.n3()
    if isinstance(term, URI):
        return f"<{term.value}>"
    return term.n3()


class SparqlParseError(ValueError):
    """Raised on input outside the supported SPARQL subset."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<keyword>SELECT|WHERE|DISTINCT)\b
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<uri><[^<>\s]+>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<dtype>\^\^)
  | (?P<lang>@[A-Za-z][A-Za-z0-9-]*)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<dot>\.)
  | (?P<star>\*)
    """,
    re.VERBOSE | re.IGNORECASE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SparqlParseError(f"unexpected input at offset {pos}: {text[pos:pos+20]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind != "ws":
            tokens.append((kind, m.group()))
    return tokens


def parse_sparql(text: str) -> ConjunctiveQuery:
    """Parse the SPARQL subset emitted by :func:`to_sparql`."""
    tokens = _tokenize(text)
    cursor = 0

    def peek() -> Optional[Tuple[str, str]]:
        return tokens[cursor] if cursor < len(tokens) else None

    def take(expected_kind: str) -> str:
        nonlocal cursor
        tok = peek()
        if tok is None or tok[0] != expected_kind:
            raise SparqlParseError(f"expected {expected_kind}, got {tok}")
        cursor += 1
        return tok[1]

    kw = take("keyword")
    if kw.upper() != "SELECT":
        raise SparqlParseError("query must start with SELECT")

    select_all = False
    head: List[Variable] = []
    while True:
        tok = peek()
        if tok is None:
            raise SparqlParseError("unexpected end of input in SELECT clause")
        if tok[0] == "keyword" and tok[1].upper() == "DISTINCT":
            cursor += 1
            continue
        if tok[0] == "star":
            cursor += 1
            select_all = True
            continue
        if tok[0] == "var":
            head.append(Variable(take("var")))
            continue
        break

    kw = take("keyword")
    if kw.upper() != "WHERE":
        raise SparqlParseError("expected WHERE")
    take("lbrace")

    atoms: List[Atom] = []
    while True:
        tok = peek()
        if tok is None:
            raise SparqlParseError("unterminated WHERE block")
        if tok[0] == "rbrace":
            cursor += 1
            break
        s_term, cursor = _parse_term(tokens, cursor)
        p_term, cursor = _parse_term(tokens, cursor)
        o_term, cursor = _parse_term(tokens, cursor)
        if not isinstance(p_term, URI):
            raise SparqlParseError("predicate must be a URI")
        atoms.append(Atom(p_term, s_term, o_term))
        if peek() is not None and peek()[0] == "dot":
            cursor += 1
    if cursor != len(tokens):
        raise SparqlParseError("trailing content after WHERE block")
    if not atoms:
        raise SparqlParseError("empty WHERE block")
    distinguished = None if select_all or not head else head
    return ConjunctiveQuery(atoms, distinguished=distinguished)


def _parse_term(tokens: List[Tuple[str, str]], cursor: int):
    if cursor >= len(tokens):
        raise SparqlParseError("unexpected end of input in triple pattern")
    kind, text = tokens[cursor]
    if kind == "var":
        return Variable(text), cursor + 1
    if kind == "uri":
        return URI(text[1:-1]), cursor + 1
    if kind == "literal":
        lexical = _unescape(text[1:-1])
        cursor += 1
        if cursor < len(tokens) and tokens[cursor][0] == "dtype":
            cursor += 1
            if cursor >= len(tokens) or tokens[cursor][0] != "uri":
                raise SparqlParseError("datatype must be a URI")
            dtype = URI(tokens[cursor][1][1:-1])
            return Literal(lexical, datatype=dtype), cursor + 1
        if cursor < len(tokens) and tokens[cursor][0] == "lang":
            lang = tokens[cursor][1][1:]
            return Literal(lexical, language=lang), cursor + 1
        return Literal(lexical), cursor
    raise SparqlParseError(f"unexpected token in triple pattern: {text!r}")


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\r", "\r")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )
