"""Query isomorphism: equality of conjunctive queries up to variable renaming.

The effectiveness study (Fig. 4) scores a generated query as *correct* when
it matches the intended query of the workload's NL description.  Two queries
express the same intent iff one can be mapped onto the other by a bijective
renaming of variables that preserves every atom — which is what
:func:`queries_isomorphic` decides (exactly, by backtracking; queries here
are small).  :func:`canonical_form` gives a renaming-invariant key usable for
hashing/deduplication.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.terms import Term, Variable


def queries_isomorphic(
    a: ConjunctiveQuery,
    b: ConjunctiveQuery,
    check_distinguished: bool = False,
) -> bool:
    """True iff the queries are equal up to a bijective variable renaming.

    With ``check_distinguished`` the renaming must also map a's distinguished
    tuple onto b's (position-wise); by default only the atom sets matter,
    matching the paper's default of treating all variables as distinguished.
    """
    atoms_a = list(dict.fromkeys(a.atoms))
    atoms_b = list(dict.fromkeys(b.atoms))
    if len(atoms_a) != len(atoms_b):
        return False
    if len(a.variables) != len(b.variables):
        return False
    if check_distinguished and len(a.distinguished) != len(b.distinguished):
        return False

    seed: Dict[Variable, Variable] = {}
    if check_distinguished:
        for va, vb in zip(a.distinguished, b.distinguished):
            if seed.setdefault(va, vb) != vb:
                return False
        if len(set(seed.values())) != len(seed):
            return False

    return _match(atoms_a, atoms_b, seed)


def _match(
    remaining: List[Atom],
    candidates: List[Atom],
    mapping: Dict[Variable, Variable],
) -> bool:
    if not remaining:
        return True
    atom = remaining[0]
    rest = remaining[1:]
    for i, candidate in enumerate(candidates):
        extension = _unify_atoms(atom, candidate, mapping)
        if extension is None:
            continue
        if _match(rest, candidates[:i] + candidates[i + 1 :], extension):
            return True
    return False


def _unify_atoms(
    a: Atom, b: Atom, mapping: Dict[Variable, Variable]
) -> Optional[Dict[Variable, Variable]]:
    if a.predicate != b.predicate:
        return None
    extension = dict(mapping)
    used = set(extension.values())
    for arg_a, arg_b in ((a.arg1, b.arg1), (a.arg2, b.arg2)):
        if isinstance(arg_a, Variable) != isinstance(arg_b, Variable):
            return None
        if isinstance(arg_a, Variable):
            bound = extension.get(arg_a)
            if bound is None:
                if arg_b in used:
                    return None  # must stay injective
                extension[arg_a] = arg_b
                used.add(arg_b)
            elif bound != arg_b:
                return None
        elif arg_a != arg_b:
            return None
    return extension


def canonical_form(query: ConjunctiveQuery) -> FrozenSet[Tuple]:
    """A renaming-invariant fingerprint of the query's atom set.

    Variables are replaced by their *signature*: the multiset of
    (predicate, position, other-argument-if-constant) contexts they occur in.
    Queries with equal canonical forms are usually isomorphic; the exact
    check remains :func:`queries_isomorphic` (signatures can collide on
    highly symmetric queries).
    """
    signatures: Dict[Variable, Tuple] = {}
    occurrences: Dict[Variable, List[Tuple]] = {}
    for atom in dict.fromkeys(query.atoms):
        for pos, (arg, other) in enumerate(
            ((atom.arg1, atom.arg2), (atom.arg2, atom.arg1))
        ):
            if isinstance(arg, Variable):
                # n3() gives a sortable, injective string key for constants.
                other_key = (
                    ("var",) if isinstance(other, Variable) else ("const", other.n3())
                )
                occurrences.setdefault(arg, []).append(
                    (atom.predicate.value, pos, other_key)
                )
    for var, ctx in occurrences.items():
        signatures[var] = tuple(sorted(ctx))

    def _arg_key(arg) -> Tuple:
        if isinstance(arg, Variable):
            return ("var", signatures.get(arg, ()))
        return ("const", arg)

    return frozenset(
        (atom.predicate.value, _arg_key(atom.arg1), _arg_key(atom.arg2))
        for atom in query.atoms
    )
