"""Conjunctive-query evaluation against a triple store (Definition 3).

The evaluator performs an index-nested-loop join with *dynamic* atom ordering:
at each step it picks the unevaluated atom with the smallest estimated
cardinality under the current bindings, so highly selective constants (the
keyword constants of computed queries) prune the search early.

Answers follow Definition 3: a mapping of the distinguished variables such
that some extension to the existential variables embeds the whole query
pattern into the data.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.terms import Term, Variable
from repro.store.statistics import StoreStatistics
from repro.store.triple_store import TripleStore

Binding = Dict[Variable, Term]


class Answer:
    """One answer: the distinguished variables and the terms they map to."""

    __slots__ = ("variables", "values")

    def __init__(self, variables: Tuple[Variable, ...], values: Tuple[Term, ...]):
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "values", values)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Answer is immutable")

    def __getitem__(self, variable: Variable) -> Term:
        try:
            return self.values[self.variables.index(variable)]
        except ValueError:
            raise KeyError(variable) from None

    def as_dict(self) -> Dict[Variable, Term]:
        return dict(zip(self.variables, self.values))

    def __eq__(self, other):
        return (
            isinstance(other, Answer)
            and other.variables == self.variables
            and other.values == self.values
        )

    def __hash__(self):
        return hash((self.variables, self.values))

    def __repr__(self):
        pairs = ", ".join(f"{v}={t}" for v, t in zip(self.variables, self.values))
        return f"Answer({pairs})"


class QueryEvaluator:
    """Evaluates conjunctive queries over a :class:`TripleStore`."""

    def __init__(self, store: TripleStore):
        self._store = store
        self._stats = StoreStatistics(store)

    def invalidate_statistics(self) -> None:
        """Drop cached selectivity stats after the store's contents change."""
        self._stats.invalidate()

    def evaluate(
        self,
        query: ConjunctiveQuery,
        limit: Optional[int] = None,
    ) -> List[Answer]:
        """All (or the first ``limit``) distinct answers to the query."""
        out: List[Answer] = []
        for answer in self.iter_answers(query):
            out.append(answer)
            if limit is not None and len(out) >= limit:
                break
        return out

    def iter_answers(self, query: ConjunctiveQuery) -> Iterator[Answer]:
        """Lazily yield distinct answers — supports the paper's 'process the
        top queries until ≥10 answers are found' loop without full evaluation.
        """
        distinguished = query.distinguished
        seen: Set[Tuple[Term, ...]] = set()
        for binding in self._solve(list(query.atoms), {}):
            values = tuple(binding[v] for v in distinguished)
            if values not in seen:
                seen.add(values)
                yield Answer(distinguished, values)

    def count(self, query: ConjunctiveQuery) -> int:
        """Number of distinct answers."""
        return sum(1 for _ in self.iter_answers(query))

    def has_answer(self, query: ConjunctiveQuery) -> bool:
        """True if the query is non-empty over the store."""
        return next(self.iter_answers(query), None) is not None

    # ------------------------------------------------------------------
    # Join machinery
    # ------------------------------------------------------------------

    def _solve(self, remaining: List[Atom], binding: Binding) -> Iterator[Binding]:
        if not remaining:
            yield binding
            return
        index = self._pick_atom(remaining, binding)
        atom = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        for extension in self._match_atom(atom, binding):
            yield from self._solve(rest, extension)

    def _pick_atom(self, remaining: Sequence[Atom], binding: Binding) -> int:
        """Greedy most-selective-next atom choice."""
        best_index = 0
        best_cost = float("inf")
        for i, atom in enumerate(remaining):
            s, o = self._resolve(atom, binding)
            cost = self._stats.estimate(s, atom.predicate, o)
            # Prefer atoms already joined to the current bindings: an atom
            # with no bound position creates a cross product.
            if s is None and o is None and binding:
                cost *= len(self._store) or 1
            if cost < best_cost:
                best_cost = cost
                best_index = i
        return best_index

    @staticmethod
    def _resolve(atom: Atom, binding: Binding) -> Tuple[Optional[Term], Optional[Term]]:
        """Current constants for the two argument positions (None = free)."""
        if isinstance(atom.arg1, Variable):
            s = binding.get(atom.arg1)
        else:
            s = atom.arg1
        if isinstance(atom.arg2, Variable):
            o = binding.get(atom.arg2)
        else:
            o = atom.arg2
        return s, o

    def _match_atom(self, atom: Atom, binding: Binding) -> Iterator[Binding]:
        s, o = self._resolve(atom, binding)
        for triple in self._store.match(s, atom.predicate, o):
            extension = binding
            copied = False
            ok = True
            for template, actual in ((atom.arg1, triple.subject), (atom.arg2, triple.object)):
                if isinstance(template, Variable):
                    bound = extension.get(template)
                    if bound is None:
                        if not copied:
                            extension = dict(extension)
                            copied = True
                        extension[template] = actual
                    elif bound != actual:
                        ok = False
                        break
            if ok:
                yield extension if copied else dict(extension)
