"""repro — keyword search on RDF data through top-k query computation.

A faithful, self-contained reproduction of *"Top-k Exploration of Query
Candidates for Efficient Keyword Search on Graph-Shaped (RDF) Data"*
(Tran, Wang, Rudolph, Cimiano — ICDE 2009).

Quickstart::

    from repro import KeywordSearchEngine, parse_ntriples, DataGraph

    graph = DataGraph(parse_ntriples(open("data.nt")))
    engine = KeywordSearchEngine(graph, cost_model="c3")
    result = engine.search("cimiano aifb 2006", k=10)
    for candidate in result:
        print(candidate.cost, candidate.to_sparql())
    answers = engine.execute(result.best())

Package map (mirrors the paper's architecture, Fig. 2):

* :mod:`repro.rdf` — the data graph of Definition 1
* :mod:`repro.keyword` — the keyword index of Section IV-A
* :mod:`repro.summary` — summary graph (Def 4) + augmentation (Def 5)
* :mod:`repro.scoring` — cost functions C1/C2/C3 (Section V)
* :mod:`repro.core` — exploration (Alg 1), top-k (Alg 2), query mapping
* :mod:`repro.query` — conjunctive queries, evaluation, SPARQL/SQL/NL
* :mod:`repro.store` — the triple store queries execute on
* :mod:`repro.baselines` — BANKS / bidirectional / BLINKS-style comparators
* :mod:`repro.datasets` — DBLP/LUBM/TAP-style generators + workloads
* :mod:`repro.eval` — MRR, index statistics, timing harness
* :mod:`repro.maintenance` — incremental index maintenance (epochs)
* :mod:`repro.service` — snapshot-isolated concurrent serving + HTTP
"""

from repro.rdf import (
    URI,
    Literal,
    BNode,
    Variable,
    Triple,
    Namespace,
    DataGraph,
    parse_ntriples,
    serialize_ntriples,
)
from repro.query import Atom, ConjunctiveQuery, to_sparql, parse_sparql, verbalize
from repro.core import KeywordSearchEngine, QueryCandidate, SearchResult
from repro.summary import SummaryGraph
from repro.keyword import KeywordIndex
from repro.scoring import make_cost_model

__version__ = "1.0.0"

__all__ = [
    "URI",
    "Literal",
    "BNode",
    "Variable",
    "Triple",
    "Namespace",
    "DataGraph",
    "parse_ntriples",
    "serialize_ntriples",
    "Atom",
    "ConjunctiveQuery",
    "to_sparql",
    "parse_sparql",
    "verbalize",
    "KeywordSearchEngine",
    "QueryCandidate",
    "SearchResult",
    "SummaryGraph",
    "KeywordIndex",
    "make_cost_model",
    "__version__",
]
