"""The paper's running example: the RDF graph of Fig. 1a.

Publications, researchers, projects, and institutes — the 20-triple graph
the paper uses throughout Sections II-III, including the class hierarchy
(Institute ⊑ Agent, Researcher ⊑ Person ⊑ Agent ⊑ Thing).  The keyword
query ``"2006 cimiano aifb"`` over this graph should produce the
conjunctive query of Fig. 1c.
"""

from __future__ import annotations

from repro.rdf.graph import DataGraph
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

#: Namespace of the running example's entities and vocabulary.
EX = Namespace("http://example.org/aifb/")


def running_example_graph() -> DataGraph:
    """Build the Fig. 1a data graph."""
    t = RDF.type
    sub = RDFS.subClassOf
    triples = [
        Triple(EX.pro2URI, t, EX.Project),
        Triple(EX.pro1URI, t, EX.Project),
        Triple(EX.pro1URI, EX.name, Literal("X-Media")),
        Triple(EX.pub1URI, t, EX.Publication),
        Triple(EX.pub1URI, EX.author, EX.re1URI),
        Triple(EX.pub1URI, EX.author, EX.re2URI),
        Triple(EX.pub1URI, EX.year, Literal("2006")),
        Triple(EX.pub2URI, t, EX.Publication),
        Triple(EX.re1URI, t, EX.Researcher),
        Triple(EX.re1URI, EX.name, Literal("Thanh Tran")),
        Triple(EX.re1URI, EX.worksAt, EX.inst1URI),
        Triple(EX.re2URI, t, EX.Researcher),
        Triple(EX.re2URI, EX.name, Literal("P. Cimiano")),
        Triple(EX.re2URI, EX.worksAt, EX.inst1URI),
        Triple(EX.inst1URI, t, EX.Institute),
        Triple(EX.inst1URI, EX.name, Literal("AIFB")),
        Triple(EX.inst2URI, t, EX.Institute),
        Triple(EX.Institute, sub, EX.Agent),
        Triple(EX.Researcher, sub, EX.Person),
        Triple(EX.Person, sub, EX.Agent),
        # Connections the paper's intro discusses for the X-Media query.
        Triple(EX.pub1URI, EX.hasProject, EX.pro1URI),
    ]
    return DataGraph(triples)
