"""A DBLP-shaped synthetic bibliographic dataset.

The paper's DBLP dump (26M triples) is neither redistributable nor
laptop-sized; this generator reproduces the *structural regime* the paper's
algorithms are sensitive to (DESIGN.md §4):

* very few classes and relations → tiny summary graph;
* very many V-vertices (titles, names, years) → large keyword index;
* publications connected to people and venues → multi-hop interpretations.

Schema::

    Article ⊑ Publication,  InProceedings ⊑ Publication
    author(Publication → Person)           cites(Publication → Publication)
    publishedIn(Article → Journal)         presentedAt(InProceedings → Conference)
    title/year on Publication, name on Person/Journal/Conference

Anchors (fixed at every scale): the authors and venues listed in
:mod:`repro.datasets.vocab`, plus one "X-Media" project linked to anchor
publications — the workloads rely on them.

Ambiguity sources (the regime Fig. 4 differentiates the cost functions on):

* a sparse ``editor`` relation with the *same shape* as ``author`` — under
  pure path length (C1) the two interpretations tie, while popularity (C2)
  prefers the far more frequent ``author``;
* decoy entities whose labels *contain* an anchor term but are longer
  ("Ana Cimiano Rivera", "Annual ICDE Workshops") — structurally identical
  interpretations that only the matching score ``sm(n)`` (C3) can demote.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.datasets import vocab
from repro.rdf.graph import DataGraph
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

#: Vocabulary namespace of the DBLP-shaped dataset.
DBLP = Namespace("http://example.org/dblp/")


@dataclass(frozen=True)
class DblpConfig:
    """Scale knobs; defaults produce ≈25k triples in well under a second."""

    publications: int = 3000
    seed: int = 2009
    authors_per_publication: int = 3  # upper bound, ≥1
    persons_ratio: float = 0.55  # persons ≈ ratio × publications
    conferences: int = 12
    journals: int = 6
    year_range: range = range(1995, 2009)
    citation_rate: float = 0.8  # expected cites per publication
    editor_rate: float = 0.02  # expected fraction of publications with editor
    decoys: bool = True  # plant the ambiguity decoys (see module docstring)


#: Decoy person names: same anchor surname, longer label, sorts before the
#: anchor — a structurally identical but worse-matching interpretation.
DECOY_PERSON_NAMES = (
    "Ana Cimiano Rivera",
    "Ana Tran Diaz",
    "Ana Rudolph Mora",
    "Ana Wang Ortiz",
    "Ana Turing Reyes",
    "Ana Codd Silva",
)

#: Decoy venues: contain the anchor acronym but are three-term labels.
DECOY_CONFERENCE_NAMES = (
    "Annual ICDE Workshops",
    "Annual SIGMOD Workshops",
    "Annual VLDB Workshops",
)


def generate_dblp(config: DblpConfig = DblpConfig()) -> DataGraph:
    """Generate the dataset deterministically for a given config."""
    rng = random.Random(config.seed)
    triples: List[Triple] = []
    t = RDF.type

    # Class hierarchy.
    triples.append(Triple(DBLP.Article, RDFS.subClassOf, DBLP.Publication))
    triples.append(Triple(DBLP.InProceedings, RDFS.subClassOf, DBLP.Publication))

    # Venues: anchors first, then pool names, then numbered fillers.
    conference_names = list(vocab.CONFERENCE_ANCHORS) + list(vocab.CONFERENCE_POOL)
    conferences = []
    for i in range(config.conferences):
        uri = DBLP[f"conf{i}"]
        name = (
            conference_names[i]
            if i < len(conference_names)
            else f"Conference {i}"
        )
        conferences.append(uri)
        triples.append(Triple(uri, t, DBLP.Conference))
        triples.append(Triple(uri, DBLP.name, Literal(name)))

    decoy_conferences = []
    if config.decoys:
        for i, name in enumerate(DECOY_CONFERENCE_NAMES):
            uri = DBLP[f"decoyconf{i}"]
            decoy_conferences.append(uri)
            triples.append(Triple(uri, t, DBLP.Conference))
            triples.append(Triple(uri, DBLP.name, Literal(name)))

    journal_names = list(vocab.JOURNAL_ANCHORS) + list(vocab.JOURNAL_POOL)
    journals = []
    for i in range(config.journals):
        uri = DBLP[f"journal{i}"]
        name = journal_names[i] if i < len(journal_names) else f"Journal {i}"
        journals.append(uri)
        triples.append(Triple(uri, t, DBLP.Journal))
        triples.append(Triple(uri, DBLP.name, Literal(name)))

    # Persons: anchors first.
    used_names: set = set()
    person_count = max(
        len(vocab.AUTHOR_ANCHORS), int(config.publications * config.persons_ratio)
    )
    persons = []
    for i in range(person_count):
        uri = DBLP[f"person{i}"]
        if i < len(vocab.AUTHOR_ANCHORS):
            name = vocab.AUTHOR_ANCHORS[i]
            used_names.add(name)
        else:
            name = vocab.person_name(rng, used_names)
        persons.append(uri)
        triples.append(Triple(uri, t, DBLP.Person))
        triples.append(Triple(uri, DBLP.name, Literal(name)))

    decoy_persons = []
    if config.decoys:
        for i, name in enumerate(DECOY_PERSON_NAMES):
            uri = DBLP[f"decoyperson{i}"]
            decoy_persons.append(uri)
            triples.append(Triple(uri, t, DBLP.Person))
            triples.append(Triple(uri, DBLP.name, Literal(name)))

    # One project anchor, as in the paper's running example.
    project = DBLP.project0
    triples.append(Triple(project, t, DBLP.Project))
    triples.append(Triple(project, DBLP.name, Literal("X-Media")))

    # Titles are drawn from a shared pool (≈ publications/5 distinct
    # strings): like author names in real DBLP, the same literal then
    # belongs to several publications, so computed queries that pin a title
    # constant still retrieve multiple answers.
    title_pool = [
        vocab.publication_title(rng)
        for _ in range(max(50, config.publications // 5))
    ]

    # Publications.  The very first publication gets an `editor` triple
    # *before* any `author` triple so the rarer relation registers first in
    # the summary graph's adjacency — under C1 (pure path length) the two
    # same-shaped interpretations tie and discovery order decides, which is
    # exactly the ambiguity C2's popularity cost resolves.
    publications = []
    years = list(config.year_range)
    all_persons = persons + decoy_persons
    for i in range(config.publications):
        uri = DBLP[f"pub{i}"]
        publications.append(uri)
        is_article = rng.random() < 0.4
        cls = DBLP.Article if is_article else DBLP.InProceedings
        triples.append(Triple(uri, t, cls))
        triples.append(Triple(uri, DBLP.title, Literal(rng.choice(title_pool))))
        triples.append(Triple(uri, DBLP.year, Literal(str(rng.choice(years)))))
        if config.decoys and (i == 0 or rng.random() < config.editor_rate):
            triples.append(Triple(uri, DBLP.editor, rng.choice(all_persons)))
        author_count = rng.randrange(1, config.authors_per_publication + 1)
        for author in rng.sample(persons, min(author_count, len(persons))):
            triples.append(Triple(uri, DBLP.author, author))
        if is_article:
            triples.append(Triple(uri, DBLP.publishedIn, rng.choice(journals)))
        else:
            triples.append(Triple(uri, DBLP.presentedAt, rng.choice(conferences)))

    # Give every decoy entity the same local structure as its anchor twin
    # (authored publications / hosted presentations), so decoy queries are
    # satisfiable too — the interpretations differ only in which literal
    # the keyword is mapped to.
    if config.decoys:
        for i, person in enumerate(decoy_persons):
            for j in range(3):
                pub = publications[(i * 11 + j * 17 + 5) % len(publications)]
                triples.append(Triple(pub, DBLP.author, person))
        for i, venue in enumerate(decoy_conferences):
            for j in range(4):
                pub = publications[(i * 13 + j * 19 + 3) % len(publications)]
                triples.append(Triple(pub, DBLP.presentedAt, venue))

    # Dedicated anchor publications with deterministic years, venues, and
    # co-authorship, so the workload queries ("cimiano 2006", "tran icde",
    # "cimiano tran", "x-media cimiano publications") all have answers at
    # every scale.
    # Every anchor gets one publication per (year, venue) slot below, so
    # "<anchor> 2006", "<anchor> icde" etc. are all satisfiable.
    anchor_slots = (("2006", 0), ("2000", 1), ("1998", 2))  # (year, conf idx)
    for i, _anchor in enumerate(vocab.AUTHOR_ANCHORS):
        author = persons[i]
        coauthor = persons[(i + 1) % len(vocab.AUTHOR_ANCHORS)]
        for j, (year, conf_index) in enumerate(anchor_slots):
            pub = DBLP[f"anchorpub{i}_{j}"]
            publications.append(pub)
            triples.append(Triple(pub, t, DBLP.InProceedings))
            triples.append(Triple(pub, DBLP.title, Literal(rng.choice(title_pool))))
            triples.append(Triple(pub, DBLP.year, Literal(year)))
            triples.append(Triple(pub, DBLP.author, author))
            triples.append(Triple(pub, DBLP.presentedAt, conferences[conf_index]))
            if j == 0:
                triples.append(Triple(pub, DBLP.author, coauthor))
                triples.append(Triple(pub, DBLP.hasProject, project))

    # Citations.
    if len(publications) >= 2:
        expected = int(config.citation_rate * len(publications))
        for _ in range(expected):
            citing = rng.choice(publications)
            cited = rng.choice(publications)
            if citing != cited:
                triples.append(Triple(citing, DBLP.cites, cited))

    return DataGraph(triples)
