"""Dataset generators and evaluation workloads.

The paper evaluates on DBLP (26M triples), TAP (220k triples), and
LUBM(50,0).  None of those dumps is available offline, so this package
generates structurally equivalent data at configurable scale — see
DESIGN.md §4 for the substitution argument — plus the keyword-query
workloads with ground-truth intent used by the Fig. 4/5/6 benchmarks.
"""

from repro.datasets.example import running_example_graph
from repro.datasets.dblp import generate_dblp, DblpConfig, DBLP
from repro.datasets.lubm import generate_lubm, iter_lubm_triples, LubmConfig, UB
from repro.datasets.tap import generate_tap, TapConfig, TAP
from repro.datasets.workloads import (
    WorkloadQuery,
    IntentSpec,
    Contains,
    OneOf,
    dblp_effectiveness_workload,
    tap_effectiveness_workload,
    dblp_performance_queries,
)

__all__ = [
    "running_example_graph",
    "generate_dblp",
    "DblpConfig",
    "DBLP",
    "generate_lubm",
    "iter_lubm_triples",
    "LubmConfig",
    "UB",
    "generate_tap",
    "TapConfig",
    "TAP",
    "WorkloadQuery",
    "IntentSpec",
    "Contains",
    "OneOf",
    "dblp_effectiveness_workload",
    "tap_effectiveness_workload",
    "dblp_performance_queries",
]
