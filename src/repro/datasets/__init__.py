"""Dataset generators and evaluation workloads.

The paper evaluates on DBLP (26M triples), TAP (220k triples), and
LUBM(50,0).  None of those dumps is available offline, so this package
generates structurally equivalent data at configurable scale — see
DESIGN.md §4 for the substitution argument — plus the keyword-query
workloads with ground-truth intent used by the Fig. 4/5/6 benchmarks.
"""

from repro.datasets.example import running_example_graph
from repro.datasets.dblp import generate_dblp, DblpConfig, DBLP
from repro.datasets.lubm import generate_lubm, iter_lubm_triples, LubmConfig, UB
from repro.datasets.tap import generate_tap, TapConfig, TAP
from repro.datasets.workloads import (
    WorkloadQuery,
    IntentSpec,
    Contains,
    OneOf,
    dblp_effectiveness_workload,
    tap_effectiveness_workload,
    example_effectiveness_workload,
    lubm_effectiveness_workload,
    effectiveness_workload,
    dblp_performance_queries,
)

#: Datasets the CLI and the quality harness can generate by name.
DATASET_NAMES = ("example", "dblp", "lubm", "tap")


def graph_for(dataset: str, scale: int = 1000):
    """Generate the named dataset at ``scale`` — the single source of
    truth for how a dataset name maps to generator configuration, shared
    by ``repro build``/``search`` and the quality harness so that a
    bundle built via the CLI and a fresh eval build describe the same
    graph."""
    if dataset == "example":
        return running_example_graph()
    if dataset == "dblp":
        return generate_dblp(DblpConfig(publications=scale))
    if dataset == "lubm":
        return generate_lubm(LubmConfig(universities=max(1, scale // 1000)))
    if dataset == "tap":
        return generate_tap(TapConfig())
    raise ValueError(f"unknown dataset {dataset!r} (have: {DATASET_NAMES})")


__all__ = [
    "DATASET_NAMES",
    "graph_for",
    "running_example_graph",
    "generate_dblp",
    "DblpConfig",
    "DBLP",
    "generate_lubm",
    "iter_lubm_triples",
    "LubmConfig",
    "UB",
    "generate_tap",
    "TapConfig",
    "TAP",
    "WorkloadQuery",
    "IntentSpec",
    "Contains",
    "OneOf",
    "dblp_effectiveness_workload",
    "tap_effectiveness_workload",
    "example_effectiveness_workload",
    "lubm_effectiveness_workload",
    "effectiveness_workload",
    "dblp_performance_queries",
]
