"""A TAP-style broad, shallow multi-domain ontology.

TAP (Stanford's 220k-triple knowledge base) matters to the paper's Fig. 6b
through one property: **many classes across many domains**, which makes the
graph index (summary graph) large relative to the keyword index.  This
generator reproduces that: ~10 domains, each with a small class hierarchy,
typed relations inside and across domains, and only a few instances per
class (shallow instance data).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rdf.graph import DataGraph
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

#: Vocabulary namespace of the TAP-style dataset.
TAP = Namespace("http://example.org/tap/")


@dataclass(frozen=True)
class TapConfig:
    instances_per_class: int = 8
    seed: int = 220


#: domain -> list of (class, parent) pairs; parents declared first.
_DOMAINS: Dict[str, Sequence[Tuple[str, str]]] = {
    "sports": (
        ("Sport", "Activity"),
        ("TeamSport", "Sport"),
        ("Basketball", "TeamSport"),
        ("Football", "TeamSport"),
        ("Tennis", "Sport"),
        ("Team", "Organization"),
        ("Athlete", "Person"),
        ("Stadium", "Place"),
    ),
    "music": (
        ("Musician", "Person"),
        ("Band", "Organization"),
        ("Album", "Artwork"),
        ("Song", "Artwork"),
        ("Genre", "Category"),
    ),
    "movies": (
        ("Movie", "Artwork"),
        ("Actor", "Person"),
        ("Director", "Person"),
        ("Studio", "Organization"),
    ),
    "geography": (
        ("Country", "Place"),
        ("City", "Place"),
        ("River", "NaturalFeature"),
        ("Mountain", "NaturalFeature"),
        ("NaturalFeature", "Place"),
    ),
    "books": (
        ("Book", "Artwork"),
        ("Writer", "Person"),
        ("Publisher", "Organization"),
    ),
    "companies": (
        ("Company", "Organization"),
        ("TechCompany", "Company"),
        ("Product", "Artifact"),
    ),
    "science": (
        ("Scientist", "Person"),
        ("Theory", "Abstraction"),
        ("Instrument", "Artifact"),
    ),
    "food": (
        ("Dish", "Artifact"),
        ("Cuisine", "Category"),
        ("Restaurant", "Organization"),
    ),
}

#: Top-level classes every domain hangs off.
_ROOTS: Sequence[Tuple[str, str]] = (
    ("Person", "Entity"),
    ("Organization", "Entity"),
    ("Place", "Entity"),
    ("Artwork", "Entity"),
    ("Artifact", "Entity"),
    ("Activity", "Entity"),
    ("Category", "Entity"),
    ("Abstraction", "Entity"),
)

#: (label, source class, target class) relations, instance-level.
_RELATIONS: Sequence[Tuple[str, str, str]] = (
    ("playsFor", "Athlete", "Team"),
    ("plays", "Athlete", "Sport"),
    ("homeStadium", "Team", "Stadium"),
    ("locatedIn", "Stadium", "City"),
    ("locatedIn", "City", "Country"),
    ("locatedIn", "Restaurant", "City"),
    ("flowsThrough", "River", "Country"),
    ("memberOf", "Musician", "Band"),
    ("recorded", "Band", "Album"),
    ("contains", "Album", "Song"),
    ("hasGenre", "Album", "Genre"),
    ("actsIn", "Actor", "Movie"),
    ("directedBy", "Movie", "Director"),
    ("producedBy", "Movie", "Studio"),
    ("wrote", "Writer", "Book"),
    ("publishedBy", "Book", "Publisher"),
    ("makes", "Company", "Product"),
    ("headquarteredIn", "Company", "City"),
    ("proposed", "Scientist", "Theory"),
    ("serves", "Restaurant", "Dish"),
    ("partOf", "Dish", "Cuisine"),
    ("bornIn", "Athlete", "City"),
    ("bornIn", "Musician", "City"),
    ("bornIn", "Scientist", "City"),
)


def generate_tap(config: TapConfig = TapConfig()) -> DataGraph:
    """Generate the TAP-style graph deterministically."""
    rng = random.Random(config.seed)
    triples: List[Triple] = []
    t = RDF.type
    sub = RDFS.subClassOf

    for child, parent in _ROOTS:
        triples.append(Triple(TAP[child], sub, TAP[parent]))
    for pairs in _DOMAINS.values():
        for child, parent in pairs:
            triples.append(Triple(TAP[child], sub, TAP[parent]))

    # Instances: a few per leaf-ish class, with readable names.
    instances: Dict[str, List[URI]] = {}
    instantiable = sorted({child for pairs in _DOMAINS.values() for child, _ in pairs})
    for cls in instantiable:
        entities = []
        for i in range(config.instances_per_class):
            uri = TAP[f"{cls.lower()}{i}"]
            entities.append(uri)
            triples.append(Triple(uri, t, TAP[cls]))
            triples.append(Triple(uri, TAP.name, Literal(f"{cls} {i}")))
        instances[cls] = entities

    # A few memorable anchor instances for the workloads.
    anchors = (
        ("Athlete", "Michael Jordan"),
        ("Team", "Chicago Bulls"),
        ("City", "Karlsruhe"),
        ("Country", "Germany"),
        ("Musician", "Johann Bach"),
        ("Movie", "Metropolis"),
        ("Writer", "Franz Kafka"),
        ("Company", "Example Corp"),
    )
    for cls, name in anchors:
        uri = TAP[name.replace(" ", "_")]
        triples.append(Triple(uri, t, TAP[cls]))
        triples.append(Triple(uri, TAP.name, Literal(name)))
        instances[cls].append(uri)

    # Relations between instances.
    for label, source_cls, target_cls in _RELATIONS:
        sources = instances.get(source_cls, ())
        targets = instances.get(target_cls, ())
        if not sources or not targets:
            continue
        for source in sources:
            for target in rng.sample(targets, min(len(targets), rng.randint(1, 2))):
                triples.append(Triple(source, TAP[label], target))

    # Make the anchors' relations deterministic for the workloads.
    jordan = TAP["Michael_Jordan"]
    bulls = TAP["Chicago_Bulls"]
    karlsruhe = TAP["Karlsruhe"]
    germany = TAP["Germany"]
    triples.append(Triple(jordan, TAP.playsFor, bulls))
    triples.append(Triple(jordan, TAP.plays, instances["Basketball"][0]))
    triples.append(Triple(karlsruhe, TAP.locatedIn, germany))
    triples.append(Triple(TAP["Franz_Kafka"], TAP.wrote, instances["Book"][0]))

    return DataGraph(triples)
