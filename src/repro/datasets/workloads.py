"""Evaluation workloads: keyword queries with ground-truth intent.

The paper's effectiveness study (Fig. 4) used 12 participants who provided
30 DBLP and 9 TAP keyword queries *plus a natural-language description of
the information need*; a generated query is "correct" if it matches that
description.  Offline we operationalize the description as an
:class:`IntentSpec` — a set of atom templates a candidate query must embed
(injectively, modulo variable renaming), with ``type`` and ``subclass``
atoms treated as free schema context.  Reciprocal rank is then the rank of
the first candidate matching the spec.

The performance set Q1–Q10 (Fig. 5) only needs keyword lists of growing
length; no intent is attached.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.datasets.dblp import DBLP
from repro.datasets.example import EX
from repro.datasets.lubm import UB
from repro.datasets.tap import TAP
from repro.query.conjunctive import ConjunctiveQuery
from repro.rdf.namespace import SUBCLASS_PREDICATES, TYPE_PREDICATES
from repro.rdf.terms import Literal, Term, URI, Variable


class Contains:
    """Object spec: a literal whose lexical form contains all given words."""

    __slots__ = ("words",)

    def __init__(self, *words: str):
        self.words = tuple(w.lower() for w in words)

    def matches(self, term) -> bool:
        if not isinstance(term, Literal):
            return False
        lexical = term.lexical.lower()
        return all(w in lexical for w in self.words)

    def __repr__(self):
        return f"Contains({', '.join(self.words)})"


class OneOf:
    """Constant spec: any of the given terms (e.g. alternative classes)."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Term):
        self.terms = tuple(terms)

    def matches(self, term) -> bool:
        return term in self.terms

    def __repr__(self):
        return f"OneOf({', '.join(str(t) for t in self.terms)})"


#: A template argument: a "?tag" variable, a constant, or a matcher object.
TemplateArg = Union[str, Term, Contains, OneOf]

#: One atom template: (predicate, subject spec, object spec).
AtomTemplate = Tuple[URI, TemplateArg, TemplateArg]


class IntentSpec:
    """The ground-truth shape a correct interpretation must have.

    ``templates`` must all be embedded into the candidate's atoms with a
    consistent, injective variable assignment.  With ``exact`` (default),
    every candidate atom that is *not* a type/subclass atom must be matched
    by some template — extra constraining atoms mean a different intent.
    """

    def __init__(self, templates: Sequence[AtomTemplate], exact: bool = True):
        if not templates:
            raise ValueError("an intent needs at least one template")
        self.templates = list(templates)
        self.exact = exact

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def matches(self, query: ConjunctiveQuery) -> bool:
        atoms = list(dict.fromkeys(query.atoms))
        content_atoms = [
            a
            for a in atoms
            if a.predicate not in TYPE_PREDICATES
            and a.predicate not in SUBCLASS_PREDICATES
        ]
        content_templates = [
            t
            for t in self.templates
            if t[0] not in TYPE_PREDICATES and t[0] not in SUBCLASS_PREDICATES
        ]
        if self.exact and len(content_atoms) != len(content_templates):
            return False
        return self._assign(list(self.templates), atoms, {})

    def _assign(self, templates, atoms, mapping) -> bool:
        if not templates:
            return True
        template = templates[0]
        rest = templates[1:]
        for i, atom in enumerate(atoms):
            extension = self._unify(template, atom, mapping)
            if extension is None:
                continue
            if self._assign(rest, atoms[:i] + atoms[i + 1 :], extension):
                return True
        return False

    @staticmethod
    def _unify(template: AtomTemplate, atom, mapping) -> Optional[dict]:
        predicate, subj_spec, obj_spec = template
        if atom.predicate != predicate:
            return None
        extension = dict(mapping)
        used = set(extension.values())
        for spec, actual in ((subj_spec, atom.arg1), (obj_spec, atom.arg2)):
            if isinstance(spec, str) and spec.startswith("?"):
                if not isinstance(actual, Variable):
                    return None
                bound = extension.get(spec)
                if bound is None:
                    if actual in used:
                        return None
                    extension[spec] = actual
                    used.add(actual)
                elif bound != actual:
                    return None
            elif isinstance(spec, (Contains, OneOf)):
                if isinstance(actual, Variable) or not spec.matches(actual):
                    return None
            else:
                if actual != spec:
                    return None
        return extension

    def __repr__(self):
        return f"IntentSpec({len(self.templates)} templates, exact={self.exact})"


class WorkloadQuery:
    """One workload entry: keywords, the NL description, and the intent."""

    def __init__(
        self,
        qid: str,
        keywords: Sequence[str],
        description: str,
        intent: Optional[IntentSpec] = None,
    ):
        self.qid = qid
        self.keywords = list(keywords)
        self.description = description
        self.intent = intent

    def __repr__(self):
        return f"WorkloadQuery({self.qid}: {' '.join(self.keywords)!r})"


# ----------------------------------------------------------------------
# DBLP effectiveness workload (Fig. 4): 30 queries
# ----------------------------------------------------------------------

_PUBLICATION_CLASSES = OneOf(DBLP.Article, DBLP.InProceedings, DBLP.Publication)
_T = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def _topic_year(qid: str, topic: str, year: str) -> WorkloadQuery:
    return WorkloadQuery(
        qid,
        [topic, year],
        f"All papers about {topic} published in {year}",
        IntentSpec(
            [
                (_T, "?x", _PUBLICATION_CLASSES),
                (DBLP.title, "?x", Contains(topic)),
                (DBLP.year, "?x", Literal(year)),
            ]
        ),
    )


def _author_pubs(qid: str, keyword: str, full_name: str) -> WorkloadQuery:
    # The intent pins the anchor's *exact* name: interpretations using the
    # decoy person ("Ana ... Rivera") or the `editor` relation are wrong.
    return WorkloadQuery(
        qid,
        [keyword, "publications"],
        f"All publications authored by {full_name}",
        IntentSpec(
            [
                (_T, "?x", _PUBLICATION_CLASSES),
                (DBLP.author, "?x", "?y"),
                (DBLP.name, "?y", Literal(full_name)),
            ]
        ),
    )


def _venue_topic(qid: str, venue: str, topic: str, relation: URI) -> WorkloadQuery:
    return WorkloadQuery(
        qid,
        [venue.lower(), topic],
        f"Papers about {topic} at {venue}",
        IntentSpec(
            [
                (relation, "?x", "?v"),
                (DBLP.name, "?v", Literal(venue)),
                (DBLP.title, "?x", Contains(topic)),
            ]
        ),
    )


def _venue_year(qid: str, venue: str, year: str, relation: URI) -> WorkloadQuery:
    return WorkloadQuery(
        qid,
        [venue.lower(), year],
        f"Papers at {venue} in {year}",
        IntentSpec(
            [
                (relation, "?x", "?v"),
                (DBLP.name, "?v", Literal(venue)),
                (DBLP.year, "?x", Literal(year)),
            ]
        ),
    )


def _author_year(qid: str, keyword: str, full_name: str, year: str) -> WorkloadQuery:
    return WorkloadQuery(
        qid,
        [keyword, year],
        f"Publications by {full_name} in {year}",
        IntentSpec(
            [
                (DBLP.author, "?x", "?y"),
                (DBLP.name, "?y", Literal(full_name)),
                (DBLP.year, "?x", Literal(year)),
            ]
        ),
    )


def _author_venue(qid: str, keyword: str, full_name: str, venue: str) -> WorkloadQuery:
    return WorkloadQuery(
        qid,
        [keyword, venue.lower()],
        f"Publications by {full_name} presented at {venue}",
        IntentSpec(
            [
                (DBLP.author, "?x", "?y"),
                (DBLP.name, "?y", Literal(full_name)),
                (DBLP.presentedAt, "?x", "?v"),
                (DBLP.name, "?v", Literal(venue)),
            ]
        ),
    )


def dblp_effectiveness_workload() -> List[WorkloadQuery]:
    """The 30-query DBLP workload with ground-truth intents."""
    queries: List[WorkloadQuery] = []

    # D1-D6: topic + year ("algorithm 1999" — the paper's example).
    topic_years = [
        ("algorithm", "1999"), ("database", "2003"), ("graph", "2006"),
        ("query", "2001"), ("mining", "2002"), ("stream", "2005"),
    ]
    for i, (topic, year) in enumerate(topic_years, start=1):
        queries.append(_topic_year(f"D{i}", topic, year))

    # D7-D10: venue + topic.
    queries.append(_venue_topic("D7", "ICDE", "database", DBLP.presentedAt))
    queries.append(_venue_topic("D8", "SIGMOD", "graph", DBLP.presentedAt))
    queries.append(_venue_topic("D9", "VLDB", "query", DBLP.presentedAt))
    queries.append(_venue_topic("D10", "TKDE", "ranking", DBLP.publishedIn))

    # D11-D13: venue + year.
    queries.append(_venue_year("D11", "ICDE", "2000", DBLP.presentedAt))
    queries.append(_venue_year("D12", "SIGMOD", "2002", DBLP.presentedAt))
    queries.append(_venue_year("D13", "VLDB", "2005", DBLP.presentedAt))

    # D14-D19: author + "publications".
    authors = [
        ("cimiano", "Philipp Cimiano"), ("tran", "Thanh Tran"),
        ("rudolph", "Sebastian Rudolph"), ("wang", "Haofen Wang"),
        ("turing", "Alan Turing"), ("codd", "Edgar Codd"),
    ]
    for i, (kw, name) in enumerate(authors, start=14):
        queries.append(_author_pubs(f"D{i}", kw, name))

    # D20-D22: author + year.
    queries.append(_author_year("D20", "cimiano", "Philipp Cimiano", "2006"))
    queries.append(_author_year("D21", "turing", "Alan Turing", "2000"))
    queries.append(_author_year("D22", "codd", "Edgar Codd", "1998"))

    # D23-D24: author + venue.
    queries.append(_author_venue("D23", "tran", "Thanh Tran", "ICDE"))
    queries.append(_author_venue("D24", "rudolph", "Sebastian Rudolph", "SIGMOD"))

    # D25: relation keyword ("cites").
    queries.append(
        WorkloadQuery(
            "D25",
            ["cites", "database"],
            "Publications citing papers about databases",
            IntentSpec(
                [
                    (DBLP.cites, "?x", "?y"),
                    (DBLP.title, "?y", Contains("database")),
                ]
            ),
        )
    )

    # Q26: attribute keyword ("year" as an edge).
    queries.append(
        WorkloadQuery(
            "D26",
            ["year", "algorithm"],
            "The year of publications about algorithms",
            IntentSpec(
                [
                    (DBLP.year, "?x", "?v"),
                    (DBLP.title, "?x", Contains("algorithm")),
                ]
            ),
        )
    )

    # Q27-Q28: two authors (co-authorship intent).
    queries.append(
        WorkloadQuery(
            "D27",
            ["cimiano", "tran"],
            "Publications co-authored by Philipp Cimiano and Thanh Tran",
            IntentSpec(
                [
                    (DBLP.author, "?x", "?y"),
                    (DBLP.name, "?y", Literal("Philipp Cimiano")),
                    (DBLP.author, "?x", "?z"),
                    (DBLP.name, "?z", Literal("Thanh Tran")),
                ]
            ),
        )
    )
    queries.append(
        WorkloadQuery(
            "D28",
            ["rudolph", "wang"],
            "Publications co-authored by Sebastian Rudolph and Haofen Wang",
            IntentSpec(
                [
                    (DBLP.author, "?x", "?y"),
                    (DBLP.name, "?y", Literal("Sebastian Rudolph")),
                    (DBLP.author, "?x", "?z"),
                    (DBLP.name, "?z", Literal("Haofen Wang")),
                ]
            ),
        )
    )

    # Q29: the project query.
    queries.append(
        WorkloadQuery(
            "D29",
            ["x-media", "project"],
            "The project named X-Media",
            IntentSpec(
                [
                    (_T, "?p", OneOf(DBLP.Project)),
                    (DBLP.name, "?p", Contains("media")),
                ]
            ),
        )
    )

    # Q30: the paper's running example, three keywords.
    queries.append(
        WorkloadQuery(
            "D30",
            ["x-media", "cimiano", "publications"],
            "Publications of the X-Media project authored by Cimiano",
            IntentSpec(
                [
                    (_T, "?x", _PUBLICATION_CLASSES),
                    (DBLP.hasProject, "?x", "?p"),
                    (DBLP.name, "?p", Contains("media")),
                    (DBLP.author, "?x", "?y"),
                    (DBLP.name, "?y", Contains("Cimiano")),
                ]
            ),
        )
    )
    return queries


# ----------------------------------------------------------------------
# TAP effectiveness workload: 9 queries
# ----------------------------------------------------------------------


def tap_effectiveness_workload() -> List[WorkloadQuery]:
    """The 9-query TAP workload the paper reports alongside Fig. 4."""
    return [
        WorkloadQuery(
            "T1",
            ["jordan", "team"],
            "The team Michael Jordan plays for",
            IntentSpec(
                [
                    (TAP.playsFor, "?x", "?y"),
                    (TAP.name, "?x", Contains("Jordan")),
                    (_T, "?y", OneOf(TAP.Team)),
                ]
            ),
        ),
        WorkloadQuery(
            "T2",
            ["kafka", "book"],
            "Books written by Kafka",
            IntentSpec(
                [
                    (TAP.wrote, "?x", "?y"),
                    (TAP.name, "?x", Contains("Kafka")),
                    (_T, "?y", OneOf(TAP.Book)),
                ]
            ),
        ),
        WorkloadQuery(
            "T3",
            ["karlsruhe", "country"],
            "The country Karlsruhe is located in",
            IntentSpec(
                [
                    (TAP.locatedIn, "?x", "?y"),
                    (TAP.name, "?x", Contains("Karlsruhe")),
                    (_T, "?y", OneOf(TAP.Country)),
                ]
            ),
        ),
        WorkloadQuery(
            "T4",
            ["athlete", "basketball"],
            "Athletes playing basketball",
            IntentSpec(
                [
                    (_T, "?x", OneOf(TAP.Athlete)),
                    (TAP.plays, "?x", "?y"),
                    (_T, "?y", OneOf(TAP.Basketball)),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "T5",
            ["bach", "band"],
            "Bands Bach is a member of",
            IntentSpec(
                [
                    (TAP.memberOf, "?x", "?y"),
                    (TAP.name, "?x", Contains("Bach")),
                    (_T, "?y", OneOf(TAP.Band)),
                ]
            ),
        ),
        WorkloadQuery(
            "T6",
            ["movie", "director"],
            "Movies and their directors",
            IntentSpec(
                [
                    (_T, "?x", OneOf(TAP.Movie)),
                    (TAP.directedBy, "?x", "?y"),
                    (_T, "?y", OneOf(TAP.Director)),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "T7",
            ["river", "germany"],
            "Rivers flowing through Germany",
            IntentSpec(
                [
                    (_T, "?x", OneOf(TAP.River)),
                    (TAP.flowsThrough, "?x", "?y"),
                    (TAP.name, "?y", Contains("Germany")),
                ]
            ),
        ),
        WorkloadQuery(
            "T8",
            ["restaurant", "dish"],
            "Restaurants and the dishes they serve",
            IntentSpec(
                [
                    (_T, "?x", OneOf(TAP.Restaurant)),
                    (TAP.serves, "?x", "?y"),
                    (_T, "?y", OneOf(TAP.Dish)),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "T9",
            ["company", "city"],
            "Companies and their headquarters cities",
            IntentSpec(
                [
                    (_T, "?x", OneOf(TAP.Company, TAP.TechCompany)),
                    (TAP.headquarteredIn, "?x", "?y"),
                    (_T, "?y", OneOf(TAP.City)),
                ],
                exact=False,
            ),
        ),
    ]


# ----------------------------------------------------------------------
# DBLP performance queries Q1-Q10 (Fig. 5)
# ----------------------------------------------------------------------


def dblp_performance_queries() -> List[WorkloadQuery]:
    """Q1–Q10: keyword counts grow from 2 to 7, as in the paper's Fig. 5
    discussion ("our approach achieves better performance when the number
    of keywords is large, Q7–Q10")."""
    specs = [
        ("Q1", ["cimiano", "2006"]),
        ("Q2", ["algorithm", "icde"]),
        ("Q3", ["database", "1999", "journal"]),
        ("Q4", ["turing", "graph", "sigmod"]),
        ("Q5", ["cimiano", "tran", "keyword", "2006"]),
        ("Q6", ["icde", "database", "index", "2000"]),
        ("Q7", ["cimiano", "rudolph", "semantic", "2007", "vldb"]),
        ("Q8", ["turing", "codd", "database", "1998", "journal"]),
        ("Q9", ["wang", "tran", "keyword", "search", "2006", "icde"]),
        ("Q10", ["cimiano", "rudolph", "wang", "semantic", "graph", "2007", "sigmod"]),
    ]
    return [
        WorkloadQuery(qid, keywords, f"performance query {qid}")
        for qid, keywords in specs
    ]


# ----------------------------------------------------------------------
# Running-example effectiveness workload: 5 queries
# ----------------------------------------------------------------------


def example_effectiveness_workload() -> List[WorkloadQuery]:
    """Intent-annotated queries over the Fig. 1a running example."""
    return [
        WorkloadQuery(
            "E1",
            ["2006", "cimiano", "aifb"],
            "Publications from 2006 by Cimiano, who works at AIFB (Fig. 1c)",
            IntentSpec(
                [
                    (_T, "?x", OneOf(EX.Publication)),
                    (EX.year, "?x", Literal("2006")),
                    (EX.author, "?x", "?y"),
                    (EX.name, "?y", Literal("P. Cimiano")),
                    (EX.worksAt, "?y", "?z"),
                    (EX.name, "?z", Literal("AIFB")),
                ]
            ),
        ),
        WorkloadQuery(
            "E2",
            ["cimiano", "publication"],
            "Publications authored by Cimiano",
            IntentSpec(
                [
                    (_T, "?x", OneOf(EX.Publication)),
                    (EX.author, "?x", "?y"),
                    (EX.name, "?y", Contains("cimiano")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "E3",
            ["x-media", "project"],
            "The project named X-Media",
            IntentSpec(
                [
                    (_T, "?p", OneOf(EX.Project)),
                    (EX.name, "?p", Contains("media")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "E4",
            ["tran", "aifb"],
            "Thanh Tran and the AIFB institute he works at",
            IntentSpec(
                [
                    (EX.worksAt, "?x", "?z"),
                    (EX.name, "?x", Contains("tran")),
                    (EX.name, "?z", Literal("AIFB")),
                ]
            ),
        ),
        WorkloadQuery(
            "E5",
            ["researcher", "institute"],
            "Researchers and the institutes they work at",
            IntentSpec(
                [
                    (_T, "?x", OneOf(EX.Researcher)),
                    (EX.worksAt, "?x", "?z"),
                    (_T, "?z", OneOf(EX.Institute)),
                ],
                exact=False,
            ),
        ),
    ]


# ----------------------------------------------------------------------
# LUBM effectiveness workload: 16 queries
# ----------------------------------------------------------------------

_PROFESSOR_CLASSES = OneOf(
    UB.FullProfessor, UB.AssociateProfessor, UB.AssistantProfessor, UB.Professor
)
_STUDENT_CLASSES = OneOf(
    UB.UndergraduateStudent, UB.GraduateStudent, UB.Student
)
_COURSE_CLASSES = OneOf(UB.Course, UB.GraduateCourse)


def lubm_effectiveness_workload() -> List[WorkloadQuery]:
    """Intent-annotated LUBM queries, so MRR is no longer a two-dataset
    story — the scale sweeps and the mmap tier gate on LUBM bundles, and
    this workload lets the quality harness score those same artifacts."""
    return [
        WorkloadQuery(
            "L1",
            ["professor", "department0"],
            "Professors working for Department0",
            IntentSpec(
                [
                    (_T, "?x", _PROFESSOR_CLASSES),
                    (UB.worksFor, "?x", "?d"),
                    (UB.name, "?d", Contains("department0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L2",
            ["lecturer", "department0"],
            "Lecturers working for Department0",
            IntentSpec(
                [
                    (_T, "?x", OneOf(UB.Lecturer)),
                    (UB.worksFor, "?x", "?d"),
                    (UB.name, "?d", Contains("department0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L3",
            ["student", "course"],
            "Students and the courses they take",
            IntentSpec(
                [
                    (_T, "?x", _STUDENT_CLASSES),
                    (UB.takesCourse, "?x", "?c"),
                    (_T, "?c", _COURSE_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L4",
            ["professor", "course"],
            "Professors and the courses they teach",
            IntentSpec(
                [
                    (_T, "?x", _PROFESSOR_CLASSES),
                    (UB.teacherOf, "?x", "?c"),
                    (_T, "?c", _COURSE_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L5",
            ["graduate", "advisor"],
            "Graduate students and their advisors",
            IntentSpec(
                [
                    (_T, "?x", OneOf(UB.GraduateStudent)),
                    (UB.advisor, "?x", "?y"),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L6",
            ["professor", "publication"],
            "Publications authored by professors",
            IntentSpec(
                [
                    (_T, "?p", OneOf(UB.Publication)),
                    (UB.publicationAuthor, "?p", "?a"),
                    (_T, "?a", _PROFESSOR_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L7",
            ["university0", "department"],
            "Departments of University0",
            # Department names carry the university ("Department0 of
            # University0"), so the correct interpretation is the name
            # match, not a subOrganizationOf join.
            IntentSpec(
                [
                    (_T, "?d", OneOf(UB.Department)),
                    (UB.name, "?d", Contains("university0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L8",
            ["head", "department0"],
            "The head of Department0",
            IntentSpec(
                [
                    (UB.headOf, "?x", "?d"),
                    (UB.name, "?d", Contains("department0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L9",
            ["undergraduate", "course"],
            "Undergraduate students and their courses",
            IntentSpec(
                [
                    (_T, "?x", OneOf(UB.UndergraduateStudent)),
                    (UB.takesCourse, "?x", "?c"),
                    (_T, "?c", _COURSE_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L10",
            ["research", "department0"],
            "Research groups of Department0",
            IntentSpec(
                [
                    (_T, "?g", OneOf(UB.ResearchGroup)),
                    (UB.subOrganizationOf, "?g", "?d"),
                    (UB.name, "?d", Contains("department0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L11",
            ["lecturer", "course"],
            "Lecturers and the courses they teach",
            IntentSpec(
                [
                    (_T, "?x", OneOf(UB.Lecturer)),
                    (UB.teacherOf, "?x", "?c"),
                    (_T, "?c", _COURSE_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L12",
            ["graduate", "course"],
            "Graduate courses and their students",
            IntentSpec(
                [
                    (_T, "?c", OneOf(UB.GraduateCourse)),
                    (UB.takesCourse, "?x", "?c"),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L13",
            ["doctoral", "university0"],
            "People with a doctoral degree from University0",
            IntentSpec(
                [
                    (UB.doctoralDegreeFrom, "?x", "?u"),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L14",
            ["student", "publication"],
            "Publications co-authored by students",
            IntentSpec(
                [
                    (_T, "?p", OneOf(UB.Publication)),
                    (UB.publicationAuthor, "?p", "?a"),
                    (_T, "?a", _STUDENT_CLASSES),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L15",
            ["student", "department0"],
            "Students who are members of Department0",
            IntentSpec(
                [
                    (_T, "?x", _STUDENT_CLASSES),
                    (UB.memberOf, "?x", "?d"),
                    (UB.name, "?d", Contains("department0")),
                ],
                exact=False,
            ),
        ),
        WorkloadQuery(
            "L16",
            ["professor", "email"],
            "Professors and their email addresses",
            IntentSpec(
                [
                    (_T, "?x", _PROFESSOR_CLASSES),
                    (UB.emailAddress, "?x", "?v"),
                ],
                exact=False,
            ),
        ),
    ]


# ----------------------------------------------------------------------
# Registry: one intent-annotated workload per bundled dataset
# ----------------------------------------------------------------------

_EFFECTIVENESS_WORKLOADS = {
    "example": example_effectiveness_workload,
    "dblp": dblp_effectiveness_workload,
    "tap": tap_effectiveness_workload,
    "lubm": lubm_effectiveness_workload,
}


def effectiveness_workload(dataset: str) -> List[WorkloadQuery]:
    """The intent-annotated workload for a bundled dataset name."""
    try:
        factory = _EFFECTIVENESS_WORKLOADS[dataset]
    except KeyError:
        raise ValueError(
            f"no effectiveness workload for dataset {dataset!r} "
            f"(have: {sorted(_EFFECTIVENESS_WORKLOADS)})"
        ) from None
    return factory()
