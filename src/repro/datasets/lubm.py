"""A LUBM-style university dataset generator.

The Lehigh University Benchmark's Java generator cannot run offline, so this
module re-implements its schema and cardinality ratios (scaled down by
default) with a seeded PRNG: universities contain departments; departments
employ full/associate/assistant professors and lecturers; students take
courses, have advisors, and co-author publications with faculty — the same
relation structure LUBM(50,0) exercises in the paper's Fig. 6b.

:func:`iter_lubm_triples` is the streaming form: it yields the exact same
triple sequence :func:`generate_lubm` materializes (asserted by test), with
memory bounded by one department's entities — the out-of-core build path
(`repro build --stream`) consumes it directly so million-triple scales never
instantiate a :class:`~repro.rdf.graph.DataGraph` first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.rdf.graph import DataGraph
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

#: Vocabulary namespace, mirroring LUBM's univ-bench ontology names.
UB = Namespace("http://example.org/univ-bench/")


@dataclass(frozen=True)
class LubmConfig:
    """Scaled-down LUBM cardinalities (original ranges in comments)."""

    universities: int = 1
    seed: int = 50
    departments_per_university: Tuple[int, int] = (3, 5)  # LUBM: 15-25
    full_professors: Tuple[int, int] = (2, 4)  # LUBM: 7-10
    associate_professors: Tuple[int, int] = (3, 5)  # LUBM: 10-14
    assistant_professors: Tuple[int, int] = (2, 4)  # LUBM: 8-11
    lecturers: Tuple[int, int] = (2, 3)  # LUBM: 5-7
    undergrad_per_faculty: Tuple[int, int] = (3, 5)  # LUBM: 8-14
    grad_per_faculty: Tuple[int, int] = (1, 3)  # LUBM: 3-4
    courses_per_faculty: Tuple[int, int] = (1, 2)
    publications_per_faculty: Tuple[int, int] = (1, 5)


_FACULTY_CLASSES = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")


def iter_lubm_triples(config: LubmConfig = LubmConfig()) -> Iterator[Triple]:
    """Stream the dataset's triples deterministically for a given config.

    Yields exactly the sequence ``generate_lubm(config)`` would store (the
    PRNG consumption order is identical), holding only one department's
    faculty/course/publication lists at a time.
    """
    rng = random.Random(config.seed)
    t = RDF.type
    sub = RDFS.subClassOf

    # Class hierarchy (subset of univ-bench).
    hierarchy = [
        ("FullProfessor", "Professor"),
        ("AssociateProfessor", "Professor"),
        ("AssistantProfessor", "Professor"),
        ("Professor", "Faculty"),
        ("Lecturer", "Faculty"),
        ("Faculty", "Employee"),
        ("Employee", "Person"),
        ("UndergraduateStudent", "Student"),
        ("GraduateStudent", "Student"),
        ("Student", "Person"),
        ("GraduateCourse", "Course"),
        ("Department", "Organization"),
        ("University", "Organization"),
        ("ResearchGroup", "Organization"),
    ]
    for child, parent in hierarchy:
        yield Triple(UB[child], sub, UB[parent])

    pub_index = 0
    course_index = 0

    for u in range(config.universities):
        university = UB[f"university{u}"]
        yield Triple(university, t, UB.University)
        yield Triple(university, UB.name, Literal(f"University{u}"))

        n_departments = rng.randint(*config.departments_per_university)
        for d in range(n_departments):
            department = UB[f"department{u}_{d}"]
            yield Triple(department, t, UB.Department)
            yield Triple(department, UB.name, Literal(f"Department{d} of University{u}"))
            yield Triple(department, UB.subOrganizationOf, university)

            group = UB[f"group{u}_{d}"]
            yield Triple(group, t, UB.ResearchGroup)
            yield Triple(group, UB.subOrganizationOf, department)

            faculty: List[URI] = []
            counts = (
                rng.randint(*config.full_professors),
                rng.randint(*config.associate_professors),
                rng.randint(*config.assistant_professors),
            )
            for cls_name, count in zip(_FACULTY_CLASSES, counts):
                for i in range(count):
                    prof = UB[f"{cls_name.lower()}{u}_{d}_{i}"]
                    faculty.append(prof)
                    yield Triple(prof, t, UB[cls_name])
                    yield Triple(prof, UB.name, Literal(f"{cls_name}{i} Dept{d} Univ{u}"))
                    yield Triple(prof, UB.emailAddress, Literal(f"{cls_name.lower()}{i}@u{u}d{d}.edu"))
                    yield Triple(prof, UB.worksFor, department)
                    yield Triple(
                        prof, UB.doctoralDegreeFrom,
                        UB[f"university{rng.randrange(max(config.universities, 1))}"],
                    )
            # The first full professor heads the department.
            yield Triple(faculty[0], UB.headOf, department)

            for i in range(rng.randint(*config.lecturers)):
                lecturer = UB[f"lecturer{u}_{d}_{i}"]
                faculty.append(lecturer)
                yield Triple(lecturer, t, UB.Lecturer)
                yield Triple(lecturer, UB.name, Literal(f"Lecturer{i} Dept{d} Univ{u}"))
                yield Triple(lecturer, UB.worksFor, department)

            # Courses taught by faculty.
            courses: List[URI] = []
            for member in faculty:
                for _ in range(rng.randint(*config.courses_per_faculty)):
                    is_grad = rng.random() < 0.3
                    course = UB[f"course{course_index}"]
                    course_index += 1
                    courses.append(course)
                    yield Triple(course, t, UB.GraduateCourse if is_grad else UB.Course)
                    yield Triple(course, UB.name, Literal(f"Course{course_index}"))
                    yield Triple(member, UB.teacherOf, course)

            # Publications co-authored by faculty (and later grad students).
            publications: List[URI] = []
            for member in faculty:
                for _ in range(rng.randint(*config.publications_per_faculty)):
                    pub = UB[f"publication{pub_index}"]
                    pub_index += 1
                    publications.append(pub)
                    yield Triple(pub, t, UB.Publication)
                    yield Triple(pub, UB.name, Literal(f"Publication{pub_index}"))
                    yield Triple(pub, UB.publicationAuthor, member)

            # Students.
            n_faculty = len(faculty)
            n_undergrad = rng.randint(*config.undergrad_per_faculty) * n_faculty
            for i in range(n_undergrad):
                student = UB[f"undergrad{u}_{d}_{i}"]
                yield Triple(student, t, UB.UndergraduateStudent)
                yield Triple(student, UB.name, Literal(f"UndergraduateStudent{i} Dept{d} Univ{u}"))
                yield Triple(student, UB.memberOf, department)
                for course in rng.sample(courses, min(len(courses), rng.randint(1, 3))):
                    yield Triple(student, UB.takesCourse, course)

            n_grad = rng.randint(*config.grad_per_faculty) * n_faculty
            for i in range(n_grad):
                student = UB[f"grad{u}_{d}_{i}"]
                yield Triple(student, t, UB.GraduateStudent)
                yield Triple(student, UB.name, Literal(f"GraduateStudent{i} Dept{d} Univ{u}"))
                yield Triple(student, UB.memberOf, department)
                yield Triple(student, UB.advisor, rng.choice(faculty))
                yield Triple(
                    student, UB.undergraduateDegreeFrom,
                    UB[f"university{rng.randrange(max(config.universities, 1))}"],
                )
                for course in rng.sample(courses, min(len(courses), rng.randint(1, 2))):
                    yield Triple(student, UB.takesCourse, course)
                if publications and rng.random() < 0.5:
                    yield Triple(rng.choice(publications), UB.publicationAuthor, student)


def generate_lubm(config: LubmConfig = LubmConfig()) -> DataGraph:
    """Generate the dataset deterministically for a given config."""
    return DataGraph(iter_lubm_triples(config))
