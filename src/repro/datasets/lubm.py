"""A LUBM-style university dataset generator.

The Lehigh University Benchmark's Java generator cannot run offline, so this
module re-implements its schema and cardinality ratios (scaled down by
default) with a seeded PRNG: universities contain departments; departments
employ full/associate/assistant professors and lecturers; students take
courses, have advisors, and co-author publications with faculty — the same
relation structure LUBM(50,0) exercises in the paper's Fig. 6b.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.rdf.graph import DataGraph
from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

#: Vocabulary namespace, mirroring LUBM's univ-bench ontology names.
UB = Namespace("http://example.org/univ-bench/")


@dataclass(frozen=True)
class LubmConfig:
    """Scaled-down LUBM cardinalities (original ranges in comments)."""

    universities: int = 1
    seed: int = 50
    departments_per_university: Tuple[int, int] = (3, 5)  # LUBM: 15-25
    full_professors: Tuple[int, int] = (2, 4)  # LUBM: 7-10
    associate_professors: Tuple[int, int] = (3, 5)  # LUBM: 10-14
    assistant_professors: Tuple[int, int] = (2, 4)  # LUBM: 8-11
    lecturers: Tuple[int, int] = (2, 3)  # LUBM: 5-7
    undergrad_per_faculty: Tuple[int, int] = (3, 5)  # LUBM: 8-14
    grad_per_faculty: Tuple[int, int] = (1, 3)  # LUBM: 3-4
    courses_per_faculty: Tuple[int, int] = (1, 2)
    publications_per_faculty: Tuple[int, int] = (1, 5)


_FACULTY_CLASSES = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")


def generate_lubm(config: LubmConfig = LubmConfig()) -> DataGraph:
    """Generate the dataset deterministically for a given config."""
    rng = random.Random(config.seed)
    triples: List[Triple] = []
    t = RDF.type
    sub = RDFS.subClassOf

    # Class hierarchy (subset of univ-bench).
    hierarchy = [
        ("FullProfessor", "Professor"),
        ("AssociateProfessor", "Professor"),
        ("AssistantProfessor", "Professor"),
        ("Professor", "Faculty"),
        ("Lecturer", "Faculty"),
        ("Faculty", "Employee"),
        ("Employee", "Person"),
        ("UndergraduateStudent", "Student"),
        ("GraduateStudent", "Student"),
        ("Student", "Person"),
        ("GraduateCourse", "Course"),
        ("Department", "Organization"),
        ("University", "Organization"),
        ("ResearchGroup", "Organization"),
    ]
    for child, parent in hierarchy:
        triples.append(Triple(UB[child], sub, UB[parent]))

    pub_index = 0
    course_index = 0

    for u in range(config.universities):
        university = UB[f"university{u}"]
        triples.append(Triple(university, t, UB.University))
        triples.append(Triple(university, UB.name, Literal(f"University{u}")))

        n_departments = rng.randint(*config.departments_per_university)
        for d in range(n_departments):
            department = UB[f"department{u}_{d}"]
            triples.append(Triple(department, t, UB.Department))
            triples.append(Triple(department, UB.name, Literal(f"Department{d} of University{u}")))
            triples.append(Triple(department, UB.subOrganizationOf, university))

            group = UB[f"group{u}_{d}"]
            triples.append(Triple(group, t, UB.ResearchGroup))
            triples.append(Triple(group, UB.subOrganizationOf, department))

            faculty: List[URI] = []
            counts = (
                rng.randint(*config.full_professors),
                rng.randint(*config.associate_professors),
                rng.randint(*config.assistant_professors),
            )
            for cls_name, count in zip(_FACULTY_CLASSES, counts):
                for i in range(count):
                    prof = UB[f"{cls_name.lower()}{u}_{d}_{i}"]
                    faculty.append(prof)
                    triples.append(Triple(prof, t, UB[cls_name]))
                    triples.append(
                        Triple(prof, UB.name, Literal(f"{cls_name}{i} Dept{d} Univ{u}"))
                    )
                    triples.append(
                        Triple(prof, UB.emailAddress, Literal(f"{cls_name.lower()}{i}@u{u}d{d}.edu"))
                    )
                    triples.append(Triple(prof, UB.worksFor, department))
                    triples.append(
                        Triple(prof, UB.doctoralDegreeFrom,
                               UB[f"university{rng.randrange(max(config.universities, 1))}"])
                    )
            # The first full professor heads the department.
            triples.append(Triple(faculty[0], UB.headOf, department))

            for i in range(rng.randint(*config.lecturers)):
                lecturer = UB[f"lecturer{u}_{d}_{i}"]
                faculty.append(lecturer)
                triples.append(Triple(lecturer, t, UB.Lecturer))
                triples.append(Triple(lecturer, UB.name, Literal(f"Lecturer{i} Dept{d} Univ{u}")))
                triples.append(Triple(lecturer, UB.worksFor, department))

            # Courses taught by faculty.
            courses: List[URI] = []
            for member in faculty:
                for _ in range(rng.randint(*config.courses_per_faculty)):
                    is_grad = rng.random() < 0.3
                    course = UB[f"course{course_index}"]
                    course_index += 1
                    courses.append(course)
                    triples.append(
                        Triple(course, t, UB.GraduateCourse if is_grad else UB.Course)
                    )
                    triples.append(Triple(course, UB.name, Literal(f"Course{course_index}")))
                    triples.append(Triple(member, UB.teacherOf, course))

            # Publications co-authored by faculty (and later grad students).
            publications: List[URI] = []
            for member in faculty:
                for _ in range(rng.randint(*config.publications_per_faculty)):
                    pub = UB[f"publication{pub_index}"]
                    pub_index += 1
                    publications.append(pub)
                    triples.append(Triple(pub, t, UB.Publication))
                    triples.append(Triple(pub, UB.name, Literal(f"Publication{pub_index}")))
                    triples.append(Triple(pub, UB.publicationAuthor, member))

            # Students.
            n_faculty = len(faculty)
            n_undergrad = rng.randint(*config.undergrad_per_faculty) * n_faculty
            for i in range(n_undergrad):
                student = UB[f"undergrad{u}_{d}_{i}"]
                triples.append(Triple(student, t, UB.UndergraduateStudent))
                triples.append(Triple(student, UB.name, Literal(f"UndergraduateStudent{i} Dept{d} Univ{u}")))
                triples.append(Triple(student, UB.memberOf, department))
                for course in rng.sample(courses, min(len(courses), rng.randint(1, 3))):
                    triples.append(Triple(student, UB.takesCourse, course))

            n_grad = rng.randint(*config.grad_per_faculty) * n_faculty
            for i in range(n_grad):
                student = UB[f"grad{u}_{d}_{i}"]
                triples.append(Triple(student, t, UB.GraduateStudent))
                triples.append(Triple(student, UB.name, Literal(f"GraduateStudent{i} Dept{d} Univ{u}")))
                triples.append(Triple(student, UB.memberOf, department))
                triples.append(Triple(student, UB.advisor, rng.choice(faculty)))
                triples.append(
                    Triple(student, UB.undergraduateDegreeFrom,
                           UB[f"university{rng.randrange(max(config.universities, 1))}"])
                )
                for course in rng.sample(courses, min(len(courses), rng.randint(1, 2))):
                    triples.append(Triple(student, UB.takesCourse, course))
                if publications and rng.random() < 0.5:
                    triples.append(
                        Triple(rng.choice(publications), UB.publicationAuthor, student)
                    )

    return DataGraph(triples)
