"""Shared name/word pools for the dataset generators.

All generators draw from these deterministic pools with seeded PRNGs, and
each plants a fixed set of *anchor* entities (e.g. the author "Philipp
Cimiano", the venue "ICDE") regardless of scale, so the evaluation workloads
in :mod:`repro.datasets.workloads` resolve at every dataset size.
"""

from __future__ import annotations

from typing import List, Sequence

FIRST_NAMES: Sequence[str] = (
    "Alice", "Bruno", "Carla", "Daniel", "Elena", "Felix", "Grace", "Hugo",
    "Ines", "Jonas", "Katrin", "Lars", "Maria", "Nils", "Olga", "Pavel",
    "Quinn", "Rosa", "Stefan", "Tara", "Ulrich", "Vera", "Walter", "Xenia",
    "Yannick", "Zoe", "Amir", "Bianca", "Chen", "Dmitri", "Eva", "Farid",
    "Gita", "Hans", "Irene", "Javier", "Keiko", "Liam", "Mona", "Nadia",
)

LAST_NAMES: Sequence[str] = (
    "Abel", "Brandt", "Castro", "Dietrich", "Engel", "Fischer", "Gruber",
    "Hoffmann", "Ivanov", "Jansen", "Keller", "Lehmann", "Maier", "Neumann",
    "Otto", "Peters", "Quast", "Richter", "Schmidt", "Thaler", "Unger",
    "Vogel", "Wagner", "Xu", "Yilmaz", "Zimmer", "Becker", "Conrad",
    "Dorn", "Ebert", "Falk", "Gerber", "Hartmann", "Isenberg", "Jung",
    "Krause", "Lorenz", "Moser", "Nagel", "Oswald",
)

#: Topic words for publication titles; evaluation keywords draw from the
#: front of this list, so they always match several titles.
TITLE_TOPICS: Sequence[str] = (
    "algorithm", "database", "keyword", "search", "graph", "query", "index",
    "semantic", "web", "data", "mining", "distributed", "parallel",
    "optimization", "learning", "network", "stream", "cache", "storage",
    "ranking", "retrieval", "schema", "transaction", "clustering",
    "language", "logic", "model", "system", "analysis", "framework",
)

TITLE_CONNECTIVES: Sequence[str] = (
    "efficient", "scalable", "adaptive", "incremental", "robust", "novel",
    "approximate", "dynamic", "probabilistic", "declarative",
)

#: Conference anchors — always generated, at any scale.
CONFERENCE_ANCHORS: Sequence[str] = ("ICDE", "SIGMOD", "VLDB")

CONFERENCE_POOL: Sequence[str] = (
    "EDBT", "CIKM", "WWW", "ISWC", "ESWC", "KDD", "ICDM", "SODA", "PODS",
    "CIDR", "PVLDB", "SSDBM",
)

JOURNAL_ANCHORS: Sequence[str] = ("TKDE", "VLDB Journal")

JOURNAL_POOL: Sequence[str] = (
    "Information Systems", "Data Engineering Bulletin", "SIGMOD Record",
    "Journal of Web Semantics", "Knowledge and Information Systems",
)

#: Author anchors — the effectiveness workload refers to these by name.
AUTHOR_ANCHORS: Sequence[str] = (
    "Philipp Cimiano",
    "Thanh Tran",
    "Sebastian Rudolph",
    "Haofen Wang",
    "Alan Turing",
    "Edgar Codd",
)

RESEARCH_INTERESTS: Sequence[str] = (
    "databases", "semantic web", "information retrieval", "graph theory",
    "machine learning", "distributed systems", "query optimization",
    "data integration", "knowledge representation", "stream processing",
)


def person_name(rng, used: set) -> str:
    """A fresh deterministic person name."""
    for _ in range(1000):
        name = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
        if name not in used:
            used.add(name)
            return name
    # Pools exhausted: disambiguate with a counter.
    base = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
    i = 2
    while f"{base} {i}" in used:
        i += 1
    name = f"{base} {i}"
    used.add(name)
    return name


def publication_title(rng) -> str:
    """A 3-5 word title over the topic vocabulary.

    Every title contains at least one word from :data:`TITLE_TOPICS`, so
    topic keywords ("algorithm", "database", ...) always have matches.
    """
    words: List[str] = [rng.choice(TITLE_CONNECTIVES), rng.choice(TITLE_TOPICS)]
    extra = rng.randrange(1, 4)
    for _ in range(extra):
        words.append(rng.choice(TITLE_TOPICS))
    return " ".join(words)
