"""The graph index of Section IV-B: summary graph and its augmentation.

The summary graph (Definition 4) aggregates the data graph to class level —
one vertex per class plus ``Thing`` for untyped entities, one edge per
(relation label, source class, target class) combination — so exploration
never touches the (much larger) data graph.  At query time the summary is
augmented (Definition 5) with exactly the keyword-matching V-vertices and
A-edges, nothing else, keeping the search space minimal; the augmentation
is realized zero-copy through :class:`~repro.summary.overlay.OverlaySummaryGraph`,
a per-query view layered over the shared base graph.
"""

from repro.summary.elements import (
    SummaryVertex,
    SummaryEdge,
    SummaryVertexKind,
    SummaryEdgeKind,
    THING_KEY,
)
from repro.summary.summary_graph import SummaryGraph
from repro.summary.overlay import OverlaySummaryGraph
from repro.summary.augmentation import AugmentedSummaryGraph, augment

__all__ = [
    "SummaryVertex",
    "SummaryEdge",
    "SummaryVertexKind",
    "SummaryEdgeKind",
    "THING_KEY",
    "SummaryGraph",
    "OverlaySummaryGraph",
    "AugmentedSummaryGraph",
    "augment",
]
