"""Query-time augmentation of the summary graph (Definition 5).

Given the per-keyword match sets from the keyword index, the summary graph
is extended with

* one V-vertex plus ``A-edge(C-vertex_i, V-vertex)`` edges for every
  keyword-matching value, and
* one artificial ``value`` node plus ``A-edge(C-vertex, value)`` edges for
  every keyword-matching A-edge label,

using the ``[V-vertex, A-edge, (C-vertex_1..n)]`` neighbor structures the
index returns.  The result also records, per keyword, the set of
*representative elements* (the K_i of Algorithm 1) and, per element, the
matching score ``sm(n)`` consumed by the C3 cost function.

The extension is **zero-copy**: instead of duplicating the summary graph per
query, the added vertices and edges are layered onto the shared base graph
through an :class:`~repro.summary.overlay.OverlaySummaryGraph` view, so
augmentation allocates work proportional to the number of keyword matches,
not to |summary graph|.  The base graph is never mutated either way.  The
legacy copying behavior is retained behind ``copy=True`` purely as the
reference point for the ``benchmarks/test_fig_augmentation.py``
micro-benchmark.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.keyword.keyword_index import (
    AttributeMatch,
    ClassMatch,
    KeywordMatch,
    RelationMatch,
    ValueMatch,
)
from repro.summary.elements import SummaryEdgeKind
from repro.summary.overlay import OverlaySummaryGraph
from repro.summary.summary_graph import SummaryGraph


class AugmentedSummaryGraph:
    """A summary graph plus keyword elements and their matching scores.

    Attributes
    ----------
    graph:
        The augmented graph — normally an
        :class:`~repro.summary.overlay.OverlaySummaryGraph` view sharing the
        base summary graph (which is never mutated).
    keyword_elements:
        ``keyword_elements[i]`` is the set of element keys representing
        keyword *i* — the exploration's starting set K_i.
    match_scores:
        element key → best ``sm(n)`` over all keywords that matched it;
        elements absent from the map score 1 (Section V).
    """

    def __init__(
        self,
        graph,
        keyword_elements: List[Set[Hashable]],
        match_scores: Dict[Hashable, float],
    ):
        self.graph = graph
        self.keyword_elements = keyword_elements
        self.match_scores = match_scores
        self._sorted_elements: Optional[Tuple[Tuple[Hashable, ...], ...]] = None

    @property
    def keyword_count(self) -> int:
        return len(self.keyword_elements)

    def sorted_keyword_elements(self) -> Tuple[Tuple[Hashable, ...], ...]:
        """``keyword_elements`` with each K_i in canonical (repr-sorted)
        order, cached — the deterministic cursor-seeding order of the
        exploration, computed once even when the same augmented graph is
        explored repeatedly."""
        cached = self._sorted_elements
        if cached is None:
            cached = tuple(
                tuple(sorted(ks, key=repr)) for ks in self.keyword_elements
            )
            self._sorted_elements = cached
        return cached

    def matching_score(self, element_key: Hashable) -> float:
        return self.match_scores.get(element_key, 1.0)

    def unmatched_keywords(self) -> List[int]:
        """Indices of keywords that matched nothing (uninterpretable)."""
        return [i for i, ks in enumerate(self.keyword_elements) if not ks]

    def __repr__(self):
        sizes = [len(k) for k in self.keyword_elements]
        return f"AugmentedSummaryGraph(graph={self.graph!r}, K sizes={sizes})"


def _resolve_class_keys(graph, classes) -> Set[Hashable]:
    """Vertex keys for the classes that actually exist in the summary graph.

    ``None`` (untyped) resolves to Thing, materializing it on demand; class
    terms unknown to the summary graph are dropped so augmentation never
    creates dangling anchors.
    """
    keys: Set[Hashable] = set()
    for cls in classes:
        key = graph.class_key(cls)
        if cls is None:
            graph.ensure_thing()
            keys.add(key)
        elif graph.has_element(key):
            keys.add(key)
    return keys


def augment(
    summary: SummaryGraph,
    matches_per_keyword: Sequence[Sequence[KeywordMatch]],
    copy: bool = False,
) -> AugmentedSummaryGraph:
    """Build the augmented summary graph G'_K for one query.

    Match kinds are handled per Definition 5 and Section IV-B:

    * ``ClassMatch`` — the class vertex itself is the keyword element.
    * ``RelationMatch`` — every summary edge with that label represents the
      keyword (relations already live in the summary graph).
    * ``ValueMatch`` — add the V-vertex and its class-level A-edges; the
      V-vertex is the keyword element.
    * ``AttributeMatch`` — add an artificial ``value`` node and class-level
      A-edges; the *added edges* are the keyword elements.

    ``copy=True`` materializes a full per-query copy of the summary graph
    (the seed implementation's O(|summary|) behavior) instead of the
    zero-copy overlay; it exists for benchmarking the two side by side.
    """
    graph = summary.copy() if copy else OverlaySummaryGraph(summary)
    keyword_elements: List[Set[Hashable]] = []
    match_scores: Dict[Hashable, float] = {}

    def _record_score(key: Hashable, score: float) -> None:
        if score > match_scores.get(key, 0.0):
            match_scores[key] = score

    for matches in matches_per_keyword:
        elements: Set[Hashable] = set()
        for match in matches:
            if isinstance(match, ClassMatch):
                key = graph.class_key(match.cls)
                if graph.has_element(key):
                    elements.add(key)
                    _record_score(key, match.score)
            elif isinstance(match, RelationMatch):
                for edge in graph.edges_with_label(match.label):
                    if edge.kind is SummaryEdgeKind.RELATION:
                        elements.add(edge.key)
                        _record_score(edge.key, match.score)
            elif isinstance(match, ValueMatch):
                anchors = _resolve_class_keys(
                    graph, [cls for _, cls in match.occurrences]
                )
                if not anchors:
                    continue
                value_vertex = graph.add_value_vertex(match.value)
                elements.add(value_vertex.key)
                _record_score(value_vertex.key, match.score)
                for attr_label, cls in match.occurrences:
                    class_key = graph.class_key(cls)
                    if class_key not in anchors:
                        continue
                    graph.add_edge(
                        attr_label,
                        SummaryEdgeKind.ATTRIBUTE,
                        class_key,
                        value_vertex.key,
                    )
            elif isinstance(match, AttributeMatch):
                anchors = _resolve_class_keys(graph, match.classes)
                if not anchors:
                    continue
                artificial = graph.add_artificial_value_vertex(match.label)
                for class_key in anchors:
                    edge = graph.add_edge(
                        match.label,
                        SummaryEdgeKind.ATTRIBUTE,
                        class_key,
                        artificial.key,
                    )
                    elements.add(edge.key)
                    _record_score(edge.key, match.score)
            else:  # pragma: no cover - future match kinds
                raise TypeError(f"unsupported match type {type(match).__name__}")
        keyword_elements.append(elements)

    return AugmentedSummaryGraph(graph, keyword_elements, match_scores)
