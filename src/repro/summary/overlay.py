"""A zero-copy, query-scoped view over the summary graph.

The paper's augmentation (Definition 5) conceptually *extends* the summary
graph with keyword-matching V-vertices and A-edges.  The seed implementation
realized that extension by copying the whole summary graph per query — an
O(|summary|) term on every search.  :class:`OverlaySummaryGraph` realizes it
as a layered view instead: the immutable base graph stays shared across all
queries, and only the handful of augmentation-time vertices and edges (plus
their incidence) live in per-query dictionaries, so building the augmented
graph allocates O(#keyword matches).

The overlay exposes the same element-addressable API the exploration
(Algorithm 1), the query mapping (Section VI-D), and the cost models
(Section V) consume — ``vertex`` / ``edge`` / ``element`` / ``neighbors`` /
``incident_edges`` / ``edges_with_label`` / ``vertices`` / ``edges`` — with
overlay entries shadowing nothing: augmentation only ever *adds* elements,
never changes base ones, so every lookup is "overlay first, then base".

Mutating methods (``add_value_vertex``, ``add_artificial_value_vertex``,
``add_edge``, ``ensure_thing``) write exclusively to the overlay; the base
graph is never touched, which is what makes one base graph safely shareable
across concurrent queries.
"""

from __future__ import annotations

from heapq import merge as _heapmerge
from itertools import chain
from typing import Dict, Hashable, List, Optional, Tuple

from repro.rdf.terms import Term, URI
from repro.summary.elements import (
    THING_KEY,
    SummaryEdge,
    SummaryEdgeKind,
    SummaryVertex,
    SummaryVertexKind,
    edge_key,
    is_edge_key,
)
from repro.summary.summary_graph import SummaryGraph


class OverlaySummaryGraph:
    """Keyword-derived vertices and edges layered over a base summary graph.

    Attributes
    ----------
    base:
        The shared, immutable-during-query :class:`SummaryGraph`.
    """

    __slots__ = ("base", "_added_vertices", "_added_edges", "_added_incident")

    def __init__(self, base: SummaryGraph):
        self.base = base
        self._added_vertices: Dict[Hashable, SummaryVertex] = {}
        self._added_edges: Dict[Hashable, SummaryEdge] = {}
        # Extra incident-edge keys per vertex (base vertices gain entries
        # here when augmentation attaches A-edges to them).
        self._added_incident: Dict[Hashable, List[Hashable]] = {}

    # ------------------------------------------------------------------
    # Pass-through data-graph totals (cost normalization)
    # ------------------------------------------------------------------

    @property
    def total_entities(self) -> int:
        return self.base.total_entities

    @property
    def total_relation_edges(self) -> int:
        return self.base.total_relation_edges

    @property
    def total_attribute_edges(self) -> int:
        return self.base.total_attribute_edges

    @property
    def build_seconds(self) -> float:
        return self.base.build_seconds

    # ------------------------------------------------------------------
    # Augmentation-time mutation (overlay only)
    # ------------------------------------------------------------------

    def class_key(self, class_term: Optional[Term]) -> Hashable:
        # Mirrors SummaryGraph.class_key without the delegation hop (hot
        # path: called per match occurrence during augmentation).
        return THING_KEY if class_term is None else ("class", class_term)

    def ensure_thing(self) -> SummaryVertex:
        """Thing for the overlay: reuse the base vertex, else materialize a
        query-local one (zero aggregated entities, by construction)."""
        existing = self._added_vertices.get(THING_KEY)
        if existing is not None:
            return existing
        base_thing = self.base._vertices.get(THING_KEY)
        if base_thing is not None:
            return base_thing
        vertex = SummaryVertex(THING_KEY, SummaryVertexKind.THING, None, 0)
        self._add_vertex(vertex)
        return vertex

    def add_value_vertex(self, literal, agg_count: int = 1) -> SummaryVertex:
        key = ("value", literal)
        existing = self._added_vertices.get(key)
        if existing is not None:
            return existing
        vertex = SummaryVertex(key, SummaryVertexKind.VALUE, literal, agg_count)
        self._add_vertex(vertex)
        return vertex

    def add_artificial_value_vertex(self, label: URI) -> SummaryVertex:
        key = ("avalue", label)
        existing = self._added_vertices.get(key)
        if existing is not None:
            return existing
        vertex = SummaryVertex(key, SummaryVertexKind.ARTIFICIAL, None, 0)
        self._add_vertex(vertex)
        return vertex

    def _add_vertex(self, vertex: SummaryVertex) -> None:
        self._added_vertices[vertex.key] = vertex
        self._added_incident.setdefault(vertex.key, [])

    def add_edge(
        self,
        label: URI,
        kind: SummaryEdgeKind,
        source_key: Hashable,
        target_key: Hashable,
        agg_count: int = 1,
    ) -> SummaryEdge:
        """Insert an overlay edge (idempotent per (label, source, target))."""
        added, base_vertices = self._added_vertices, self.base._vertices
        if source_key not in added and source_key not in base_vertices:
            raise KeyError(f"unknown source vertex {source_key!r}")
        if target_key not in added and target_key not in base_vertices:
            raise KeyError(f"unknown target vertex {target_key!r}")
        key = edge_key(label, source_key, target_key)
        existing = self._added_edges.get(key)
        if existing is None:
            existing = self.base._edges.get(key)
        if existing is not None:
            return existing
        edge = SummaryEdge(label, kind, source_key, target_key, agg_count)
        self._added_edges[key] = edge
        self._added_incident.setdefault(source_key, []).append(key)
        if target_key != source_key:
            self._added_incident.setdefault(target_key, []).append(key)
        return edge

    # ------------------------------------------------------------------
    # Element access (overlay first, then base)
    # ------------------------------------------------------------------

    def vertex(self, key: Hashable) -> SummaryVertex:
        vertex = self._added_vertices.get(key)
        return vertex if vertex is not None else self.base.vertex(key)

    def edge(self, key: Hashable) -> SummaryEdge:
        edge = self._added_edges.get(key)
        return edge if edge is not None else self.base.edge(key)

    def element(self, key: Hashable):
        if is_edge_key(key):
            return self.edge(key)
        return self.vertex(key)

    def has_element(self, key: Hashable) -> bool:
        return (
            key in self._added_vertices
            or key in self._added_edges
            or key in self.base._vertices
            or key in self.base._edges
        )

    @property
    def vertices(self) -> Tuple[SummaryVertex, ...]:
        return self.base.vertices + tuple(self._added_vertices.values())

    @property
    def edges(self) -> Tuple[SummaryEdge, ...]:
        return self.base.edges + tuple(self._added_edges.values())

    @property
    def added_vertices(self) -> Tuple[SummaryVertex, ...]:
        """Overlay-only vertices (the per-query augmentation)."""
        return tuple(self._added_vertices.values())

    @property
    def added_edges(self) -> Tuple[SummaryEdge, ...]:
        """Overlay-only edges (the per-query augmentation)."""
        return tuple(self._added_edges.values())

    def added_element_keys(self) -> Tuple[Hashable, ...]:
        """Keys of overlay-only elements (vertices, then edges).

        The exploration substrate appends exactly these as per-query ids on
        top of the base graph's cached CSR tables.
        """
        return tuple(chain(self._added_vertices, self._added_edges))

    def added_incident_map(self) -> Dict[Hashable, List[Hashable]]:
        """Vertex key → overlay edge keys attached at query time.

        Includes entries for base vertices that gained A-edges; callers
        must treat the mapping as read-only.
        """
        return self._added_incident

    def edges_with_label(self, label: URI) -> List[SummaryEdge]:
        out = self.base.edges_with_label(label)
        added = [e for e in self._added_edges.values() if e.label == label]
        return out + added if added else out

    def incident_edges(self, vertex_key: Hashable) -> Tuple[Hashable, ...]:
        added = self._added_incident.get(vertex_key)
        if vertex_key in self._added_vertices:
            return tuple(added or ())
        base = self.base.incident_edges(vertex_key)
        return base + tuple(added) if added else base

    def neighbors(self, key: Hashable) -> Tuple[Hashable, ...]:
        if is_edge_key(key):
            edge = self.edge(key)
            if edge.source_key == edge.target_key:
                return (edge.source_key,)
            return (edge.source_key, edge.target_key)
        return self.incident_edges(key)

    def degree(self, vertex_key: Hashable) -> int:
        return len(self.incident_edges(vertex_key))

    def canonical_element_keys(self) -> Tuple[Hashable, ...]:
        """Canonical (repr-sorted) order over base + overlay elements.

        The base's sorted order is cached on the base graph (keyed on its
        mutation version); only the O(#matches) overlay keys are sorted
        per query and merged in.
        """
        added = sorted(
            ((repr(k), k) for k in chain(self._added_vertices, self._added_edges)),
            key=lambda p: p[0],
        )
        if not added:
            return self.base.canonical_element_keys()
        return tuple(
            k
            for _, k in _heapmerge(
                self.base._canonical_pairs(), added, key=lambda p: p[0]
            )
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        stats = self.base.stats()
        stats["vertices"] += len(self._added_vertices)
        stats["edges"] += len(self._added_edges)
        stats["estimated_bytes"] += (
            48 * len(self._added_vertices) + 80 * len(self._added_edges)
        )
        return stats

    def __len__(self) -> int:
        return len(self.base) + len(self._added_vertices) + len(self._added_edges)

    def __repr__(self):
        return (
            f"OverlaySummaryGraph(base={self.base!r}, "
            f"added_vertices={len(self._added_vertices)}, "
            f"added_edges={len(self._added_edges)})"
        )
