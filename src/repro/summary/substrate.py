"""Version-keyed CSR exploration substrate (the query-invariant half of
Algorithm 1's interning).

Before this module, every ``explore_top_k`` call re-interned the whole
augmented summary graph — re-sorting all element keys, re-hashing them into
an id dict, and re-materializing per-element neighbor lists — an
O(|summary| log |summary|) term per query.  The substrate hoists everything
query-invariant out of that loop: the **base** summary graph is interned
once into flat CSR arrays

* ``keys`` / ``ids`` — the canonical (repr-sorted) key ↔ id tables,
* ``offsets`` / ``targets`` — ``array('l')`` compressed sparse rows holding
  every element's neighbor ids in canonical order,

and cached on the summary graph keyed on its mutation ``version``
(:meth:`~repro.summary.summary_graph.SummaryGraph.exploration_substrate`),
so :class:`~repro.maintenance.IndexManager` updates invalidate it
automatically.  Per query, only the O(#matches) overlay elements receive
appended ids and adjacency rows (see ``repro.core.exploration``).

The substrate also hosts derived caches with the same lifetime (they
die with the substrate when ``version`` moves):

* per-cost-table ``array('d')`` base-cost slots, keyed on the cost model's
  cached base-cost dict — turning per-query cost assembly into one memcpy
  plus O(#matches) overrides;
* guided-mode completion-bound tables, keyed per (cost table,
  keyword-element sets, overlay signature), so repeated queries skip the
  per-keyword Dijkstra sweeps entirely;
* assembled per-query substrate *views*, keyed per (overlay signature,
  cost token), so a repeated query skips the extra-id/adjacency merge
  work too (see ``repro.core.exploration._build_substrate_view``);
* zero-copy int64 ndarray views over ``offsets``/``targets`` for the
  vectorized kernels (:mod:`repro.core.kernels`) — built lazily on first
  kernel use, sharing the underlying buffer (including the mmap pages of
  a bundle-adopted substrate).
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.util import LruDict


def checked_cost(key: Hashable, cost: Optional[float]) -> float:
    """Validate one element cost (same contract the exploration enforces)."""
    if cost is None:
        raise KeyError(f"no cost assigned to element {key!r}")
    if cost <= 0:
        raise ValueError(f"element cost must be positive: {key!r} -> {cost}")
    return cost


class ExplorationSubstrate:
    """Flat CSR intern tables over one version of a summary graph.

    Parameters
    ----------
    pairs:
        ``(repr, key)`` tuples in canonical (repr-sorted) order — exactly
        what ``SummaryGraph._canonical_pairs`` caches per version.
    neighbors_of:
        ``key -> iterable of neighbor keys`` over the same graph.
    """

    __slots__ = (
        "keys",
        "reprs",
        "ids",
        "offsets",
        "targets",
        "n",
        "backing",
        "_cost_arrays",
        "_bounds_cache",
        "_view_cache",
        "_ndarrays",
    )

    #: Base-cost arrays retained per substrate (one per live cost model).
    MAX_COST_TABLES = 4
    #: Guided completion-bound tables retained per substrate (LRU).
    MAX_BOUNDS = 32
    #: Assembled per-query views retained per substrate (LRU).
    MAX_VIEWS = 32

    def __init__(self, pairs: Iterable[Tuple[str, Hashable]], neighbors_of):
        pairs = tuple(pairs)
        self.keys: Tuple[Hashable, ...] = tuple(key for _, key in pairs)
        self.reprs: List[str] = [text for text, _ in pairs]
        ids: Dict[Hashable, int] = {key: i for i, key in enumerate(self.keys)}
        self.ids = ids
        self.n = len(self.keys)

        offsets = array("l", [0])
        targets = array("l")
        for key in self.keys:
            row = sorted(ids[nb] for nb in neighbors_of(key))
            targets.extend(row)
            offsets.append(len(targets))
        self.offsets = offsets
        self.targets = targets
        self.backing = None

        self._cost_arrays: Dict[int, Tuple[Mapping, array]] = {}
        self._bounds_cache: LruDict = LruDict(self.MAX_BOUNDS)
        self._view_cache: LruDict = LruDict(self.MAX_VIEWS)
        self._ndarrays = None

    @classmethod
    def from_arrays(
        cls,
        pairs: Iterable[Tuple[str, Hashable]],
        offsets,
        targets,
        backing=None,
    ) -> "ExplorationSubstrate":
        """Wrap precomputed CSR sections (the bundle loader's fast path).

        ``offsets`` / ``targets`` may be any int sequence supporting
        indexing, slicing, and iteration — in particular the zero-copy
        ``memoryview('q')`` over an mmap-ed bundle section, so restoring
        a substrate touches no adjacency data at all (the page cache
        faults rows in as exploration reads them).  ``backing`` pins the
        owning buffer (the mmap) for the substrate's lifetime.

        The caller guarantees the sections were produced by a substrate
        built over the same canonical ``pairs``; the persistence property
        tests enforce that a restored substrate explores identically to a
        rebuilt one.
        """
        substrate = cls.__new__(cls)
        pairs = tuple(pairs)
        substrate.keys = tuple(key for _, key in pairs)
        substrate.reprs = [text for text, _ in pairs]
        substrate.ids = {key: i for i, key in enumerate(substrate.keys)}
        substrate.n = len(substrate.keys)
        if len(offsets) != substrate.n + 1:
            raise ValueError(
                f"substrate offsets length {len(offsets)} does not match "
                f"{substrate.n} elements"
            )
        if len(offsets) and (offsets[0] != 0 or offsets[-1] != len(targets)):
            # Individually well-formed sections can still disagree with
            # each other; a short final offset would silently truncate
            # adjacency rows — the "silently wrong engine" the format
            # forbids.
            raise ValueError(
                f"substrate CSR sections inconsistent: offsets span "
                f"[{offsets[0]}, {offsets[-1]}] over {len(targets)} targets"
            )
        substrate.offsets = offsets
        substrate.targets = targets
        substrate.backing = backing
        substrate._cost_arrays = {}
        substrate._bounds_cache = LruDict(cls.MAX_BOUNDS)
        substrate._view_cache = LruDict(cls.MAX_VIEWS)
        substrate._ndarrays = None
        return substrate

    def row(self, element_id: int) -> array:
        """The neighbor ids of one element (ascending, canonical order)."""
        return self.targets[self.offsets[element_id] : self.offsets[element_id + 1]]

    # ------------------------------------------------------------------
    # Cost slots
    # ------------------------------------------------------------------

    def cost_array(self, base_table: Mapping[Hashable, float]) -> array:
        """``array('d')`` of base-element costs aligned with :attr:`keys`.

        Keyed on the identity of ``base_table`` — the cost models hand out
        one cached base-cost dict per graph version, so repeated queries
        hit the same array.  A strong reference to the table is kept so a
        recycled ``id()`` can never alias a dead entry.
        """
        token = id(base_table)
        entry = self._cost_arrays.get(token)
        if entry is not None and entry[0] is base_table:
            return entry[1]
        get = base_table.get
        arr = array("d", (checked_cost(key, get(key)) for key in self.keys))
        if len(self._cost_arrays) >= self.MAX_COST_TABLES:
            self._cost_arrays.pop(next(iter(self._cost_arrays)))
        self._cost_arrays[token] = (base_table, arr)
        return arr

    def fresh_cost_array(self, mapping: Mapping[Hashable, float]) -> array:
        """Uncached cost slots for an arbitrary per-query cost mapping."""
        get = mapping.get
        return array("d", (checked_cost(key, get(key)) for key in self.keys))

    # ------------------------------------------------------------------
    # Guided completion-bound tables
    # ------------------------------------------------------------------

    def get_bounds(self, key: tuple, cost_table: Mapping) -> Optional[list]:
        """Cached bound tables for one (cost table, query signature).

        ``key`` embeds ``id(cost_table)``; the entry keeps a strong
        reference to the table and is served only while that exact object
        is the one being keyed on, so a recycled ``id()`` of a dead table
        can never alias stale bounds (same defense as :meth:`cost_array`).
        """
        entry = self._bounds_cache.hit(key)
        if entry is not None and entry[0] is cost_table:
            return entry[1]
        return None

    def store_bounds(self, key: tuple, cost_table: Mapping, bounds: list) -> None:
        self._bounds_cache.put(key, (cost_table, bounds))

    def clear_bounds(self) -> None:
        """Drop every cached bound table (views and CSR arrays stay).

        For benchmarks and tests that need cold-bounds rounds without
        rebuilding the substrate; production code never needs this —
        entries age out of the LRU on their own.
        """
        self._bounds_cache = LruDict(self.MAX_BOUNDS)

    # ------------------------------------------------------------------
    # Assembled per-query views
    # ------------------------------------------------------------------

    def get_view(self, key: tuple, cost_table: Mapping):
        """Cached per-query view for one (overlay signature, cost token).

        Same ``id()``-aliasing defense as :meth:`cost_array`: the entry
        holds the cost table whose identity the key embeds, so it can only
        hit while that exact object is alive.
        """
        entry = self._view_cache.hit(key)
        if entry is not None and entry[0] is cost_table:
            return entry[1]
        return None

    def store_view(self, key: tuple, cost_table: Mapping, view) -> None:
        self._view_cache.put(key, (cost_table, view))

    # ------------------------------------------------------------------
    # ndarray views (vectorized kernels)
    # ------------------------------------------------------------------

    def ndarray_views(self):
        """The int64 ``(offsets, targets)`` ndarray pair adopted by
        :func:`repro.core.kernels.csr_ndarrays`, or ``None`` before the
        first kernel use.  Kept here so the views share the substrate's
        lifetime (and its ``backing`` mmap pin)."""
        return self._ndarrays

    def adopt_ndarray_views(self, views) -> None:
        self._ndarrays = views

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "elements": self.n,
            "adjacency_slots": len(self.targets),
            "estimated_bytes": 8 * (len(self.offsets) + len(self.targets))
            + 8 * self.n * len(self._cost_arrays),
        }

    def __repr__(self):
        return (
            f"ExplorationSubstrate(elements={self.n}, "
            f"adjacency_slots={len(self.targets)})"
        )
