"""Element model of the (augmented) summary graph.

Both vertices and edges are first-class *elements*: the exploration of
Algorithm 1 walks vertex → edge → vertex, because keywords may map to edges
(relations, attributes) just as well as to vertices.  Every element has a
hashable ``key`` that identifies it across graph copies, and an aggregation
count feeding the C2 popularity cost.

Key shapes:

* ``("class", term)`` — a C-vertex
* ``("thing",)`` — the Thing vertex (untyped entities)
* ``("value", literal)`` — an augmented keyword-matching V-vertex
* ``("avalue", label)`` — the artificial ``value`` node of Definition 5
* ``("edge", label, source_key, target_key)`` — any edge
"""

from __future__ import annotations

from enum import Enum
from typing import Hashable, Optional, Tuple

from repro.rdf.namespace import local_name
from repro.rdf.terms import Literal, Term, URI

#: Key of the Thing vertex, aggregation of all untyped entities.
THING_KEY: Tuple[str, ...] = ("thing",)


class SummaryVertexKind(Enum):
    CLASS = "class"
    THING = "thing"
    VALUE = "value"  # keyword-matching V-vertex (augmentation)
    ARTIFICIAL = "avalue"  # Definition 5's artificial `value` node


class SummaryEdgeKind(Enum):
    RELATION = "relation"
    ATTRIBUTE = "attribute"
    SUBCLASS = "subclass"


class SummaryVertex:
    """A vertex of the (augmented) summary graph."""

    __slots__ = ("key", "kind", "term", "agg_count")

    def __init__(
        self,
        key: Hashable,
        kind: SummaryVertexKind,
        term: Optional[Term],
        agg_count: int = 0,
    ):
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "term", term)
        object.__setattr__(self, "agg_count", agg_count)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("SummaryVertex is immutable")

    @property
    def label(self) -> str:
        if self.kind is SummaryVertexKind.THING:
            return "Thing"
        if self.kind is SummaryVertexKind.ARTIFICIAL:
            return "value"
        if isinstance(self.term, Literal):
            return self.term.lexical
        if isinstance(self.term, URI):
            return local_name(self.term)
        return str(self.term)

    def __eq__(self, other):
        return isinstance(other, SummaryVertex) and other.key == self.key

    def __hash__(self):
        return hash(self.key)

    def __repr__(self):
        return f"SummaryVertex({self.label}, kind={self.kind.value}, agg={self.agg_count})"


class SummaryEdge:
    """An edge of the (augmented) summary graph."""

    __slots__ = ("key", "label", "kind", "source_key", "target_key", "agg_count")

    def __init__(
        self,
        label: URI,
        kind: SummaryEdgeKind,
        source_key: Hashable,
        target_key: Hashable,
        agg_count: int = 0,
    ):
        object.__setattr__(self, "key", edge_key(label, source_key, target_key))
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "source_key", source_key)
        object.__setattr__(self, "target_key", target_key)
        object.__setattr__(self, "agg_count", agg_count)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("SummaryEdge is immutable")

    def with_agg_count(self, agg_count: int) -> "SummaryEdge":
        return SummaryEdge(self.label, self.kind, self.source_key, self.target_key, agg_count)

    @property
    def name(self) -> str:
        return local_name(self.label)

    def other_endpoint(self, vertex_key: Hashable) -> Hashable:
        """The endpoint that is not ``vertex_key`` (source for self-loops)."""
        if vertex_key == self.source_key:
            return self.target_key
        return self.source_key

    def __eq__(self, other):
        return isinstance(other, SummaryEdge) and other.key == self.key

    def __hash__(self):
        return hash(self.key)

    def __repr__(self):
        return (
            f"SummaryEdge({self.name}: {self.source_key} -> {self.target_key}, "
            f"kind={self.kind.value}, agg={self.agg_count})"
        )


def edge_key(label: URI, source_key: Hashable, target_key: Hashable) -> Tuple:
    """The key an edge with these endpoints is addressed by."""
    return ("edge", label, source_key, target_key)


def is_edge_key(key: Hashable) -> bool:
    """True if a key addresses an edge (vs. a vertex)."""
    return isinstance(key, tuple) and len(key) == 4 and key[0] == "edge"
