"""The summary graph of Definition 4, built by the aggregation rules.

Every class becomes one vertex aggregating its instances ([[v']]); ``Thing``
aggregates untyped entities; each data-graph R-edge projects to a summary
edge between the classes of its endpoints, so **for every path in the data
graph there is at least one path in the summary graph** (the data-guide-like
soundness property the exploration relies on).  Aggregation counts |v_agg|
and |e_agg| are retained for the C2 popularity cost.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.graph import DataGraph
from repro.rdf.terms import Term, URI
from repro.summary.elements import (
    THING_KEY,
    SummaryEdge,
    SummaryEdgeKind,
    SummaryVertex,
    SummaryVertexKind,
    edge_key,
    is_edge_key,
)
from repro.summary.substrate import ExplorationSubstrate

_SUBCLASS_LABEL = URI("http://www.w3.org/2000/01/rdf-schema#subClassOf")


class SummaryGraph:
    """An element-addressable graph over classes, Thing, and their relations.

    Vertices and edges are retrieved by key; ``neighbors(key)`` yields the
    incident edges of a vertex or the endpoints of an edge, which is exactly
    the neighbor notion Algorithm 1 explores (edges are elements too).
    """

    def __init__(self):
        self._vertices: Dict[Hashable, SummaryVertex] = {}
        self._edges: Dict[Hashable, SummaryEdge] = {}
        self._incident: Dict[Hashable, List[Hashable]] = {}
        # Edge keys per label, so relation-keyword augmentation is
        # O(#edges with that label) instead of a full edge scan.
        self._by_label: Dict[URI, List[Hashable]] = {}
        # Totals from the underlying data graph, for cost normalization.
        self.total_entities: int = 0
        self.total_relation_edges: int = 0
        self.total_attribute_edges: int = 0
        self.build_seconds: float = 0.0
        # Monotone mutation counter; cached structures derived from this
        # graph (e.g. per-element base costs) key their validity on it.
        self.version: int = 0
        # (version, (repr, key) pairs, keys) cache for the canonical order.
        self._canonical_cache: Optional[Tuple[int, Tuple, Tuple[Hashable, ...]]] = None
        # (version, substrate) cache for the CSR exploration substrate.
        self._substrate_cache: Optional[Tuple[int, ExplorationSubstrate]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_data_graph(cls, graph: DataGraph) -> "SummaryGraph":
        """Apply the aggregation rules of Definition 4."""
        started = time.perf_counter()
        summary = cls()
        stats = graph.stats()
        summary.total_entities = max(stats["entities"], 1)
        summary.total_relation_edges = max(stats["relation_edges"], 1)
        summary.total_attribute_edges = max(stats["attribute_edges"], 1)

        for class_term in graph.classes:
            summary.add_class_vertex(class_term, agg_count=len(graph.instances_of(class_term)))

        untyped = len(graph.untyped_entities)
        if untyped:
            summary.ensure_thing(agg_count=untyped)

        # Project every R-edge to class level; count aggregated originals.
        edge_counts: Dict[Tuple[URI, Hashable, Hashable], int] = {}
        for triple in graph.relation_triples():
            source_classes = graph.types_of(triple.subject) or (None,)
            target_classes = graph.types_of(triple.object) or (None,)
            for sc in source_classes:
                for tc in target_classes:
                    sk = summary.class_key(sc)
                    tk = summary.class_key(tc)
                    edge_counts[(triple.predicate, sk, tk)] = (
                        edge_counts.get((triple.predicate, sk, tk), 0) + 1
                    )
        for (label, sk, tk), count in edge_counts.items():
            if sk == THING_KEY or tk == THING_KEY:
                summary.ensure_thing()
            summary.add_edge(label, SummaryEdgeKind.RELATION, sk, tk, agg_count=count)

        for sub, sup in graph.subclass_pairs():
            summary.add_edge(
                _SUBCLASS_LABEL,
                SummaryEdgeKind.SUBCLASS,
                ("class", sub),
                ("class", sup),
                agg_count=1,
            )

        summary.build_seconds = time.perf_counter() - started
        return summary

    def class_key(self, class_term: Optional[Term]) -> Hashable:
        """The vertex key for a class term; ``None`` maps to Thing."""
        return THING_KEY if class_term is None else ("class", class_term)

    @staticmethod
    def edge_key(
        label: URI, source_key: Hashable, target_key: Hashable
    ) -> Hashable:
        """The key an edge with these endpoints is stored under."""
        return edge_key(label, source_key, target_key)

    def add_class_vertex(self, class_term: Term, agg_count: int = 0) -> SummaryVertex:
        key = ("class", class_term)
        vertex = SummaryVertex(key, SummaryVertexKind.CLASS, class_term, agg_count)
        self._add_vertex(vertex)
        return vertex

    def ensure_thing(self, agg_count: Optional[int] = None) -> SummaryVertex:
        existing = self._vertices.get(THING_KEY)
        if existing is not None:
            if agg_count is not None and agg_count != existing.agg_count:
                vertex = SummaryVertex(
                    THING_KEY, SummaryVertexKind.THING, None, agg_count
                )
                self._vertices[THING_KEY] = vertex
                self.version += 1
                return vertex
            return existing
        vertex = SummaryVertex(THING_KEY, SummaryVertexKind.THING, None, agg_count or 0)
        self._add_vertex(vertex)
        return vertex

    def add_value_vertex(self, literal, agg_count: int = 1) -> SummaryVertex:
        """An augmentation-time V-vertex (Definition 5, first bullet)."""
        key = ("value", literal)
        existing = self._vertices.get(key)
        if existing is not None:
            return existing
        vertex = SummaryVertex(key, SummaryVertexKind.VALUE, literal, agg_count)
        self._add_vertex(vertex)
        return vertex

    def add_artificial_value_vertex(self, label: URI) -> SummaryVertex:
        """The artificial ``value`` node of Definition 5 (second bullet)."""
        key = ("avalue", label)
        existing = self._vertices.get(key)
        if existing is not None:
            return existing
        vertex = SummaryVertex(key, SummaryVertexKind.ARTIFICIAL, None, 0)
        self._add_vertex(vertex)
        return vertex

    def _add_vertex(self, vertex: SummaryVertex) -> None:
        if vertex.key in self._vertices:
            return
        self._vertices[vertex.key] = vertex
        self._incident.setdefault(vertex.key, [])
        self.version += 1

    def add_edge(
        self,
        label: URI,
        kind: SummaryEdgeKind,
        source_key: Hashable,
        target_key: Hashable,
        agg_count: int = 1,
    ) -> SummaryEdge:
        """Insert an edge (idempotent per (label, source, target) key)."""
        if source_key not in self._vertices:
            raise KeyError(f"unknown source vertex {source_key!r}")
        if target_key not in self._vertices:
            raise KeyError(f"unknown target vertex {target_key!r}")
        edge = SummaryEdge(label, kind, source_key, target_key, agg_count)
        existing = self._edges.get(edge.key)
        if existing is not None:
            return existing
        self._edges[edge.key] = edge
        self._incident[source_key].append(edge.key)
        if target_key != source_key:
            self._incident[target_key].append(edge.key)
        self._by_label.setdefault(label, []).append(edge.key)
        self.version += 1
        return edge

    # ------------------------------------------------------------------
    # Incremental maintenance (used by repro.maintenance.IndexManager)
    # ------------------------------------------------------------------

    def set_vertex_agg_count(self, key: Hashable, agg_count: int) -> SummaryVertex:
        """Replace a vertex's aggregation count (vertices are immutable)."""
        old = self._vertices[key]
        if old.agg_count == agg_count:
            return old
        vertex = SummaryVertex(old.key, old.kind, old.term, agg_count)
        self._vertices[key] = vertex
        self.version += 1
        return vertex

    def remove_vertex(self, key: Hashable) -> None:
        """Remove a vertex; its incident edges must already be gone."""
        incident = self._incident.get(key)
        if incident:
            raise ValueError(f"cannot remove vertex {key!r}: {len(incident)} incident edges")
        del self._vertices[key]
        self._incident.pop(key, None)
        self.version += 1

    def remove_edge(self, key: Hashable) -> None:
        """Remove an edge and unlink it from its endpoints."""
        edge = self._edges.pop(key)
        self._incident[edge.source_key].remove(key)
        if edge.target_key != edge.source_key:
            self._incident[edge.target_key].remove(key)
        bucket = self._by_label.get(edge.label)
        if bucket is not None:
            bucket.remove(key)
            if not bucket:
                del self._by_label[edge.label]
        self.version += 1

    def adjust_edge_agg_count(
        self,
        label: URI,
        kind: SummaryEdgeKind,
        source_key: Hashable,
        target_key: Hashable,
        delta: int,
    ) -> Optional[SummaryEdge]:
        """Apply a delta to an edge's aggregation count.

        Creates the edge when it does not exist and the delta is positive;
        removes it when the count drops to zero.  Returns the resulting
        edge, or ``None`` if it was (or stayed) removed.
        """
        key = self.edge_key(label, source_key, target_key)
        existing = self._edges.get(key)
        if existing is None:
            if delta <= 0:
                return None
            return self.add_edge(label, kind, source_key, target_key, agg_count=delta)
        count = existing.agg_count + delta
        if count <= 0:
            self.remove_edge(key)
            return None
        if count != existing.agg_count:
            replacement = existing.with_agg_count(count)
            self._edges[key] = replacement
            self.version += 1
            return replacement
        return existing

    def set_totals(
        self, entities: int, relation_edges: int, attribute_edges: int
    ) -> None:
        """Refresh the data-graph totals the cost models normalize by."""
        totals = (max(entities, 1), max(relation_edges, 1), max(attribute_edges, 1))
        if totals != (
            self.total_entities,
            self.total_relation_edges,
            self.total_attribute_edges,
        ):
            self.total_entities, self.total_relation_edges, self.total_attribute_edges = totals
            self.version += 1

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------

    def vertex(self, key: Hashable) -> SummaryVertex:
        return self._vertices[key]

    def edge(self, key: Hashable) -> SummaryEdge:
        return self._edges[key]

    def element(self, key: Hashable):
        """Vertex or edge by key."""
        if is_edge_key(key):
            return self._edges[key]
        return self._vertices[key]

    def has_element(self, key: Hashable) -> bool:
        return key in self._vertices or key in self._edges

    @property
    def vertices(self) -> Tuple[SummaryVertex, ...]:
        return tuple(self._vertices.values())

    @property
    def edges(self) -> Tuple[SummaryEdge, ...]:
        return tuple(self._edges.values())

    def edges_with_label(self, label: URI) -> List[SummaryEdge]:
        return [self._edges[key] for key in self._by_label.get(label, ())]

    def incident_edges(self, vertex_key: Hashable) -> Tuple[Hashable, ...]:
        """Keys of all edges touching a vertex (direction ignored — the
        exploration is direction-agnostic, Section VI-A)."""
        return tuple(self._incident.get(vertex_key, ()))

    @property
    def snapshot_key(self) -> int:
        """The formal snapshot key of this graph: its mutation version.

        Every cache derived from the summary graph (canonical order,
        exploration substrate, cost base tables, memoized search results)
        keys validity on this value, and
        :class:`~repro.core.snapshot.EngineSnapshot` pins it for the
        duration of a search.  It is :attr:`version` by another name — the
        property exists so "what identifies a summary state" is an API
        contract, not a convention spread across call sites.
        """
        return self.version

    def _canonical_pairs(self) -> Tuple:
        """Cached ``(repr, key)`` pairs sorted by repr; overlay views merge
        their few added elements into this without re-sorting the base."""
        cached = self._canonical_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        pairs = tuple(
            sorted(
                ((repr(k), k) for k in chain(self._vertices, self._edges)),
                key=lambda p: p[0],
            )
        )
        keys = tuple(k for _, k in pairs)
        self._canonical_cache = (self.version, pairs, keys)
        return pairs

    def canonical_element_keys(self) -> Tuple[Hashable, ...]:
        """All element keys in canonical (repr-sorted) order, cached per
        :attr:`version` — the exploration's deterministic interning order."""
        self._canonical_pairs()
        return self._canonical_cache[2]

    def exploration_substrate(self) -> ExplorationSubstrate:
        """The CSR intern tables of this graph, cached per :attr:`version`.

        The substrate is the query-invariant part of Algorithm 1's element
        interning (canonical key ↔ id tables plus flat adjacency arrays);
        any mutation advances :attr:`version` and therefore invalidates it
        automatically — including every delta the
        :class:`~repro.maintenance.IndexManager` propagates.
        """
        cached = self._substrate_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        substrate = ExplorationSubstrate(self._canonical_pairs(), self.neighbors)
        self._substrate_cache = (self.version, substrate)
        return substrate

    def neighbors(self, key: Hashable) -> Tuple[Hashable, ...]:
        """Neighbor *elements*: incident edges of a vertex, or endpoints of
        an edge."""
        if is_edge_key(key):
            edge = self._edges[key]
            if edge.source_key == edge.target_key:
                return (edge.source_key,)
            return (edge.source_key, edge.target_key)
        return self.incident_edges(key)

    def degree(self, vertex_key: Hashable) -> int:
        return len(self._incident.get(vertex_key, ()))

    # ------------------------------------------------------------------
    # Persistence (used by repro.storage)
    # ------------------------------------------------------------------

    def state_for_persistence(self) -> Dict[str, object]:
        """Vertices and edges in insertion order plus the scalars.

        Incidence lists and label buckets are not exported: replaying the
        same vertex/edge insertion order rebuilds them identically (see
        :meth:`from_state`).
        """
        return {
            "vertices": self._vertices,
            "edges": self._edges,
            "total_entities": self.total_entities,
            "total_relation_edges": self.total_relation_edges,
            "total_attribute_edges": self.total_attribute_edges,
            "build_seconds": self.build_seconds,
            "version": self.version,
        }

    @classmethod
    def from_state(
        cls,
        vertices: Iterable[SummaryVertex],
        edges: Iterable[Tuple[URI, SummaryEdgeKind, Hashable, Hashable, int]],
        *,
        total_entities: int,
        total_relation_edges: int,
        total_attribute_edges: int,
        build_seconds: float,
        version: int,
    ) -> "SummaryGraph":
        """Replay saved vertices and edges in their saved insertion order.

        Replaying through :meth:`_add_vertex` / :meth:`add_edge` (rather
        than adopting raw dicts) keeps this constructor honest about the
        class invariants — incidence lists and per-label buckets come out
        exactly as the live graph had them, because their order is purely
        a function of insertion order.  The mutation counter is then
        pinned to the saved ``version`` so the restored graph's
        :attr:`snapshot_key` matches the saved one.
        """
        summary = cls()
        for vertex in vertices:
            summary._add_vertex(vertex)
        for label, kind, source_key, target_key, agg_count in edges:
            summary.add_edge(label, kind, source_key, target_key, agg_count=agg_count)
        summary.total_entities = max(total_entities, 1)
        summary.total_relation_edges = max(total_relation_edges, 1)
        summary.total_attribute_edges = max(total_attribute_edges, 1)
        summary.build_seconds = build_seconds
        summary.version = version
        return summary

    def adopt_substrate(self, substrate: ExplorationSubstrate) -> None:
        """Install a restored CSR substrate for the *current* version.

        Used by the bundle loader right after :meth:`from_state`: the
        mmap-backed substrate replaces the first
        :meth:`exploration_substrate` build.  Any later mutation advances
        :attr:`version` and drops it, exactly like a built one.
        """
        self._substrate_cache = (self.version, substrate)

    # ------------------------------------------------------------------
    # Copy (kept as the reference semantics the overlay view is benchmarked
    # against; query-time augmentation uses OverlaySummaryGraph instead)
    # ------------------------------------------------------------------

    def copy(self) -> "SummaryGraph":
        clone = SummaryGraph()
        clone._vertices = dict(self._vertices)
        clone._edges = dict(self._edges)
        clone._incident = {k: list(v) for k, v in self._incident.items()}
        clone._by_label = {k: list(v) for k, v in self._by_label.items()}
        clone.total_entities = self.total_entities
        clone.total_relation_edges = self.total_relation_edges
        clone.total_attribute_edges = self.total_attribute_edges
        clone.build_seconds = self.build_seconds
        return clone

    # ------------------------------------------------------------------
    # Statistics (Fig. 6b)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "vertices": len(self._vertices),
            "edges": len(self._edges),
            "estimated_bytes": 48 * len(self._vertices) + 80 * len(self._edges),
            "build_seconds": self.build_seconds,
        }

    def __len__(self) -> int:
        return len(self._vertices) + len(self._edges)

    def __repr__(self):
        return f"SummaryGraph(vertices={len(self._vertices)}, edges={len(self._edges)})"
