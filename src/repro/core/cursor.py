"""The cursor ``c(n, k, p, d, w)`` of Algorithm 1.

A cursor represents one distinct path from a keyword element to the element
it currently visits.  The path itself is recovered by recursive traversal of
parent cursors, exactly as the paper describes; cursors are immutable, so a
parent can be shared by many children without copying.

Cursors created through :meth:`Cursor.origin_cursor` / :meth:`Cursor.expand`
additionally carry ``path_set`` — a frozenset of the elements on the path —
giving :meth:`visits` an O(1) membership check.  Directly constructed
cursors may omit it (``path_set=None``) and :meth:`visits` falls back to
the parent-chain walk; the exploration's hot loop does exactly that, since
a live set per cursor measurably slows large explorations down (every GC
pass has to scan them) while the chain walk is bounded by dmax and
allocates nothing.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional, Tuple


class Cursor:
    """One explored path, addressed by its tip.

    Attributes
    ----------
    element:
        ``n`` — the graph element (vertex or edge key) just visited.
    keyword:
        The index *i* of the keyword this path originates from.
    origin:
        ``k`` — the keyword element the path started at.
    parent:
        ``p`` — the cursor this one was expanded from (None at the origin).
    distance:
        ``d`` — number of elements on the path after the origin.
    cost:
        ``w`` — accumulated path cost, including the origin's own cost.
    path_set:
        The set of elements on the path (optional; enables O(1) cycle
        checks).
    """

    __slots__ = ("element", "keyword", "origin", "parent", "distance", "cost", "path_set")

    def __init__(
        self,
        element: Hashable,
        keyword: int,
        origin: Hashable,
        parent: Optional["Cursor"],
        distance: int,
        cost: float,
        path_set: Optional[FrozenSet[Hashable]] = None,
    ):
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "keyword", keyword)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "distance", distance)
        object.__setattr__(self, "cost", cost)
        object.__setattr__(self, "path_set", path_set)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Cursor is immutable")

    @classmethod
    def origin_cursor(cls, element: Hashable, keyword: int, cost: float) -> "Cursor":
        """The initial cursor placed on a keyword element (Alg 1 line 4)."""
        return cls(element, keyword, element, None, 0, cost, frozenset((element,)))

    def expand(self, neighbor: Hashable, neighbor_cost: float) -> "Cursor":
        """A child cursor visiting ``neighbor`` (Alg 1 line 20)."""
        path_set = self.path_set
        return Cursor(
            neighbor,
            self.keyword,
            self.origin,
            self,
            self.distance + 1,
            self.cost + neighbor_cost,
            None if path_set is None else path_set | {neighbor},
        )

    def visits(self, element: Hashable) -> bool:
        """True if ``element`` lies on this cursor's path (cycle check,
        Alg 1 line 17).  One set lookup when ``path_set`` is carried;
        otherwise a walk of the parent chain (paths are short, ≤ dmax)."""
        path_set = self.path_set
        if path_set is not None:
            return element in path_set
        cursor: Optional[Cursor] = self
        while cursor is not None:
            if cursor.element == element:
                return True
            cursor = cursor.parent
        return False

    @property
    def parent_element(self) -> Optional[Hashable]:
        """The element of the parent cursor, ``(c.p).n`` (Alg 1 line 13)."""
        return self.parent.element if self.parent is not None else None

    def path(self) -> List[Hashable]:
        """The path from the origin to the current element."""
        out: List[Hashable] = []
        cursor: Optional[Cursor] = self
        while cursor is not None:
            out.append(cursor.element)
            cursor = cursor.parent
        out.reverse()
        return out

    def path_elements(self) -> FrozenSet[Hashable]:
        """The set of elements on the path."""
        path_set = self.path_set
        if path_set is not None:
            return path_set
        return frozenset(self.path())

    def __len__(self) -> int:
        return self.distance + 1

    def __repr__(self):
        return (
            f"Cursor(element={self.element!r}, keyword={self.keyword}, "
            f"d={self.distance}, w={self.cost:.3f})"
        )
