"""The end-to-end keyword-search engine (Fig. 2's full pipeline).

Offline, the constructor builds the keyword index, the summary graph, and
the triple store; :meth:`KeywordSearchEngine.add_triples` and
:meth:`KeywordSearchEngine.remove_triples` keep all three consistent under
data changes through the :class:`~repro.maintenance.IndexManager` — no
rebuild, and query-time caches (cost tables, selectivity statistics) are
invalidated automatically.

Per query, :meth:`KeywordSearchEngine.search` performs the five tasks of
Section VI — keyword-to-element mapping, augmentation, exploration, top-k,
query mapping — and returns ranked :class:`QueryCandidate` objects carrying
the conjunctive query, its cost, its subgraph, and presentation renderings
(SPARQL, SQL, natural language).  Augmentation is zero-copy: the summary
graph is never duplicated per query; keyword-derived elements are layered
onto it through an :class:`~repro.summary.overlay.OverlaySummaryGraph`
view.  :meth:`KeywordSearchEngine.execute` then runs a chosen query on the
store, completing the paper's search paradigm: *compute queries, let the
user pick, let the database answer*.

The online pipeline is factored for concurrent serving: ``search`` is
snapshot acquisition (:meth:`KeywordSearchEngine.snapshot`, an
:class:`~repro.core.snapshot.EngineSnapshot` pinning the formal
``(summary version, keyword-index version)`` key) followed by **pure
pipeline stages** (:func:`_match_stage`, :func:`_augment_stage`,
:func:`_explore_stage`, :func:`_map_stage`) that read everything through
the snapshot they are handed.  :class:`~repro.service.EngineService` runs
the same stages from a worker pool against one shared snapshot; results
are byte-identical either way.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from repro.util import LruDict

from repro.core.exploration import (
    DEFAULT_DMAX,
    ExplorationResult,
    explore_top_k,
    prefuse_guided_bounds,
)
from repro.core.query_mapping import QueryMappingError, map_to_query
from repro.maintenance import IndexManager
from repro.core.subgraph import MatchingSubgraph
from repro.keyword.keyword_index import (
    AttributeMatch,
    KeywordIndex,
    KeywordMatch,
    ValueMatch,
)
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.filters import (
    _COMPARISON_WORDS,
    Filter,
    FilteredQuery,
    FilterKeyword,
    parse_filter_keyword,
)
from repro.rdf.terms import Literal, Variable
from repro.query.evaluator import Answer, QueryEvaluator
from repro.query.isomorphism import canonical_form
from repro.query.nlg import verbalize
from repro.query.sparql import to_sparql
from repro.query.sql import to_sql
from repro.rdf.graph import DataGraph
from repro.rdf.triples import Triple
from repro.core.snapshot import EngineSnapshot
from repro.scoring.cost import CostModel, make_cost_model
from repro.store.triple_store import TripleStore
from repro.summary.augmentation import augment
from repro.summary.summary_graph import SummaryGraph


class QueryCandidate:
    """One computed interpretation: a ranked conjunctive query."""

    __slots__ = ("query", "cost", "subgraph", "rank")

    def __init__(
        self,
        query: ConjunctiveQuery,
        cost: float,
        subgraph: MatchingSubgraph,
        rank: int,
    ):
        self.query = query
        self.cost = cost
        self.subgraph = subgraph
        self.rank = rank

    def to_sparql(self) -> str:
        return to_sparql(self.query)

    def to_sql(self) -> str:
        return to_sql(self.query)

    def verbalize(self) -> str:
        return verbalize(self.query)

    def __repr__(self):
        return f"QueryCandidate(rank={self.rank}, cost={self.cost:.3f}, query={self.query})"


class SearchResult:
    """The outcome of one keyword search: ranked queries + diagnostics."""

    def __init__(
        self,
        keywords: Sequence[str],
        candidates: List[QueryCandidate],
        matches: List[List[KeywordMatch]],
        ignored_keywords: List[str],
        exploration: Optional[ExplorationResult],
        timings: Dict[str, float],
    ):
        self.keywords = list(keywords)
        self.candidates = candidates
        self.matches = matches
        self.ignored_keywords = ignored_keywords
        self.exploration = exploration
        self.timings = timings

    @property
    def queries(self) -> List[ConjunctiveQuery]:
        return [c.query for c in self.candidates]

    def best(self) -> Optional[QueryCandidate]:
        return self.candidates[0] if self.candidates else None

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    def copy(self) -> "SearchResult":
        """A shallow copy with fresh list/dict containers.

        Candidates, matches, and the exploration diagnostics are shared
        (immutable in practice); the containers are fresh so a caller
        sorting or trimming a result in place cannot poison the engine's
        result cache.
        """
        return SearchResult(
            self.keywords,
            list(self.candidates),
            [list(m) for m in self.matches],
            list(self.ignored_keywords),
            self.exploration,
            dict(self.timings),
        )

    def __repr__(self):
        return (
            f"SearchResult(keywords={self.keywords!r}, "
            f"candidates={len(self.candidates)}, "
            f"total_ms={1000 * self.timings.get('total', 0):.1f})"
        )


def _looks_numeric(text: str) -> bool:
    try:
        float(text.strip())
        return True
    except ValueError:
        return False


def split_keywords(query: str) -> List[str]:
    """Whitespace keyword segmentation with double-quoted phrase support.

    >>> split_keywords('cimiano "x media" 2006')
    ['cimiano', 'x media', '2006']
    """
    out: List[str] = []
    buffer: List[str] = []
    in_quotes = False
    for ch in query:
        if ch == '"':
            in_quotes = not in_quotes
            if not in_quotes and buffer:
                out.append("".join(buffer))
                buffer = []
        elif ch.isspace() and not in_quotes:
            if buffer:
                out.append("".join(buffer))
                buffer = []
        else:
            buffer.append(ch)
    if buffer:
        out.append("".join(buffer))
    return out


# ----------------------------------------------------------------------
# The pure pipeline stages (Section VI's five tasks).
#
# Each stage reads *only* through the EngineSnapshot it is handed — no
# engine attributes — so a search that pinned version (s, i) computes on
# version (s, i) from start to finish, no matter what the engine object
# does meanwhile.  That property is what lets the serving layer fan one
# snapshot over a worker pool and still return results byte-identical to
# sequential execution.
# ----------------------------------------------------------------------


def _match_stage(
    snapshot: EngineSnapshot, keywords: Sequence[str]
) -> List[List[KeywordMatch]]:
    """Task 1: keyword-to-element mapping through the pinned index."""
    return snapshot.keyword_index.lookup_all(keywords)


def _augment_stage(snapshot: EngineSnapshot, effective):
    """Task 2: zero-copy augmentation + element costs on the pinned summary."""
    augmented = augment(snapshot.summary, effective)
    costs = snapshot.cost_model.element_costs(augmented)
    return augmented, costs


def _explore_stage(
    snapshot: EngineSnapshot,
    augmented,
    costs,
    k: int,
    dmax: int,
    max_cursors: Optional[int],
) -> ExplorationResult:
    """Tasks 3+4: exploration and top-k on the pinned CSR substrate."""
    return explore_top_k(
        augmented,
        costs,
        k=k,
        dmax=dmax,
        max_cursors=max_cursors,
        guided=snapshot.guided,
        use_vectorized=snapshot.use_vectorized,
    )


def _map_stage(
    snapshot: EngineSnapshot, subgraphs, augmented_graph
) -> List[QueryCandidate]:
    """Task 5: map matching subgraphs to deduplicated, ranked queries."""
    type_pred = snapshot.graph.preferred_type_predicate
    subclass_pred = snapshot.graph.preferred_subclass_predicate
    candidates: List[QueryCandidate] = []
    seen_forms = {}
    for subgraph in subgraphs:
        try:
            query = map_to_query(
                subgraph,
                augmented_graph,
                type_predicate=type_pred,
                subclass_predicate=subclass_pred,
            )
        except QueryMappingError:
            continue
        form = canonical_form(query)
        if form in seen_forms:  # cheaper duplicate already ranked
            continue
        seen_forms[form] = True
        candidates.append(
            QueryCandidate(query, subgraph.cost, subgraph, rank=len(candidates) + 1)
        )
    return candidates


class KeywordSearchEngine:
    """Keyword search through top-k query computation over RDF data.

    Parameters
    ----------
    graph:
        The RDF data graph.
    cost_model:
        ``"c1"`` / ``"c2"`` / ``"c3"`` / ``"pagerank"`` or a
        :class:`~repro.scoring.cost.CostModel` instance.  C3 (popularity ÷
        matching score) is the paper's best performer and the default.
    k:
        Default number of queries to compute.
    dmax:
        Default exploration depth, in elements.
    max_matches_per_keyword:
        Branching bound handed to the keyword index.
    strict_keywords:
        If true, a keyword with no matching element fails the search; if
        false (default) such keywords are ignored and reported in
        ``SearchResult.ignored_keywords``.
    search_cache_size:
        When positive, completed :class:`SearchResult` objects are
        memoized (LRU) keyed on the keyword tuple, the effective search
        parameters, and the summary/keyword-index version counters — so a
        repeated query against unchanged data is served without touching
        the pipeline.  :meth:`add_triples` / :meth:`remove_triples`
        invalidate the cache through the :class:`~repro.maintenance.IndexManager`.
        Every caller receives a container-fresh shallow copy of the
        memoized result (shared candidates and the *original* ``timings``),
        so in-place mutation of a result cannot poison the cache.
        Disabled by default.
    """

    def __init__(
        self,
        graph: DataGraph,
        cost_model: Union[str, CostModel] = "c3",
        k: int = 10,
        dmax: int = DEFAULT_DMAX,
        max_matches_per_keyword: int = 8,
        strict_keywords: bool = False,
        guided: bool = False,
        use_vectorized: Optional[bool] = None,
        keyword_index: Optional[KeywordIndex] = None,
        summary: Optional[SummaryGraph] = None,
        store: Optional[TripleStore] = None,
        search_cache_size: int = 0,
    ):
        self.graph = graph
        self.cost_model = (
            make_cost_model(cost_model) if isinstance(cost_model, str) else cost_model
        )
        self.k = k
        self.dmax = dmax
        self.strict_keywords = strict_keywords
        self.guided = guided
        #: Tri-state vectorized-kernel override handed to every snapshot:
        #: None = auto (numpy-backed kernels when available), False =
        #: scalar reference path, True = require the kernels.  A runtime
        #: performance knob, deliberately not persisted in bundles.
        self.use_vectorized = use_vectorized
        self._search_cache: Optional[LruDict] = (
            LruDict(search_cache_size) if search_cache_size > 0 else None
        )
        #: Provenance of a bundle-loaded engine (path, format version,
        #: epoch at save, WAL state) — ``None`` for a built engine.  The
        #: serving layer surfaces it through ``/stats``.
        self.artifact: Optional[Dict[str, object]] = None
        #: Serving tier of the keyword index / triple store ("memory" or
        #: "mmap"); ``load(..., index_tier="mmap")`` overwrites this.
        self.index_tier = "memory"
        #: The attached write-ahead delta log of a bundle-loaded engine
        #: (``None`` otherwise).  The log is single-writer (an exclusive
        #: lock is held while attached); ``delta_log.close()`` releases
        #: it so another engine may take over the artifact.
        self.delta_log = None

        started = time.perf_counter()
        # `is None`, not truthiness: a supplied-but-empty component (e.g. a
        # zero-triple bundle's lazy store) must be adopted, not silently
        # rebuilt.
        self.summary = (
            summary if summary is not None else SummaryGraph.from_data_graph(graph)
        )
        self.keyword_index = (
            keyword_index
            if keyword_index is not None
            else KeywordIndex(graph, max_matches_per_keyword=max_matches_per_keyword)
        )
        self.store = store if store is not None else TripleStore.from_graph(graph)
        self.evaluator = QueryEvaluator(self.store)
        self.index_manager = IndexManager(
            graph=graph,
            keyword_index=self.keyword_index,
            summary=self.summary,
            store=self.store,
            evaluator=self.evaluator,
        )
        self.index_manager.add_listener(self._invalidate_query_caches)
        self.preprocessing_seconds = time.perf_counter() - started

    @classmethod
    def from_triples(cls, triples: Sequence[Triple], **kwargs) -> "KeywordSearchEngine":
        return cls(DataGraph(triples), **kwargs)

    # ------------------------------------------------------------------
    # Persistence (the offline layer as a durable artifact)
    # ------------------------------------------------------------------

    def save(self, path, force: bool = False, **kwargs) -> Dict[str, object]:
        """Write the whole offline layer to a ``.reprobundle`` file.

        The bundle (``repro.storage``) holds the triple store, keyword
        index, summary graph, and CSR substrate in a versioned,
        checksummed, pickle-free binary format keyed on the formal
        ``(summary version, keyword-index version)`` snapshot pair;
        :meth:`load` reconstitutes an engine that is byte-identical in
        behavior to this one.  Refuses to overwrite an existing file
        unless ``force``.  Returns an info dict (path, size, epoch).
        Keyword arguments (``format_version``) pass through to
        :func:`repro.storage.save_bundle`.
        """
        from repro.storage import save_bundle

        return save_bundle(self, path, force=force, **kwargs)

    @classmethod
    def load(
        cls,
        path,
        *,
        replay_wal: bool = True,
        attach_wal: bool = True,
        wal_path=None,
        lazy: bool = True,
        **overrides,
    ) -> "KeywordSearchEngine":
        """Reconstitute an engine from a bundle in milliseconds-not-minutes.

        Loading decodes the serialized offline structures (no rebuild, no
        re-analysis) and maps the substrate's CSR sections straight from
        the file; the engine configuration saved in the bundle applies
        unless overridden (``cost_model``, ``k``, ``dmax``,
        ``strict_keywords``, ``guided``, ``search_cache_size``).  A delta
        log next to the bundle has its committed tail replayed through
        incremental maintenance (``replay_wal``) and is then kept
        attached (``attach_wal``) so future :meth:`add_triples` /
        :meth:`remove_triples` epochs survive a restart.  The resulting
        engine records its provenance in :attr:`artifact`.
        """
        from repro.storage import load_engine

        return load_engine(
            path,
            replay_wal=replay_wal,
            attach_wal=attach_wal,
            wal_path=wal_path,
            lazy=lazy,
            **overrides,
        )

    # ------------------------------------------------------------------
    # Updates (incremental offline-index maintenance)
    # ------------------------------------------------------------------

    def add_triples(self, triples: Sequence[Triple]) -> int:
        """Insert triples, updating every offline index incrementally.

        Propagates deltas through the data graph, the keyword index, the
        summary graph, and the triple store without rebuilding any of
        them; cached per-element costs and selectivity statistics are
        invalidated.  Returns the number of triples actually added.
        """
        return self.index_manager.add_triples(triples)

    def remove_triples(self, triples: Sequence[Triple]) -> int:
        """Remove triples; the incremental counterpart of :meth:`add_triples`."""
        return self.index_manager.remove_triples(triples)

    def _invalidate_query_caches(self) -> None:
        """Hooked into the IndexManager: runs after every applied batch.

        The version counters baked into every cache key (summary graph,
        keyword index) already prevent stale hits; clearing eagerly simply
        releases the memory of results that can never be served again.
        """
        if self._search_cache is not None:
            self._search_cache.clear()

    # ------------------------------------------------------------------
    # Search (Fig. 2, online part): snapshot acquisition + pure stages
    # ------------------------------------------------------------------

    def snapshot(self) -> EngineSnapshot:
        """Pin the current engine state as an immutable read view.

        The snapshot records the formal ``(summary version, keyword-index
        version)`` key and references every structure the pipeline stages
        read — including the version-keyed CSR substrate and the cost
        model whose base table is keyed on the pinned summary version.
        Consistency across a racing update is the serving layer's job
        (:class:`~repro.service.EngineService` excludes writers while any
        search holds a read view); single-threaded use needs no
        coordination because nothing mutates mid-search.
        """
        summary = self.summary
        return EngineSnapshot(
            graph=self.graph,
            summary=summary,
            keyword_index=self.keyword_index,
            store=self.store,
            evaluator=self.evaluator,
            cost_model=self.cost_model,
            substrate=summary.exploration_substrate(),
            summary_version=summary.snapshot_key,
            index_version=self.keyword_index.snapshot_key,
            epoch=self.index_manager.epoch,
            k=self.k,
            dmax=self.dmax,
            strict_keywords=self.strict_keywords,
            guided=self.guided,
            use_vectorized=self.use_vectorized,
        )

    def search(
        self,
        query: Union[str, Sequence[str]],
        k: Optional[int] = None,
        dmax: Optional[int] = None,
        max_cursors: Optional[int] = None,
        matches: Optional[List[List[KeywordMatch]]] = None,
    ) -> SearchResult:
        """Compute the top-k conjunctive queries for a keyword query.

        ``matches`` overrides the keyword-to-element mapping (one match
        list per keyword) — used by extensions such as the filter operator
        support, which inject attribute-level interpretations.

        An empty keyword query (no keywords, or only whitespace) raises
        ``ValueError``: there is nothing to explore, and silently
        returning zero candidates reads like "no interpretation exists"
        when the real problem is upstream input handling.
        """
        return self.search_on_snapshot(
            self.snapshot(), query, k=k, dmax=dmax, max_cursors=max_cursors,
            matches=matches,
        )

    def search_on_snapshot(
        self,
        snapshot: EngineSnapshot,
        query: Union[str, Sequence[str]],
        k: Optional[int] = None,
        dmax: Optional[int] = None,
        max_cursors: Optional[int] = None,
        matches: Optional[List[List[KeywordMatch]]] = None,
    ) -> SearchResult:
        """Run the five pipeline stages against a pinned snapshot.

        This is :meth:`search` minus the snapshot acquisition — the entry
        point the serving layer uses to run a whole batch against one
        consistent ``(summary version, index version)`` pair.
        """
        keywords = split_keywords(query) if isinstance(query, str) else list(query)
        if not keywords or all(not kw.strip() for kw in keywords):
            raise ValueError(
                "empty keyword query: provide at least one non-whitespace keyword"
            )
        if k is None:
            k = snapshot.k
        if dmax is None:
            dmax = snapshot.dmax
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if dmax < 0:
            raise ValueError(f"dmax must be >= 0, got {dmax}")

        # Result memo: only uncustomized lookups (matches is None) are
        # cacheable, and the pinned version counters keep keys from ever
        # matching across data updates.
        cache = self._search_cache
        cache_key = None
        if cache is not None and matches is None:
            cache_key = (
                tuple(keywords),
                k,
                dmax,
                max_cursors,
                snapshot.summary_version,
                snapshot.index_version,
            )
            cached = cache.hit(cache_key)
            if cached is not None:
                return cached.copy()

        timings: Dict[str, float] = {}
        total_started = time.perf_counter()

        # Task 1: keyword-to-element mapping.
        step = time.perf_counter()
        if matches is None:
            matches = _match_stage(snapshot, keywords)
        elif len(matches) != len(keywords):
            raise ValueError("matches must align one list per keyword")
        timings["keyword_mapping"] = time.perf_counter() - step

        ignored = [kw for kw, m in zip(keywords, matches) if not m]
        if ignored and snapshot.strict_keywords:
            raise KeyError(f"keywords with no matching element: {ignored}")
        effective = [m for m in matches if m]

        if not effective:
            timings["total"] = time.perf_counter() - total_started
            result = SearchResult(keywords, [], matches, ignored, None, timings)
            return self._cache_result(cache_key, result)

        # Task 2: augmentation of the graph index.
        step = time.perf_counter()
        augmented, costs = _augment_stage(snapshot, effective)
        timings["augmentation"] = time.perf_counter() - step

        # Tasks 3+4: exploration and top-k.
        step = time.perf_counter()
        exploration = _explore_stage(snapshot, augmented, costs, k, dmax, max_cursors)
        timings["exploration"] = time.perf_counter() - step

        # Task 5: query mapping.
        step = time.perf_counter()
        candidates = _map_stage(snapshot, exploration.subgraphs, augmented.graph)
        timings["query_mapping"] = time.perf_counter() - step

        timings["total"] = time.perf_counter() - total_started
        result = SearchResult(keywords, candidates, matches, ignored, exploration, timings)
        return self._cache_result(cache_key, result)

    def prefuse_bounds_on_snapshot(self, snapshot: EngineSnapshot, queries) -> int:
        """Shared-frontier precompute for a batch of guided queries.

        Runs the match + augmentation stages for every query on the
        pinned snapshot and computes all missing guided bound tables in
        one fused relaxation-kernel pass, storing them in the substrate
        bounds cache under exactly the keys the per-query explorations
        will look up.  The searches that follow are therefore unchanged —
        they just hit the cache — so a shared-frontier batch stays
        byte-identical to sequential execution.  No-op (returns 0) for
        unguided snapshots or queries that cannot share the cache; a
        malformed query is skipped here and left to fail in its own
        search with its normal error.
        """
        if not snapshot.guided:
            return 0
        requests = []
        for query in queries:
            try:
                keywords = (
                    split_keywords(query) if isinstance(query, str) else list(query)
                )
                if not keywords or all(not kw.strip() for kw in keywords):
                    continue
                matches = _match_stage(snapshot, keywords)
                effective = [m for m in matches if m]
                if not effective or (
                    snapshot.strict_keywords and len(effective) != len(matches)
                ):
                    continue
                requests.append(_augment_stage(snapshot, effective))
            except Exception:
                continue
        if not requests:
            return 0
        return prefuse_guided_bounds(requests)

    def _cache_result(self, cache_key, result: SearchResult) -> SearchResult:
        if cache_key is not None:
            # The cache keeps the pristine instance; every caller —
            # including this first one — gets a container-fresh copy, so
            # in-place mutations of a returned result never leak back.
            self._search_cache.put(cache_key, result)
            return result.copy()
        return result

    # ------------------------------------------------------------------
    # Filter extension (the paper's Section IX future work)
    # ------------------------------------------------------------------

    def search_with_filters(
        self,
        query: Union[str, Sequence[str]],
        k: Optional[int] = None,
        dmax: Optional[int] = None,
        max_cursors: Optional[int] = None,
    ) -> List[FilteredQuery]:
        """Keyword search where comparison keywords become FILTER operators.

        Keywords like ``"before 2005"``, ``"since 2000"`` or ``"2000-2005"``
        are recognized as operators (``repro.query.filters``), the remaining
        keywords are interpreted as usual, and each computed query gets the
        filters bound to the matching attribute's variable — generalizing a
        pinned constant to a constrained variable where needed.

        ``k``, ``dmax``, and ``max_cursors`` carry the same meaning as in
        :meth:`search` and are forwarded to the underlying exploration.

        Returns the ranked filtered queries (candidates where a filter
        could not be bound to any attribute are dropped).
        """
        keywords = split_keywords(query) if isinstance(query, str) else list(query)
        # Merge a bare comparison word with its operand ("before", "2005" →
        # "before 2005") so whitespace splitting doesn't hide the operator.
        merged: List[str] = []
        skip = False
        for i, keyword in enumerate(keywords):
            if skip:
                skip = False
                continue
            if keyword.lower() in _COMPARISON_WORDS and i + 1 < len(keywords):
                merged.append(f"{keyword} {keywords[i + 1]}")
                skip = True
            else:
                merged.append(keyword)

        filter_keywords: List[FilterKeyword] = []
        plain: List[str] = []
        for keyword in merged:
            recognized = parse_filter_keyword(keyword)
            if recognized is not None:
                filter_keywords.append(recognized)
            else:
                plain.append(keyword)
        if not plain:
            raise ValueError("a filtered search needs at least one plain keyword")

        # Each filter operand participates in the exploration as the
        # A-edge(s) its values occur under (an AttributeMatch), so the
        # computed subgraphs contain e.g. a `year(?x, ?value)` edge the
        # filter can then constrain.
        plain_matches = self.keyword_index.lookup_all(plain)
        filter_attr_labels: List[frozenset] = []
        filter_matches: List[List[KeywordMatch]] = []
        for fk in filter_keywords:
            labels = self._operand_attributes(fk)
            filter_attr_labels.append(labels)
            filter_matches.append(
                [
                    AttributeMatch(
                        label, self.keyword_index.attribute_classes(label), 1.0
                    )
                    for label in sorted(labels, key=lambda u: u.value)
                ]
            )

        keywords = plain + [fk.source for fk in filter_keywords]
        result = self.search(
            keywords,
            k=k,
            dmax=dmax,
            max_cursors=max_cursors,
            matches=plain_matches + filter_matches,
        )
        out: List[FilteredQuery] = []
        for candidate in result.candidates:
            bound = self._bind_filters(
                candidate.query, filter_keywords, filter_attr_labels
            )
            if bound is not None:
                out.append(bound)
        return out

    def _operand_attributes(self, fk: FilterKeyword) -> frozenset:
        """The A-edge labels a filter operand plausibly constrains.

        Primary route: the operand's value matches reveal the attributes it
        occurs under (``2005`` → ``year``).  Fallback for out-of-data
        operands (``before 2050``): every attribute whose stored values are
        of the same kind (numeric vs. text).
        """
        labels = {
            occurrence[0]
            for match in self.keyword_index.lookup(fk.value.lexical)
            if isinstance(match, ValueMatch)
            for occurrence in match.occurrences
        }
        if labels:
            return frozenset(labels)
        operand_numeric = _looks_numeric(fk.value.lexical)
        fallback = set()
        for label in self.keyword_index.attribute_labels():
            sample = next(iter(self.graph.attribute_triples(label)), None)
            if sample is not None and _looks_numeric(sample.object.lexical) == operand_numeric:
                fallback.add(label)
        return frozenset(fallback)

    def _bind_filters(
        self,
        query: ConjunctiveQuery,
        filter_keywords: List[FilterKeyword],
        filter_attr_labels: List[frozenset],
    ) -> Optional[FilteredQuery]:
        """Attach every filter to the matching attribute variable, creating
        one (by generalizing a pinned constant) when necessary."""
        atoms = list(query.atoms)
        filters: List[Filter] = []
        fresh = 0

        for fk, attr_labels in zip(filter_keywords, filter_attr_labels):
            target_index = None
            # Prefer an atom with a free (artificial-value) variable.
            for i, atom in enumerate(atoms):
                if atom.predicate in attr_labels and isinstance(atom.arg2, Variable):
                    target_index = i
                    break
            if target_index is None:
                for i, atom in enumerate(atoms):
                    if atom.predicate in attr_labels:
                        target_index = i
                        break
            if target_index is None:
                return None

            atom = atoms[target_index]
            if isinstance(atom.arg2, Variable):
                filters.append(fk.bind(atom.arg2))
            else:
                fresh += 1
                variable = Variable(f"f{fresh}")
                atoms[target_index] = Atom(atom.predicate, atom.arg1, variable)
                filters.append(fk.bind(variable))

        return FilteredQuery(ConjunctiveQuery(atoms), filters)

    def execute_filtered(
        self, filtered: FilteredQuery, limit: Optional[int] = None
    ):
        """Run a filtered query on the underlying store."""
        return filtered.evaluate(self.evaluator, limit=limit)

    # ------------------------------------------------------------------
    # Query processing (the database side of the paradigm)
    # ------------------------------------------------------------------

    def execute(
        self,
        candidate: Union[QueryCandidate, ConjunctiveQuery],
        limit: Optional[int] = None,
    ) -> List[Answer]:
        """Run one computed query on the underlying store."""
        query = candidate.query if isinstance(candidate, QueryCandidate) else candidate
        return self.evaluator.evaluate(query, limit=limit)

    def search_and_execute(
        self,
        query: Union[str, Sequence[str]],
        k: Optional[int] = None,
        min_answers: int = 10,
    ) -> Dict[str, object]:
        """The Fig. 5 measurement protocol: compute the top-k queries, then
        process them best-first until at least ``min_answers`` answers are
        collected.  Returns answers, the queries used, and wall-clock
        timings for both phases.
        """
        started = time.perf_counter()
        result = self.search(query, k=k)
        computation_seconds = time.perf_counter() - started

        answers: List[Answer] = []
        used: List[QueryCandidate] = []
        started = time.perf_counter()
        for candidate in result.candidates:
            remaining = min_answers - len(answers)
            if remaining <= 0:
                break
            batch = self.execute(candidate, limit=remaining)
            if batch:
                used.append(candidate)
                answers.extend(batch)
        processing_seconds = time.perf_counter() - started

        return {
            "result": result,
            "answers": answers,
            "queries_used": used,
            "computation_seconds": computation_seconds,
            "processing_seconds": processing_seconds,
            "total_seconds": computation_seconds + processing_seconds,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_stats(self) -> Dict[str, Dict[str, float]]:
        """Index sizes and build times (the Fig. 6b quantities)."""
        return {
            "keyword_index": self.keyword_index.stats(),
            "graph_index": self.summary.stats(),
            "data_graph": {k: float(v) for k, v in self.graph.stats().items()},
        }

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss statistics of the query-time memo layers (the numbers
        the service's ``/stats`` endpoint reports as cache hit rates)."""
        stats = {"keyword_lookups": self.keyword_index.cache_stats()}
        postings = self.keyword_index.postings_cache_stats()
        if postings is not None:
            stats["postings"] = postings
        if self._search_cache is not None:
            stats["search_results"] = self._search_cache.cache_stats()
        return stats

    def __repr__(self):
        return (
            f"KeywordSearchEngine(triples={len(self.graph)}, "
            f"cost_model={self.cost_model.name!r}, k={self.k})"
        )
