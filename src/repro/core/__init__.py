"""The paper's primary contribution: top-k exploration of query candidates.

* :mod:`~repro.core.cursor` — the cursor ``c(n, k, p, d, w)`` of Algorithm 1
* :mod:`~repro.core.exploration` — Algorithm 1, cost-ordered multi-origin
  exploration of the augmented summary graph
* :mod:`~repro.core.topk` — Algorithm 2, TA-style top-k with the best-score
  guarantee
* :mod:`~repro.core.subgraph` — matching subgraphs (Definition 6) merged
  from cursor paths
* :mod:`~repro.core.query_mapping` — subgraph → conjunctive query (Sec VI-D)
* :mod:`~repro.core.engine` — the end-to-end keyword-search facade
"""

from repro.core.cursor import Cursor
from repro.core.subgraph import MatchingSubgraph
from repro.core.exploration import ExplorationResult, explore_top_k
from repro.core.query_mapping import map_to_query
from repro.core.engine import KeywordSearchEngine, QueryCandidate, SearchResult

__all__ = [
    "Cursor",
    "MatchingSubgraph",
    "ExplorationResult",
    "explore_top_k",
    "map_to_query",
    "KeywordSearchEngine",
    "QueryCandidate",
    "SearchResult",
]
