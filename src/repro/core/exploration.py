"""Algorithm 1: cost-ordered exploration for minimal matching subgraphs.

Cursors start at every keyword element and expand outward over the augmented
summary graph, always cheapest-first across all keyword queues (implemented
as one global heap — taking the global minimum is exactly "the top element
of each Q_i").  Both vertices and edges are visited; expansion skips the
parent element and any element already on the path (distinct, acyclic
paths).  Every registration triggers the Algorithm 2 top-k check, and the
invariant behind the guarantee — cursors pop in non-decreasing cost order
(Theorem 1) — holds because element costs are strictly positive.

Implementation notes (performance, same semantics):

* element keys are interned to integers for the duration of one query —
  heap entries, cycle checks, and canonical subgraph keys then hash small
  ints instead of nested URI tuples;
* pushes are pruned when the target element already holds k registered
  paths for the cursor's keyword (pop order is cost-monotone, so such a
  cursor could never register);
* new candidate combinations are enumerated best-first and cut off at the
  candidate list's current k-th cost — combinations at the same element
  that are worse than k existing candidates can never enter the top-k.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.cursor import Cursor
from repro.core.subgraph import MatchingSubgraph
from repro.core.topk import CandidateList
from repro.summary.augmentation import AugmentedSummaryGraph

#: Default bound on path length, counted in *elements* (a vertex→vertex hop
#: crosses two elements: the edge and the far vertex).
DEFAULT_DMAX = 10


class ExplorationResult:
    """Top-k subgraphs plus diagnostics of one exploration run."""

    __slots__ = (
        "subgraphs",
        "cursors_created",
        "cursors_popped",
        "cursors_pruned",
        "candidates_offered",
        "terminated_by",
        "max_queue_size",
    )

    def __init__(
        self,
        subgraphs: List[MatchingSubgraph],
        cursors_created: int,
        cursors_popped: int,
        cursors_pruned: int,
        candidates_offered: int,
        terminated_by: str,
        max_queue_size: int,
    ):
        self.subgraphs = subgraphs
        self.cursors_created = cursors_created
        self.cursors_popped = cursors_popped
        self.cursors_pruned = cursors_pruned
        self.candidates_offered = candidates_offered
        self.terminated_by = terminated_by
        self.max_queue_size = max_queue_size

    def __repr__(self):
        return (
            f"ExplorationResult(subgraphs={len(self.subgraphs)}, "
            f"popped={self.cursors_popped}, terminated_by={self.terminated_by!r})"
        )


class _InternedGraph:
    """Integer-id view of an augmented summary graph for one exploration."""

    __slots__ = ("keys", "ids", "neighbors", "costs")

    def __init__(self, augmented: AugmentedSummaryGraph, element_costs: Dict[Hashable, float]):
        graph = augmented.graph
        # Canonical interning order (sorted by key repr) makes the whole
        # exploration — including tie-breaking among equal-cost cursors and
        # candidates — a function of the abstract graph, independent of the
        # base graph's internal dict/list ordering.  Incrementally
        # maintained and freshly rebuilt indexes therefore rank
        # identically.  Summary graphs and overlays serve the order from a
        # version-keyed cache; other graph objects are sorted here.
        canonical = getattr(graph, "canonical_element_keys", None)
        if canonical is not None:
            self.keys: List[Hashable] = list(canonical())
        else:
            self.keys = sorted(
                [v.key for v in graph.vertices] + [e.key for e in graph.edges],
                key=repr,
            )
        self.ids: Dict[Hashable, int] = {key: i for i, key in enumerate(self.keys)}

        n = len(self.keys)
        self.neighbors: List[List[int]] = [[] for _ in range(n)]
        self.costs: List[float] = [0.0] * n
        for key, idx in self.ids.items():
            cost = element_costs.get(key)
            if cost is None:
                raise KeyError(f"no cost assigned to element {key!r}")
            if cost <= 0:
                raise ValueError(f"element cost must be positive: {key!r} -> {cost}")
            self.costs[idx] = cost
            self.neighbors[idx] = sorted(self.ids[nb] for nb in graph.neighbors(key))


class _ElementState:
    """The per-element bookkeeping ``n(w, (C_1, ..., C_m))`` of Algorithm 1.

    ``paths[i]`` holds the cursors that reached this element from keyword i,
    in ascending cost order (pop order guarantees this), capped at k — the
    paper's space bound of k cheapest paths per (element, keyword).
    """

    __slots__ = ("paths",)

    def __init__(self, keyword_count: int):
        self.paths: List[List[Cursor]] = [[] for _ in range(keyword_count)]

    def register(self, cursor: Cursor, cap: int) -> bool:
        """Record a path; False if the per-keyword cap is already reached."""
        bucket = self.paths[cursor.keyword]
        if len(bucket) >= cap:
            return False
        bucket.append(cursor)
        return True

    def is_connecting(self) -> bool:
        """All C_i non-empty: at least one path per keyword meets here."""
        return all(self.paths)


def _best_combinations(
    lists: Sequence[Sequence[Cursor]],
) -> Iterator[Tuple[float, Tuple[Cursor, ...]]]:
    """Cursor tuples across per-keyword lists, cheapest-sum first.

    Each list is sorted ascending by cost, so this is the classic
    k-smallest-sums frontier search from index vector (0, …, 0); the caller
    decides when to stop consuming.
    """
    if any(not lst for lst in lists):
        return
    m = len(lists)
    start = (0,) * m
    start_cost = sum(lst[0].cost for lst in lists)
    heap: List[Tuple[float, Tuple[int, ...]]] = [(start_cost, start)]
    seen = {start}
    while heap:
        cost, indices = heapq.heappop(heap)
        yield cost, tuple(lists[i][indices[i]] for i in range(m))
        for i in range(m):
            if indices[i] + 1 < len(lists[i]):
                successor = indices[:i] + (indices[i] + 1,) + indices[i + 1 :]
                if successor not in seen:
                    seen.add(successor)
                    step = lists[i][successor[i]].cost - lists[i][indices[i]].cost
                    heapq.heappush(heap, (cost + step, successor))


def _dijkstra(
    seeds: Dict[int, float], neighbors: List[List[int]], costs: List[float]
) -> List[float]:
    """Cheapest path cost to every element from weighted seed elements.

    Seeds carry their initial path cost; relaxing an edge adds the cost of
    the element being entered — matching the exploration's path-cost
    definition (origin cost included).
    """
    n = len(costs)
    dist = [float("inf")] * n
    heap: List[Tuple[float, int]] = []
    for node, cost in seeds.items():
        if cost < dist[node]:
            dist[node] = cost
            heap.append((cost, node))
    heapq.heapify(heap)
    while heap:
        d, node = heapq.heappop(heap)
        if d != dist[node]:
            continue
        for neighbor in neighbors[node]:
            nd = d + costs[neighbor]
            if nd < dist[neighbor]:
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return dist


def _completion_bounds(
    keyword_sets: List[List[int]],
    seed_costs: List[Dict[int, float]],
    neighbors: List[List[int]],
    costs: List[float],
) -> List[List[float]]:
    """Per-keyword admissible completion bounds L_i(n) (guided exploration).

    ``dist_j(n)`` = cheapest path cost from keyword j to element n.  The
    raw table is a Dijkstra seeded with ``S_i(n*) = Σ_{j≠i} dist_j(n*)`` at
    every element; since relaxation *enters* nodes (adding the entered
    node's cost) while a cursor's own cost already covers its element, the
    admissible per-cursor bound is ``L_i(n) − cost(n)``: a subgraph
    completing a keyword-i path sitting at n with cost w costs at least
    ``w + L_i(n) − cost(n)``.  Bounds also ignore the simple-path
    constraint, so they only ever *under*estimate: pruning on them
    preserves the exact top-k.
    """
    m = len(keyword_sets)
    per_keyword_dist = [
        _dijkstra(seed_costs[i], neighbors, costs) for i in range(m)
    ]
    bounds: List[List[float]] = []
    for i in range(m):
        seeds: Dict[int, float] = {}
        for node in range(len(costs)):
            total = 0.0
            for j in range(m):
                if j == i:
                    continue
                dj = per_keyword_dist[j][node]
                if dj == float("inf"):
                    total = float("inf")
                    break
                total += dj
            if total != float("inf"):
                seeds[node] = total
        bounds.append(_dijkstra(seeds, neighbors, costs) if seeds else [float("inf")] * len(costs))
    return bounds


def explore_top_k(
    augmented: AugmentedSummaryGraph,
    element_costs: Dict[Hashable, float],
    k: int = 10,
    dmax: int = DEFAULT_DMAX,
    max_cursors: Optional[int] = None,
    guided: bool = False,
) -> ExplorationResult:
    """Run Algorithms 1+2 and return the k cheapest matching subgraphs.

    Parameters
    ----------
    augmented:
        The augmented summary graph with per-keyword element sets K_i.
    element_costs:
        Positive cost per element key (from a :class:`~repro.scoring.cost.CostModel`).
    k:
        Number of subgraphs to compute.
    dmax:
        Maximum path length in elements; cursors at distance ``dmax`` are
        registered but not expanded.
    max_cursors:
        Optional safety bound on total cursor creations; exceeding it stops
        exploration and returns the best candidates found so far
        (``terminated_by == "budget"``).
    guided:
        Enable distance-information pruning (the Section VI-A/IX "indexing
        connectivity" speed-up): per-keyword cheapest-completion bounds are
        precomputed, and cursors that provably cannot contribute a
        candidate better than the current k-th are discarded.  The result
        is identical; only the work changes.
    """
    keyword_sets = [ks for ks in augmented.keyword_elements if ks]
    m = len(keyword_sets)
    candidates = CandidateList(k)

    if m == 0:
        return ExplorationResult([], 0, 0, 0, 0, "no-keywords", 0)

    interned = _InternedGraph(augmented, element_costs)
    neighbors = interned.neighbors
    costs = interned.costs

    heap: List[Tuple[float, int, Cursor]] = []
    created = 0
    popped = 0
    pruned = 0
    max_queue = 0
    terminated_by = "exhausted"

    def _push(cursor: Cursor) -> None:
        nonlocal created
        created += 1
        heapq.heappush(heap, (cursor.cost, created, cursor))

    # Deterministic seeding: K_i are sets, so fix an order (by key repr) to
    # make tie-breaking — and therefore ranking among equal-cost subgraphs —
    # reproducible across processes.
    seed_costs: List[Dict[int, float]] = [dict() for _ in range(m)]
    for i, elements in enumerate(keyword_sets):
        for key in sorted(elements, key=repr):
            element = interned.ids.get(key)
            if element is None:
                raise KeyError(f"keyword element {key!r} not in augmented graph")
            seed_costs[i][element] = costs[element]
            _push(Cursor.origin_cursor(element, i, costs[element]))

    bounds: Optional[List[List[float]]] = None
    if guided:
        bounds = _completion_bounds(
            [list(sc) for sc in seed_costs], seed_costs, neighbors, costs
        )

    states: Dict[int, _ElementState] = {}

    while heap:
        if len(heap) > max_queue:
            max_queue = len(heap)
        _, _, cursor = heapq.heappop(heap)
        popped += 1
        element = cursor.element

        if cursor.distance > dmax:
            continue

        # Guided pruning: if even the cheapest completion of this path
        # cannot beat the k-th candidate, the cursor is dead weight.
        # (The raw bound enters `element` once more; the cursor's cost
        # already covers it, hence the subtraction — see _completion_bounds.)
        if bounds is not None:
            completion = bounds[cursor.keyword][element] - costs[element]
            if cursor.cost + completion >= candidates.kth_cost():
                pruned += 1
                continue

        state = states.get(element)
        if state is None:
            state = _ElementState(m)
            states[element] = state
        if not state.register(cursor, cap=k):
            pruned += 1
            continue

        # Expand to all neighbors except the parent, avoiding cycles
        # (Alg 1 lines 13-22).  Registration happened, so paths of length
        # dmax still contribute to connecting elements.
        if cursor.distance < dmax:
            parent_element = cursor.parent_element
            kw = cursor.keyword
            for neighbor in neighbors[element]:
                if neighbor == parent_element:
                    continue
                if cursor.visits(neighbor):
                    continue
                neighbor_state = states.get(neighbor)
                if neighbor_state is not None and len(neighbor_state.paths[kw]) >= k:
                    pruned += 1
                    continue
                _push(cursor.expand(neighbor, costs[neighbor]))

        # Algorithm 2: build the new candidate subgraphs this registration
        # enables — combinations that use this cursor for its keyword and
        # any registered path for every other keyword, enumerated
        # best-first.  Enumeration stops when (a) the combination cost
        # reaches the k-th candidate cost (ascending order: nothing later
        # can enter the top-k), or (b) k *distinct element sets* have been
        # produced here — any further combination is dominated by k
        # already-offered candidates at this element that cost no more.
        if state.is_connecting():
            other_lists = [
                state.paths[i] if i != cursor.keyword else [cursor] for i in range(m)
            ]
            distinct_sets = set()
            for combo_cost, combo in _best_combinations(other_lists):
                if len(candidates) >= k and combo_cost >= candidates.kth_cost():
                    break
                merged = MatchingSubgraph.from_cursors(element, combo)
                candidates.offer(merged)
                distinct_sets.add(merged.canonical_key)
                if len(distinct_sets) >= k:
                    break

        # Termination check: cheapest outstanding cursor bounds every
        # undiscovered subgraph from below.
        lowest_remaining = heap[0][0] if heap else float("inf")
        if candidates.should_terminate(lowest_remaining):
            terminated_by = "threshold"
            break

        if max_cursors is not None and created >= max_cursors:
            terminated_by = "budget"
            break

    decode = interned.keys.__getitem__
    subgraphs = [sg.translated(decode) for sg in candidates.best()]
    return ExplorationResult(
        subgraphs=subgraphs,
        cursors_created=created,
        cursors_popped=popped,
        cursors_pruned=pruned,
        candidates_offered=candidates.offered,
        terminated_by=terminated_by,
        max_queue_size=max_queue,
    )
