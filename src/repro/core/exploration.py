"""Algorithm 1: cost-ordered exploration for minimal matching subgraphs.

Cursors start at every keyword element and expand outward over the augmented
summary graph, always cheapest-first across all keyword queues (implemented
as one global heap — taking the global minimum is exactly "the top element
of each Q_i").  Both vertices and edges are visited; expansion skips any
element already on the path (distinct, acyclic paths).  Every registration
triggers the Algorithm 2 top-k check, and the invariant behind the
guarantee — cursors pop in non-decreasing cost order (Theorem 1) — holds
because element costs are strictly positive.

Implementation notes (performance, same semantics):

* the query-invariant part of element interning lives in a **version-keyed
  CSR substrate** cached on the base summary graph
  (:mod:`repro.summary.substrate`): canonical key ↔ id tables and flat
  ``array('l')`` adjacency rows are built once per graph version; per query
  only the O(#matches) overlay elements get appended ids and adjacency
  rows, so exploration setup is proportional to the keyword matches, not
  the summary;
* result identity is anchored to the **canonical merged id space** — the
  ids a full per-query interning would have assigned.  The substrate path
  explores on its own append-only ids but emits subgraphs in merged ids
  (a monotone O(log #matches) translation), so tie-breaking among
  equal-cost candidates, and therefore the returned ranking, is
  byte-identical to the reference interning (``use_substrate=False``);
* the cycle check walks the parent chain (≤ dmax pointer hops, zero
  allocation) — per-cursor path sets/bitmasks were measured and rejected:
  keeping hundreds of thousands of GC-tracked containers alive makes
  garbage collection dominate on k≥20 workloads (see the hot loop);
* per-element registration state is a flat list of per-keyword buckets,
  updated inline (no wrapper objects or method calls on the hot path);
* pushes are pruned when the target element already holds k registered
  paths for the cursor's keyword (pop order is cost-monotone, so such a
  cursor could never register);
* new candidate combinations are enumerated best-first and cut off at the
  candidate list's current k-th cost — both when consuming them and inside
  the enumeration heap, so long per-keyword lists cannot allocate
  frontier state quadratically;
* guided mode's per-keyword Dijkstra tables run on the CSR arrays and are
  cached on the substrate per (cost table, keyword-element sets, overlay
  signature), so repeated queries skip them entirely;
* when numpy is importable (the ``repro[fast]`` extra), exploration takes
  the **vectorized kernel path** (:mod:`repro.core.kernels`): guided bound
  tables become batched relaxation sweeps over zero-copy ndarray views of
  the CSR arrays, the pop loop runs on structure-of-arrays cursors, and
  assembled per-query views are cached on the substrate per (overlay
  signature, cost token).  Output — subgraphs *and* diagnostics — is
  byte-identical by contract; ``use_vectorized=False`` (or a missing
  numpy) keeps this scalar reference path, which the property tests use
  as the oracle exactly like ``use_substrate=False``.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core import kernels
from repro.core.cursor import Cursor
from repro.core.subgraph import MatchingSubgraph
from repro.core.topk import CandidateList
from repro.scoring.cost import split_cost_mapping
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.substrate import checked_cost

#: Default bound on path length, counted in *elements* (a vertex→vertex hop
#: crosses two elements: the edge and the far vertex).
DEFAULT_DMAX = 10

_INF = float("inf")


class ExplorationResult:
    """Top-k subgraphs plus diagnostics of one exploration run."""

    __slots__ = (
        "subgraphs",
        "cursors_created",
        "cursors_popped",
        "cursors_pruned",
        "candidates_offered",
        "terminated_by",
        "max_queue_size",
    )

    def __init__(
        self,
        subgraphs: List[MatchingSubgraph],
        cursors_created: int,
        cursors_popped: int,
        cursors_pruned: int,
        candidates_offered: int,
        terminated_by: str,
        max_queue_size: int,
    ):
        self.subgraphs = subgraphs
        self.cursors_created = cursors_created
        self.cursors_popped = cursors_popped
        self.cursors_pruned = cursors_pruned
        self.candidates_offered = candidates_offered
        self.terminated_by = terminated_by
        self.max_queue_size = max_queue_size

    def __repr__(self):
        return (
            f"ExplorationResult(subgraphs={len(self.subgraphs)}, "
            f"popped={self.cursors_popped}, terminated_by={self.terminated_by!r})"
        )


class _InternedGraph:
    """Reference integer-id view, interned from scratch per exploration.

    Kept as the fallback for graph objects without a substrate (and as the
    byte-identity oracle the substrate path is property-tested against).
    """

    __slots__ = ("keys", "ids", "neighbors", "costs")

    def __init__(self, augmented: AugmentedSummaryGraph, element_costs):
        graph = augmented.graph
        # Canonical interning order (sorted by key repr) makes the whole
        # exploration — including tie-breaking among equal-cost cursors and
        # candidates — a function of the abstract graph, independent of the
        # base graph's internal dict/list ordering.  Incrementally
        # maintained and freshly rebuilt indexes therefore rank
        # identically.  Summary graphs and overlays serve the order from a
        # version-keyed cache; other graph objects are sorted here.
        canonical = getattr(graph, "canonical_element_keys", None)
        if canonical is not None:
            self.keys: List[Hashable] = list(canonical())
        else:
            self.keys = sorted(
                [v.key for v in graph.vertices] + [e.key for e in graph.edges],
                key=repr,
            )
        self.ids: Dict[Hashable, int] = {key: i for i, key in enumerate(self.keys)}

        n = len(self.keys)
        self.neighbors: List[List[int]] = [[] for _ in range(n)]
        self.costs: List[float] = [0.0] * n
        for key, idx in self.ids.items():
            self.costs[idx] = checked_cost(key, element_costs.get(key))
            self.neighbors[idx] = sorted(self.ids[nb] for nb in graph.neighbors(key))


class _SubstrateView:
    """Per-query id space: a cached substrate plus appended overlay extras.

    Base elements keep their substrate ids ``0..n-1``; the overlay's
    O(#matches) elements get ids ``n..n+m-1`` in canonical (repr-sorted)
    order.  ``to_merged`` translates a substrate id to the rank the element
    holds in the *merged* canonical order over base + overlay — the id a
    full per-query interning would have assigned — which is what emitted
    subgraphs are expressed in (``None`` when there are no extras: the two
    id spaces coincide).
    """

    __slots__ = (
        "substrate",
        "total",
        "extra_keys",
        "rows",
        "costs",
        "cost_token",
        "cost_table",
        "id_of",
        "to_merged",
        "decode",
        # Lazy per-view caches for the vectorized kernel path: the costs as
        # a plain list (scalar indexing of array('d') is slower in the SoA
        # loop), the overlay patch-edge ndarrays (False = not built), and
        # the shared adjacency-row memo (base rows boxed into tuples once,
        # reused across every exploration on this view).
        "costs_list",
        "np_patches",
        "row_memo",
        # (bounds, nets) pair: per-keyword `bounds[kw][e] - costs[e]`
        # tables precomputed for the pop-time prune check, keyed on the
        # identity of the bounds object they were folded from.
        "net_bounds",
    )


def _build_substrate_view(
    augmented: AugmentedSummaryGraph, element_costs
) -> Optional[_SubstrateView]:
    """Assemble the per-query view, or None if the graph has no substrate."""
    graph = augmented.graph
    base = getattr(graph, "base", None)
    if base is None:
        owner = graph
        added_keys: Tuple[Hashable, ...] = ()
        added_incident = {}
    else:
        owner = base
        getter = getattr(graph, "added_element_keys", None)
        if getter is None:
            return None
        added_keys = getter()
        added_incident = graph.added_incident_map()
    factory = getattr(owner, "exploration_substrate", None)
    if factory is None:
        return None
    substrate = factory()

    # Cost token first: it is both the cost-slot recipe and half of the
    # view-cache key.  A view's content is fully determined by (overlay
    # element keys, overlay incident map, cost token) over one substrate —
    # edge keys encode their endpoints, so the extras' adjacency follows
    # from the keys — which makes cached views safe to share across
    # repeated queries (they are never mutated after assembly).
    overrides, base_table = split_cost_mapping(element_costs)
    base_array = None
    if base_table is not None:
        try:
            base_array = substrate.cost_array(base_table)
        except (KeyError, ValueError):
            # Two-layer mapping whose base map alone is not a valid cost
            # table (a missing element, or a non-positive entry masked by a
            # per-query override) — read every element through the full
            # mapping instead, which re-validates with reference semantics.
            base_table = None
    view_key = None
    if base_table is not None:
        cost_token = (id(base_table), frozenset(overrides.items()))
        view_key = (
            added_keys,
            tuple((key, tuple(edges)) for key, edges in added_incident.items()),
            cost_token,
        )
        cached = substrate.get_view(view_key, base_table)
        if cached is not None:
            return cached

    n = substrate.n
    ids = substrate.ids
    m = len(added_keys)

    view = _SubstrateView()
    view.substrate = substrate
    view.total = n + m
    view.costs_list = None
    view.np_patches = False
    view.row_memo = None
    view.net_bounds = None

    if m:
        # Stable repr-only sort: elements with equal reprs keep overlay
        # insertion order, exactly like the canonical heap-merge.
        extra_pairs = sorted(((repr(key), key) for key in added_keys), key=itemgetter(0))
        extra_keys = tuple(key for _, key in extra_pairs)
        base_reprs = substrate.reprs
        ins = array("l", (bisect_right(base_reprs, text) for text, _ in extra_pairs))
        extra_ranks = array("l", (ins[j] + j for j in range(m)))
        extra_ids = {key: n + j for j, key in enumerate(extra_keys)}

        def to_merged(sid: int, _ins=ins, _n=n, _ranks=extra_ranks) -> int:
            return sid + bisect_right(_ins, sid) if sid < _n else _ranks[sid - _n]

        def id_of(key, _extra=extra_ids.get, _base=ids.get) -> Optional[int]:
            sid = _extra(key)
            return sid if sid is not None else _base(key)

        def decode(
            mid: int, _ranks=extra_ranks, _keys=substrate.keys, _extra=extra_keys, _m=m
        ) -> Hashable:
            j = bisect_left(_ranks, mid)
            if j < _m and _ranks[j] == mid:
                return _extra[j]
            return _keys[mid - j]

        # Adjacency rows that differ from the substrate: every overlay
        # element, plus base vertices that gained overlay edges.  Rows are
        # ordered by merged rank — the order a full interning would expand
        # neighbors in.
        rows: Dict[int, Tuple[int, ...]] = {}
        neighbors = graph.neighbors
        for j, key in enumerate(extra_keys):
            row = []
            for nb in neighbors(key):
                sid = extra_ids.get(nb)
                row.append(sid if sid is not None else ids[nb])
            row.sort(key=to_merged)
            rows[n + j] = tuple(row)
        offsets, targets = substrate.offsets, substrate.targets
        for vkey, added in added_incident.items():
            vsid = ids.get(vkey)
            if vsid is None or not added:
                continue  # overlay vertex (handled above) or no additions
            merged_row = list(targets[offsets[vsid] : offsets[vsid + 1]])
            merged_row.extend(extra_ids[edge] for edge in added)
            merged_row.sort(key=to_merged)
            rows[vsid] = tuple(merged_row)

        view.extra_keys = extra_keys
        view.rows = rows
        view.id_of = id_of
        view.to_merged = to_merged
        view.decode = decode
    else:
        view.extra_keys = ()
        view.rows = {}
        view.id_of = ids.get
        view.to_merged = None
        view.decode = substrate.keys.__getitem__

    # Cost slots: cached base array + O(#matches) per-query entries when
    # the mapping is the cost models' (overrides, base) ChainMap; a fresh
    # fill otherwise.
    if base_table is not None:
        costs = array("d", base_array)
    else:
        costs = substrate.fresh_cost_array(element_costs)
    costs_get = element_costs.get
    for key in view.extra_keys:
        costs.append(checked_cost(key, costs_get(key)))
    if base_table is not None:
        ids_get = ids.get
        for key, value in overrides.items():
            sid = ids_get(key)
            if sid is not None:
                costs[sid] = checked_cost(key, value)
        view.cost_token = view_key[2]
    else:
        view.cost_token = None
    view.cost_table = base_table
    view.costs = costs
    if view_key is not None:
        substrate.store_view(view_key, base_table, view)
    return view


def _best_combinations(
    lists: Sequence[Sequence[Cursor]],
    cutoff: Optional[Callable[[], float]] = None,
) -> Iterator[Tuple[float, Tuple[Cursor, ...]]]:
    """Cursor tuples across per-keyword lists, cheapest-sum first.

    Each list is sorted ascending by cost, so this is the classic
    k-smallest-sums frontier search from index vector (0, …, 0); the caller
    decides when to stop consuming.  ``cutoff``, when given, returns the
    caller's current cut-off cost: successors at or above it are neither
    pushed nor remembered in ``seen`` — they could only ever be consumed
    past the caller's own stopping point (the cut-off never increases), so
    pruning them bounds the frontier and the ``seen`` set by the cut-off
    instead of letting them grow quadratically in the list lengths.
    """
    if any(not lst for lst in lists):
        return
    m = len(lists)
    start = (0,) * m
    start_cost = sum(lst[0].cost for lst in lists)
    heap: List[Tuple[float, Tuple[int, ...]]] = [(start_cost, start)]
    seen = {start}
    while heap:
        cost, indices = heapq.heappop(heap)
        yield cost, tuple(lists[i][indices[i]] for i in range(m))
        bound = cutoff() if cutoff is not None else None
        for i in range(m):
            nxt = indices[i] + 1
            if nxt < len(lists[i]):
                successor = indices[:i] + (nxt,) + indices[i + 1 :]
                if successor in seen:
                    continue
                next_cost = cost + lists[i][nxt].cost - lists[i][indices[i]].cost
                if bound is not None and next_cost >= bound:
                    continue
                seen.add(successor)
                heapq.heappush(heap, (next_cost, successor))


def _dijkstra_rows(
    seeds: Dict[int, float],
    row_of: Callable[[int], Sequence[int]],
    costs: Sequence[float],
    total: int,
) -> List[float]:
    """Cheapest path cost to every element from weighted seed elements.

    Seeds carry their initial path cost; relaxing an edge adds the cost of
    the element being entered — matching the exploration's path-cost
    definition (origin cost included).
    """
    dist = [_INF] * total
    heap: List[Tuple[float, int]] = []
    for node, cost in seeds.items():
        if cost < dist[node]:
            dist[node] = cost
            heap.append((cost, node))
    heapq.heapify(heap)
    while heap:
        d, node = heapq.heappop(heap)
        if d != dist[node]:
            continue
        for neighbor in row_of(node):
            nd = d + costs[neighbor]
            if nd < dist[neighbor]:
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return dist


def _dijkstra(
    seeds: Dict[int, float], neighbors: List[List[int]], costs: List[float]
) -> List[float]:
    """List-adjacency convenience wrapper around :func:`_dijkstra_rows`."""
    return _dijkstra_rows(seeds, neighbors.__getitem__, costs, len(costs))


def _completion_bounds(
    m: int,
    seed_costs: List[Dict[int, float]],
    row_of: Callable[[int], Sequence[int]],
    costs: Sequence[float],
    total: int,
) -> List[List[float]]:
    """Per-keyword admissible completion bounds L_i(n) (guided exploration).

    ``dist_j(n)`` = cheapest path cost from keyword j to element n.  The
    raw table is a Dijkstra seeded with ``S_i(n*) = Σ_{j≠i} dist_j(n*)`` at
    every element; since relaxation *enters* nodes (adding the entered
    node's cost) while a cursor's own cost already covers its element, the
    admissible per-cursor bound is ``L_i(n) − cost(n)``: a subgraph
    completing a keyword-i path sitting at n with cost w costs at least
    ``w + L_i(n) − cost(n)``.  Bounds also ignore the simple-path
    constraint, so they only ever *under*estimate: pruning on them
    preserves the exact top-k.
    """
    per_keyword_dist = [
        _dijkstra_rows(seed_costs[i], row_of, costs, total) for i in range(m)
    ]
    bounds: List[List[float]] = []
    for i in range(m):
        seeds: Dict[int, float] = {}
        for node in range(total):
            acc = 0.0
            for j in range(m):
                if j == i:
                    continue
                dj = per_keyword_dist[j][node]
                if dj == _INF:
                    acc = _INF
                    break
                acc += dj
            if acc != _INF:
                seeds[node] = acc
        bounds.append(
            _dijkstra_rows(seeds, row_of, costs, total) if seeds else [_INF] * total
        )
    return bounds


def _view_row_of(view: _SubstrateView):
    """The per-element adjacency accessor of a substrate view."""
    extra_rows = view.rows
    substrate = view.substrate
    offsets = substrate.offsets
    targets = substrate.targets

    def row_of(
        element: int, _get=extra_rows.get, _t=targets, _o=offsets
    ) -> Sequence[int]:
        row = _get(element)
        return row if row is not None else _t[_o[element] : _o[element + 1]]

    return row_of


def _bounds_for(
    m: int,
    seed_costs: List[Dict[int, float]],
    row_of,
    costs,
    total: int,
    view: Optional[_SubstrateView],
    force_kernel: bool,
) -> List[List[float]]:
    """Completion bounds via the relaxation kernel when it pays off, via
    the scalar Dijkstra otherwise (or when the kernel declines a
    pathological graph) — identical values either way."""
    if view is not None and (
        force_kernel
        or (kernels.kernels_enabled() and total >= kernels.MIN_BOUNDS_TOTAL)
    ):
        computed = kernels.completion_bounds_batch([(m, seed_costs, view)])[0]
        if computed is not None:
            return computed
    return _completion_bounds(m, seed_costs, row_of, costs, total)


def explore_top_k(
    augmented: AugmentedSummaryGraph,
    element_costs,
    k: int = 10,
    dmax: int = DEFAULT_DMAX,
    max_cursors: Optional[int] = None,
    guided: bool = False,
    use_substrate: Optional[bool] = None,
    use_vectorized: Optional[bool] = None,
) -> ExplorationResult:
    """Run Algorithms 1+2 and return the k cheapest matching subgraphs.

    Parameters
    ----------
    augmented:
        The augmented summary graph with per-keyword element sets K_i.
    element_costs:
        Positive cost per element key (from a :class:`~repro.scoring.cost.CostModel`).
    k:
        Number of subgraphs to compute.
    dmax:
        Maximum path length in elements; cursors at distance ``dmax`` are
        registered but not expanded.
    max_cursors:
        Optional safety bound on total cursor creations; exceeding it stops
        exploration and returns the best candidates found so far
        (``terminated_by == "budget"``).
    guided:
        Enable distance-information pruning (the Section VI-A/IX "indexing
        connectivity" speed-up): per-keyword cheapest-completion bounds are
        precomputed, and cursors that provably cannot contribute a
        candidate better than the current k-th are discarded.  The result
        is identical; only the work changes.
    use_substrate:
        ``None`` (default) explores on the base graph's version-keyed CSR
        substrate when available and falls back to per-query interning
        otherwise; ``False`` forces the reference interning (the
        byte-identity oracle used by tests and benchmarks); ``True``
        requires the substrate and raises if the graph cannot provide one.
    use_vectorized:
        ``None`` (default) takes the vectorized kernel path
        (:mod:`repro.core.kernels`) whenever numpy is importable and a
        substrate view exists; ``False`` forces the scalar loop (the
        second byte-identity oracle); ``True`` requires the kernels and
        raises when numpy is missing, kernels are disabled, or there is
        no substrate view — it also forces the bound tables through the
        relaxation kernel regardless of graph size (how the property
        tests exercise it on tiny graphs).  Output is byte-identical
        either way — subgraphs and diagnostics.
    """
    ordered_sets = [ks for ks in augmented.sorted_keyword_elements() if ks]
    m = len(ordered_sets)
    candidates = CandidateList(k)

    if m == 0:
        return ExplorationResult([], 0, 0, 0, 0, "no-keywords", 0)

    view: Optional[_SubstrateView] = None
    if use_substrate is not False:
        view = _build_substrate_view(augmented, element_costs)
    if view is not None:
        costs: Sequence[float] = view.costs
        total = view.total
        id_of = view.id_of
        to_merged = view.to_merged
        decode = view.decode
        row_of = _view_row_of(view)
    else:
        if use_substrate is True:
            raise ValueError(
                "substrate exploration requires a summary graph (or overlay) "
                f"with exploration_substrate(); got {type(augmented.graph).__name__}"
            )
        interned = _InternedGraph(augmented, element_costs)
        costs = interned.costs
        total = len(interned.keys)
        id_of = interned.ids.get
        to_merged = None
        decode = interned.keys.__getitem__
        row_of = interned.neighbors.__getitem__

    # Resolve the vectorized kernel path before seeding: the SoA loop
    # skips Cursor construction entirely, and a forced kernel run routes
    # the bound tables through the relaxation sweeps too.
    vectorized = False
    if use_vectorized is True:
        if view is None:
            raise ValueError(
                "vectorized exploration requires the CSR substrate "
                "(use_substrate must not be False and the graph must "
                "provide exploration_substrate())"
            )
        if not kernels.kernels_enabled():
            raise ValueError(
                "vectorized exploration requires numpy (pip install "
                "repro[fast]) and kernels not disabled"
            )
        vectorized = True
    elif use_vectorized is None and view is not None:
        vectorized = kernels.kernels_enabled()
        if not vectorized and not kernels.numpy_available():
            kernels._log_fallback("numpy not installed")

    # Deterministic seeding: K_i are sets, so a canonical order (by key
    # repr, cached on the augmented graph) makes tie-breaking — and
    # therefore ranking among equal-cost subgraphs — reproducible across
    # processes.
    seed_lists: List[List[Tuple[int, float]]] = [[] for _ in range(m)]
    seed_costs: List[Dict[int, float]] = [dict() for _ in range(m)]
    for i, elements in enumerate(ordered_sets):
        pairs = seed_lists[i]
        for key in elements:
            element = id_of(key)
            if element is None:
                raise KeyError(f"keyword element {key!r} not in augmented graph")
            cost = costs[element]
            seed_costs[i][element] = cost
            pairs.append((element, cost))

    bounds: Optional[List[List[float]]] = None
    if guided:
        cache_key = None
        if view is not None and view.cost_token is not None:
            cache_key = (
                view.cost_token,
                view.extra_keys,
                tuple(tuple(sorted(sc.items())) for sc in seed_costs),
            )
            bounds = view.substrate.get_bounds(cache_key, view.cost_table)
        if bounds is None:
            bounds = _bounds_for(
                m, seed_costs, row_of, costs, total, view,
                force_kernel=(use_vectorized is True),
            )
            if cache_key is not None:
                view.substrate.store_bounds(cache_key, view.cost_table, bounds)

    if vectorized:
        created, popped, pruned, max_queue, terminated_by = kernels.explore_soa(
            seed_lists, m, view, bounds, candidates, k, dmax, max_cursors
        )
        return ExplorationResult(
            subgraphs=[sg.translated(decode) for sg in candidates.best()],
            cursors_created=created,
            cursors_popped=popped,
            cursors_pruned=pruned,
            candidates_offered=candidates.offered,
            terminated_by=terminated_by,
            max_queue_size=max_queue,
        )

    heap: List[Tuple[float, int, Cursor]] = []
    created = 0
    for i, pairs in enumerate(seed_lists):
        for element, cost in pairs:
            created += 1
            heap.append((cost, created, Cursor.origin_cursor(element, i, cost)))
    heapq.heapify(heap)

    # Per-element registration state: a flat list of m per-keyword buckets,
    # ``states[element][i]`` holding the cursors that reached the element
    # from keyword i in ascending cost order (pop order guarantees this),
    # capped at k — the paper's space bound of k cheapest paths per
    # (element, keyword).
    states: Dict[int, List[List[Cursor]]] = {}
    states_get = states.get
    heappush = heapq.heappush
    heappop = heapq.heappop
    kth_cost = candidates.kth_cost
    offer = candidates.offer

    popped = 0
    pruned = 0
    max_queue = 0
    terminated_by = "exhausted"

    while heap:
        queue_size = len(heap)
        if queue_size > max_queue:
            max_queue = queue_size
        _, _, cursor = heappop(heap)
        popped += 1
        element = cursor.element
        distance = cursor.distance

        if distance > dmax:
            continue

        kw = cursor.keyword
        cursor_cost = cursor.cost

        # Guided pruning: if even the cheapest completion of this path
        # cannot beat the k-th candidate, the cursor is dead weight.
        # (The raw bound enters `element` once more; the cursor's cost
        # already covers it, hence the subtraction — see _completion_bounds.)
        if bounds is not None:
            completion = bounds[kw][element] - costs[element]
            if cursor_cost + completion >= kth_cost():
                pruned += 1
                continue

        state = states_get(element)
        if state is None:
            state = [[] for _ in range(m)]
            states[element] = state
        bucket = state[kw]
        if len(bucket) >= k:
            pruned += 1
            continue
        bucket.append(cursor)

        # Expand to all neighbors not already on the path (Alg 1 lines
        # 13-22; the parent is on the path, so the walk covers both
        # checks).  The cycle check deliberately walks the parent chain
        # (≤ dmax pointer hops) instead of carrying per-cursor path
        # sets/bitmasks: measured on the Fig. 6a k=100 workload, a
        # frozenset per cursor is ~25% slower end to end — hundreds of
        # thousands of live GC-tracked containers make every collection
        # scan far more expensive — while the chain walk allocates
        # nothing.  Registration happened, so paths of length dmax still
        # contribute to connecting elements.
        if distance < dmax:
            origin = cursor.origin
            next_distance = distance + 1
            for neighbor in row_of(element):
                probe = cursor
                while probe is not None and probe.element != neighbor:
                    probe = probe.parent
                if probe is not None:
                    continue
                neighbor_state = states_get(neighbor)
                if neighbor_state is not None and len(neighbor_state[kw]) >= k:
                    pruned += 1
                    continue
                child_cost = cursor_cost + costs[neighbor]
                created += 1
                heappush(
                    heap,
                    (
                        child_cost,
                        created,
                        Cursor(
                            neighbor,
                            kw,
                            origin,
                            cursor,
                            next_distance,
                            child_cost,
                        ),
                    ),
                )

        # Algorithm 2: build the new candidate subgraphs this registration
        # enables — combinations that use this cursor for its keyword and
        # any registered path for every other keyword, enumerated
        # best-first.  Enumeration stops when (a) the combination cost
        # reaches the k-th candidate cost (ascending order: nothing later
        # can enter the top-k), or (b) k *distinct element sets* have been
        # produced here — any further combination is dominated by k
        # already-offered candidates at this element that cost no more.
        if all(state):
            other_lists = [state[i] if i != kw else [cursor] for i in range(m)]
            distinct_sets = set()
            for combo_cost, combo in _best_combinations(other_lists, kth_cost):
                if len(candidates) >= k and combo_cost >= kth_cost():
                    break
                if to_merged is None:
                    merged = MatchingSubgraph.from_cursors(element, combo)
                else:
                    merged = MatchingSubgraph(
                        to_merged(element),
                        [[to_merged(e) for e in c.path()] for c in combo],
                        sum(c.cost for c in combo),
                    )
                offer(merged)
                distinct_sets.add(merged.canonical_key)
                if len(distinct_sets) >= k:
                    break

        # Termination check: cheapest outstanding cursor bounds every
        # undiscovered subgraph from below.
        lowest_remaining = heap[0][0] if heap else _INF
        if candidates.should_terminate(lowest_remaining):
            terminated_by = "threshold"
            break

        if max_cursors is not None and created >= max_cursors:
            terminated_by = "budget"
            break

    subgraphs = [sg.translated(decode) for sg in candidates.best()]
    return ExplorationResult(
        subgraphs=subgraphs,
        cursors_created=created,
        cursors_popped=popped,
        cursors_pruned=pruned,
        candidates_offered=candidates.offered,
        terminated_by=terminated_by,
        max_queue_size=max_queue,
    )


# ----------------------------------------------------------------------
# Shared-frontier bound prefusion (EngineService.search_many)
# ----------------------------------------------------------------------


def prepare_guided_request(
    augmented: AugmentedSummaryGraph, element_costs
) -> Optional[tuple]:
    """``(m, seed_costs, view, cache_key)`` for prefusing one query's
    guided bound tables, or ``None`` when the query cannot share the
    substrate bounds cache (no substrate, uncacheable cost mapping, no
    matched keywords, or a keyword element outside the view)."""
    ordered_sets = [ks for ks in augmented.sorted_keyword_elements() if ks]
    m = len(ordered_sets)
    if m == 0:
        return None
    view = _build_substrate_view(augmented, element_costs)
    if view is None or view.cost_token is None:
        return None
    id_of = view.id_of
    costs = view.costs
    seed_costs: List[Dict[int, float]] = [dict() for _ in range(m)]
    for i, elements in enumerate(ordered_sets):
        for key in elements:
            element = id_of(key)
            if element is None:
                return None
            seed_costs[i][element] = costs[element]
    cache_key = (
        view.cost_token,
        view.extra_keys,
        tuple(tuple(sorted(sc.items())) for sc in seed_costs),
    )
    return m, seed_costs, view, cache_key


def prefuse_guided_bounds(requests) -> int:
    """Precompute missing guided bound tables for a batch of queries in
    one fused relaxation pass (the shared-frontier mode of
    ``EngineService.search_many``).

    ``requests`` yields ``(augmented, element_costs)`` pairs, all built on
    one snapshot.  Every query's table lands in the substrate bounds
    cache under exactly the key :func:`explore_top_k` computes, so the
    subsequent per-query searches hit the cache and run unchanged —
    identity of the batch with sequential execution is structural, not
    re-proved per query.  Queries the kernel declines (no numpy,
    pathological diameter) are warmed with the scalar Dijkstra instead.
    Returns the number of tables computed.
    """
    pending = []
    seen = set()
    for augmented, element_costs in requests:
        prepared = prepare_guided_request(augmented, element_costs)
        if prepared is None:
            continue
        m, seed_costs, view, cache_key = prepared
        if cache_key in seen:
            continue
        if view.substrate.get_bounds(cache_key, view.cost_table) is not None:
            continue
        seen.add(cache_key)
        pending.append((m, seed_costs, view, cache_key))
    if not pending:
        return 0
    if kernels.kernels_enabled():
        computed = kernels.completion_bounds_batch(
            [(m, sc, v) for m, sc, v, _ in pending]
        )
    else:
        computed = [None] * len(pending)
    for (m, seed_costs, view, cache_key), bounds in zip(pending, computed):
        if bounds is None:
            bounds = _completion_bounds(
                m, seed_costs, _view_row_of(view), view.costs, view.total
            )
        view.substrate.store_bounds(cache_key, view.cost_table, bounds)
    return len(pending)
