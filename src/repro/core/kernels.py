"""Vectorized exploration kernels over the CSR substrate.

This module is the numpy side of :mod:`repro.core.exploration`.  It has
exactly one contract: **byte-identical output** — the subgraphs *and* the
diagnostics (`cursors_created/popped/pruned`, `candidates_offered`,
`terminated_by`, `max_queue_size`) of a vectorized exploration must equal
the pure-Python reference bit for bit.  Everything here is therefore
either (a) provably value-identical float arithmetic, or (b) a faithful
re-implementation that performs the same operations in the same order on
a leaner representation.  Where a tempting vectorization could not meet
(a) or (b) it was rejected, and the rejection is documented inline.

What is vectorized, and why it is safe:

* **CSR ndarray views** (:func:`csr_ndarrays`): ``numpy.frombuffer`` over
  the substrate's flat ``array('l')`` rows — or, for a bundle-loaded
  engine, over the ``memoryview('q')`` that PR 4 adopted zero-copy from
  the mmapped ``.reprobundle`` section.  No copy, no translation: the
  kernels read the exact same bytes the scalar loop reads.
* **Guided bound tables** (:func:`completion_bounds_batch`): the
  per-keyword Dijkstra sweeps of ``_completion_bounds`` become batched
  Bellman-style relaxation sweeps over all seed rows at once — a row
  gather ``dist[:, targets]``, an ``np.minimum.reduceat`` per-row merge,
  and a broadcast cost add, iterated to fixpoint.  This is bit-identical
  to Dijkstra because (1) Dijkstra's output is the least fixpoint of
  ``dist[v] = min(seed[v], min_{u in row(v)} fl(dist[u] + cost[v]))``,
  (2) IEEE-754 round-to-nearest addition is monotone in each argument,
  so ``min_u fl(dist[u] + c) == fl((min_u dist[u]) + c)`` exactly —
  min-then-add equals add-then-min — and (3) the sweep iteration starts
  above the fixpoint and decreases monotonically onto it.  Several
  queries' tables fuse into one ``R x N`` matrix: that is the shared
  frontier of ``search_many``.
* **The SoA exploration loop** (:func:`explore_soa`): the cost-ordered
  pop loop itself is inherently sequential under the identity contract
  (every pop can move the k-th cost that gates the next pop's pruning),
  so it is not batched; instead cursors live in parallel
  structure-of-arrays lists indexed by creation order — the creation
  counter doubles as the heap tie-break, exactly like the reference's
  ``(cost, created, Cursor)`` entries — which eliminates one object
  construction (7 ``object.__setattr__`` calls) per cursor and one
  generator frame per candidate registration.  Combination enumeration
  reduces out singleton dimensions (the common ``m == 2`` case becomes a
  single ascending scan over a contiguous cost list).

Rejected: enumerating ``_best_combinations`` through an
``np.add.outer`` grid with argpartition chunking.  The reference
computes each combination's cost by *chaining* adds and subtracts along
the successor path that first discovered it in the enumeration heap
(``cost + lists[i][nxt].cost - lists[i][cur].cost``), so the float value
of a combination depends on its discovery path.  A grid recomputes it as
one add and can differ in the last ulp, which can flip the consumer's
``>= kth_cost`` break and change ``candidates_offered``.  Value-identical
enumeration therefore has to replay the same successor chains, which is
what :func:`iter_combinations` does.

numpy is an optional extra (``pip install repro[fast]``).  Without it —
or after :func:`set_enabled(False) <set_enabled>` — every entry point
reports itself unavailable and :mod:`repro.core.exploration` stays on
the scalar reference path; the first such fallback logs one loud line.
"""

from __future__ import annotations

import logging
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.subgraph import MatchingSubgraph

log = logging.getLogger(__name__)

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

_INF = float("inf")

#: Kill switch (``repro bench --no-vectorized``, tests): True disables the
#: kernels even when numpy is importable.
_disabled = False
_fallback_logged = False

#: Guided bound tables go through the batched relaxation kernel only when
#: the per-query id space has at least this many elements; below it the
#: per-sweep numpy dispatch overhead loses to the scalar Dijkstra (the
#: "tiny graph" row of the fallback matrix in docs/architecture.md).
#: ``use_vectorized=True`` overrides the threshold (property tests force
#: the kernel on the small example/DBLP graphs this way).
MIN_BOUNDS_TOTAL = 512

#: Row length at which the expansion cycle-check switches to one
#: ``np.isin`` over the row instead of a parent-chain walk per neighbor.
MIN_VECTOR_ROW = 64


def numpy_available() -> bool:
    """True when the optional numpy extra is importable."""
    return _np is not None


def kernels_enabled() -> bool:
    """True when explorations may take the vectorized path."""
    return _np is not None and not _disabled


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable the kernels (``--no-vectorized``)."""
    global _disabled
    _disabled = not enabled


def kernel_status() -> Dict[str, object]:
    """Machine-readable kernel state for ``/stats`` and diagnostics."""
    return {
        "numpy": None if _np is None else _np.__version__,
        "active": kernels_enabled(),
        "disabled": _disabled,
    }


def status_line() -> str:
    """One-line kernel state for ``repro --version`` / bench headers."""
    if _np is None:
        return "kernels: off (numpy not installed; pip install repro[fast])"
    if _disabled:
        return f"kernels: off (disabled; numpy {_np.__version__} available)"
    return f"kernels: numpy {_np.__version__} (active)"


def _log_fallback(reason: str) -> None:
    """One loud line the first time a vectorized path falls back."""
    global _fallback_logged
    if not _fallback_logged:
        _fallback_logged = True
        log.warning(
            "vectorized exploration kernels unavailable (%s); "
            "falling back to the pure-Python reference path", reason
        )


# ----------------------------------------------------------------------
# Zero-copy CSR ndarray views
# ----------------------------------------------------------------------


def _as_int64(buf):
    """An int64 ndarray over ``buf`` — zero-copy when the buffer already
    holds 8-byte integers (``array('l')`` on LP64, or the bundle loader's
    mmap-backed ``memoryview('q')``), an explicit copy otherwise."""
    if getattr(buf, "itemsize", None) == 8:
        try:
            return _np.frombuffer(buf, dtype=_np.int64)
        except (ValueError, BufferError):  # pragma: no cover - odd buffers
            pass
    return _np.array(buf, dtype=_np.int64)  # pragma: no cover - ILP32 only


def _as_float64(buf):
    """A float64 ndarray over ``buf`` (``array('d')`` is always 8 bytes)."""
    try:
        return _np.frombuffer(buf, dtype=_np.float64)
    except (ValueError, BufferError):  # pragma: no cover - odd buffers
        return _np.array(buf, dtype=_np.float64)


def csr_ndarrays(substrate):
    """``(offsets, targets)`` int64 views of a substrate's CSR arrays.

    Cached on the substrate (its arrays are immutable once built); both
    views share the underlying buffer — including the mmap pages of a
    bundle-adopted substrate, whose ``backing`` keeps the map alive.
    """
    if _np is None:
        raise RuntimeError("numpy is not available")
    cached = substrate.ndarray_views()
    if cached is None:
        cached = (_as_int64(substrate.offsets), _as_int64(substrate.targets))
        substrate.adopt_ndarray_views(cached)
    return cached


# ----------------------------------------------------------------------
# Batched relaxation sweeps (guided bound tables, shared frontiers)
# ----------------------------------------------------------------------


def _max_sweeps(width: int) -> int:
    """Sweep budget before declaring non-convergence.  Each sweep extends
    every shortest path by one hop, so the budget is a diameter bound; a
    graph deeper than this (a bare ring, say) falls back to the scalar
    Dijkstra rather than sweeping forever — the "high diameter" row of
    the fallback matrix."""
    return 64 + 2 * int(width ** 0.5)


def _relax_to_fixpoint(dist, offsets, targets, cost_rows, n, patches, max_sweeps):
    """Iterate ``dist[v] = min(dist[v], min_{u in row(v)} dist[u] + cost[v])``
    to its least fixpoint, all rows at once.

    ``dist`` is ``R x width`` (one row per seed set, possibly from
    different queries); ``cost_rows`` is ``R x n`` (each query carries its
    own per-element costs).  ``patches`` applies the overlay's extra
    edges — ``(prow, psrc, pdst, pcost)`` parallel arrays meaning "row
    ``prow`` may enter ``pdst`` from ``psrc`` at ``pcost``" — alongside
    the base CSR adjacency.  Returns ``(dist, converged)``.

    Each iteration is either a **dense sweep** (row gather +
    ``np.minimum.reduceat`` over every element, right when most of the
    matrix is in motion — e.g. the phase-2 pass, whose seeds are already
    near their fixpoint everywhere) or a **sparse frontier push** (relax
    only the out-edges of elements whose distance changed last iteration
    — the few-seeds phase-1 regime, where a dense sweep would redo the
    whole graph ``diameter`` times over).  The push direction uses the
    same CSR rows as the pull: summary-graph adjacency is symmetric
    (exploration is undirected), and the overlay patch generator emits
    both directions of every extra edge.  Either step applies the same
    monotone relaxation equation, so the least fixpoint — the value
    Dijkstra computes, see the module docstring — is reached bit-exactly
    regardless of which steps ran; only the iteration count differs.
    """
    np = _np
    n_rows, width = dist.shape
    n_edges = int(targets.shape[0])
    if n_edges:
        starts = offsets[:-1]
        empty = starts == offsets[1:]
        any_empty = bool(empty.any())
        if any_empty:
            # reduceat over only the non-empty rows: their starts are
            # strictly increasing and in-bounds, and because empty rows
            # contribute no positions, each surviving segment spans
            # exactly its own edges.  (Clipping a trailing empty row's
            # start to n_edges-1 instead would silently truncate the
            # last non-empty row's segment.)
            nonempty = ~empty
            ne_starts = starts[nonempty]
    if patches is not None:
        prow, psrc, pdst, pcost = patches
        pflat = prow * width + psrc
    flat = dist.reshape(-1)
    cflat = cost_rows.reshape(-1)
    # The frontier is a flat-index array (touched this iteration) plus a
    # mirror boolean for O(1) patch-source membership; iteration cost
    # scales with the frontier, never with R x width.
    infront = flat < _INF
    fidx = np.flatnonzero(infront)
    # A sparse push costs ~frontier_bits x avg_degree scattered relaxations
    # vs the dense sweep's R x E contiguous ones; the scatter's per-element
    # overhead is roughly an order of magnitude higher, hence the /8.
    dense_cutoff = max(1, (n_rows * max(n, 1)) // 8)
    for _ in range(max_sweeps):
        if fidx.size == 0:
            return dist, True
        if fidx.size >= dense_cutoff:
            new = dist.copy()
            if n_edges:
                if any_empty:
                    seg = np.full((n_rows, n), _INF)
                    seg[:, nonempty] = np.minimum.reduceat(
                        dist[:, targets], ne_starts, axis=1
                    )
                else:
                    seg = np.minimum.reduceat(dist[:, targets], starts, axis=1)
                np.minimum(dist[:, :n], seg + cost_rows, out=new[:, :n])
            if patches is not None:
                np.minimum.at(new, (prow, pdst), dist[prow, psrc] + pcost)
            infront = (new != dist).reshape(-1)
            fidx = np.flatnonzero(infront)
            dist = new
            flat = dist.reshape(-1)
            continue
        # Sparse push: candidates from the base rows of frontier sources
        # < n, plus every patch edge whose source is in the frontier.
        if patches is not None:
            psel = infront[pflat]
        infront[fidx] = False
        moved = []
        if n_edges:
            fu = fidx % width
            if width == n:
                # No overlay extras: flat dist and flat cost coincide and
                # every frontier source has a base CSR row.
                fidx_b = fidx
            else:
                base = fu < n
                if not base.all():
                    fu = fu[base]
                    fidx_b = fidx[base]
                else:
                    fidx_b = fidx
            lens = offsets[fu + 1] - offsets[fu]
            total = int(lens.sum())
            if total:
                within = np.arange(total) - np.repeat(
                    np.cumsum(lens) - lens, lens
                )
                pos = np.repeat(offsets[fu], lens) + within
                # flat destination = row_base + target element; cost row
                # base = r * n — both derived per-source, then repeated.
                row_base = fidx_b - fu
                ev = targets[pos]
                edst = np.repeat(row_base, lens) + ev
                if width == n:
                    cand = flat[np.repeat(fidx_b, lens)] + cflat[edst]
                else:
                    cand = flat[np.repeat(fidx_b, lens)] + cflat[
                        np.repeat(row_base // width * n, lens) + ev
                    ]
                improving = cand < flat[edst]
                if improving.any():
                    edst, cand = edst[improving], cand[improving]
                    np.minimum.at(flat, edst, cand)
                    moved.append(edst)
        if patches is not None and psel.any():
            ps, pd, pc = pflat[psel], prow[psel] * width + pdst[psel], pcost[psel]
            cand = flat[ps] + pc
            improving = cand < flat[pd]
            if improving.any():
                pd, cand = pd[improving], cand[improving]
                np.minimum.at(flat, pd, cand)
                moved.append(pd)
        if moved:
            # Sort+diff dedup: numpy's hash-based `unique` has ~200us of
            # per-call overhead on integer dtypes, dwarfing these arrays.
            touched = np.sort(
                moved[0] if len(moved) == 1 else np.concatenate(moved)
            )
            if touched.size > 1:
                keep = np.empty(touched.shape, dtype=bool)
                keep[0] = True
                np.not_equal(touched[1:], touched[:-1], out=keep[1:])
                touched = touched[keep]
            fidx = touched
            infront[fidx] = True
        else:
            fidx = fidx[:0]
    return dist, fidx.size == 0


def overlay_patch_arrays(view):
    """The overlay's extra adjacency as relaxation patch edges.

    ``view.rows`` holds the merged replacement rows: the full row of every
    overlay extra, and base rows extended with overlay edge ids (always
    ``>= n`` — `_build_substrate_view` only ever appends extras to base
    rows).  A patch edge ``(src, dst, cost)`` relaxes entry into ``dst``
    at ``cost == costs[dst]``; base-to-base adjacency stays with the CSR
    sweep.  Cached on the view (and the view is itself cached per overlay
    signature on the substrate).
    """
    cached = view.np_patches
    if cached is not False:
        return cached
    n = view.substrate.n
    costs = view.costs
    src: List[int] = []
    dst: List[int] = []
    pc: List[float] = []
    for v, row in view.rows.items():
        cost_v = costs[v]
        if v >= n:
            for u in row:
                src.append(u)
                dst.append(v)
                pc.append(cost_v)
        else:
            for u in row:
                if u >= n:
                    src.append(u)
                    dst.append(v)
                    pc.append(cost_v)
    if src:
        cached = (
            _np.array(src, dtype=_np.int64),
            _np.array(dst, dtype=_np.int64),
            _np.array(pc, dtype=_np.float64),
        )
    else:
        cached = None
    view.np_patches = cached
    return cached


def completion_bounds_batch(problems) -> List[Optional[List[List[float]]]]:
    """Guided completion-bound tables for a batch of queries, fused.

    ``problems`` is a sequence of ``(m, seed_costs, view)`` — exactly the
    inputs ``_completion_bounds`` takes, one per query; all views of one
    snapshot share a substrate and fuse into one relaxation matrix (the
    shared-frontier pass of ``EngineService.search_many``).  Returns one
    bounds table (list of m per-element lists, bit-identical to the
    scalar oracle) per problem, or ``None`` for problems the kernel could
    not converge within the sweep budget — the caller recomputes those
    with the scalar path.
    """
    results: List[Optional[List[List[float]]]] = [None] * len(problems)
    if _np is None:
        return results
    groups: Dict[int, List[int]] = {}
    for idx, (_, _, view) in enumerate(problems):
        groups.setdefault(id(view.substrate), []).append(idx)
    for idxs in groups.values():
        _bounds_group(problems, idxs, results)
    return results


def _bounds_group(problems, idxs, results) -> None:
    np = _np
    view0 = problems[idxs[0]][2]
    substrate = view0.substrate
    offsets, targets = csr_ndarrays(substrate)
    n = substrate.n
    width = max(problems[i][2].total for i in idxs)
    n_rows = sum(problems[i][0] for i in idxs)
    max_sweeps = _max_sweeps(width)

    dist = np.full((n_rows, width), _INF)
    cost_rows = np.empty((n_rows, n))
    row_start: Dict[int, int] = {}
    prows: List = []
    psrcs: List = []
    pdsts: List = []
    pcosts: List = []
    r = 0
    for i in idxs:
        m, seed_costs, view = problems[i]
        row_start[i] = r
        cost_rows[r : r + m] = _as_float64(view.costs)[:n]
        patch = overlay_patch_arrays(view)
        if patch is not None:
            src, dst, pc = patch
            rows = np.repeat(np.arange(r, r + m, dtype=np.int64), src.shape[0])
            prows.append(rows)
            psrcs.append(np.tile(src, m))
            pdsts.append(np.tile(dst, m))
            pcosts.append(np.tile(pc, m))
        for kw in range(m):
            row = dist[r + kw]
            for node, cost in seed_costs[kw].items():
                row[node] = cost
        r += m
    patches = None
    if prows:
        patches = (
            np.concatenate(prows),
            np.concatenate(psrcs),
            np.concatenate(pdsts),
            np.concatenate(pcosts),
        )

    dist1, ok = _relax_to_fixpoint(
        dist, offsets, targets, cost_rows, n, patches, max_sweeps
    )
    if not ok:
        _log_nonconvergence(width)
        return

    # Phase 2 seeds: S_i(v) = fold-left sum over j != i of dist_j(v), in
    # ascending j — replicated elementwise, NOT as sum-minus-self, which
    # is neither associativity-safe nor inf-safe in floating point.
    dist2 = np.empty_like(dist1)
    for i in idxs:
        m, _, view = problems[i]
        r0 = row_start[i]
        for kw in range(m):
            acc = None
            for j in range(m):
                if j == kw:
                    continue
                dj = dist1[r0 + j]
                acc = dj.copy() if acc is None else acc + dj
            # m == 1: the scalar oracle seeds every element at 0.0.
            dist2[r0 + kw] = np.zeros(width) if acc is None else acc

    dist2, ok = _relax_to_fixpoint(
        dist2, offsets, targets, cost_rows, n, patches, max_sweeps
    )
    if not ok:
        _log_nonconvergence(width)
        return

    for i in idxs:
        m, _, view = problems[i]
        r0 = row_start[i]
        total = view.total
        results[i] = [dist2[r0 + kw, :total].tolist() for kw in range(m)]


_nonconvergence_logged = False


def _log_nonconvergence(width: int) -> None:
    global _nonconvergence_logged
    if not _nonconvergence_logged:
        _nonconvergence_logged = True
        log.warning(
            "relaxation kernel hit the sweep budget on a %d-element graph "
            "(very high diameter); using the scalar Dijkstra for its bound "
            "tables", width,
        )


# ----------------------------------------------------------------------
# Combination enumeration (Algorithm 2 registrations)
# ----------------------------------------------------------------------


def iter_combinations(lists, w, cutoff):
    """Cheapest-sum-first index tuples across per-keyword cursor lists.

    ``lists[i]`` holds SoA cursor indices ascending in cost, ``w`` maps a
    cursor index to its cost, ``cutoff`` returns the caller's current
    k-th cost.  Yields ``(cost, combo)`` with ``combo`` one cursor index
    per keyword — the same values, in the same order, as the reference
    ``_best_combinations`` (same fold-left start sum, same chained
    successor arithmetic, same lexicographic tie-break: the constant
    singleton coordinates never influence a tuple comparison).

    Singleton dimensions are reduced out first: with one non-singleton
    list the frontier heap degenerates to an ascending scan of that list
    (successor costs chain along it exactly as the heap would chain
    them), which is the common ``m == 2`` registration.
    """
    m = len(lists)
    start_cost = 0
    for lst in lists:
        start_cost = start_cost + w[lst[0]]
    base = [lst[0] for lst in lists]
    wide = [i for i in range(m) if len(lists[i]) > 1]

    if not wide:
        yield start_cost, tuple(base)
        return

    if len(wide) == 1:
        d = wide[0]
        lst = lists[d]
        cost = start_cost
        prev = lst[0]
        yield cost, tuple(base)
        for nxt in lst[1:]:
            cost = cost + w[nxt] - w[prev]
            prev = nxt
            base[d] = nxt
            yield cost, tuple(base)
        return

    # >= 2 open dimensions: replay the reference frontier heap over full
    # m-length index vectors (an np.add.outer grid with argpartition
    # chunks was measured and rejected — see the module docstring: grid
    # arithmetic is not value-identical to the chained successor sums).
    start = (0,) * m
    heap: List[Tuple[float, Tuple[int, ...]]] = [(start_cost, start)]
    seen = {start}
    while heap:
        cost, indices = heappop(heap)
        yield cost, tuple(lists[i][indices[i]] for i in range(m))
        bound = cutoff()
        for i in wide:
            nxt = indices[i] + 1
            lst = lists[i]
            if nxt < len(lst):
                successor = indices[:i] + (nxt,) + indices[i + 1 :]
                if successor in seen:
                    continue
                next_cost = cost + w[lst[nxt]] - w[lst[indices[i]]]
                if next_cost >= bound:
                    continue
                seen.add(successor)
                heappush(heap, (next_cost, successor))


# ----------------------------------------------------------------------
# The SoA exploration loop
# ----------------------------------------------------------------------


def explore_soa(seed_lists, m, view, bounds, candidates, k, dmax, max_cursors):
    """The reference exploration loop on structure-of-arrays cursors.

    ``seed_lists[i]`` holds ``(element, cost)`` origin pairs in canonical
    seeding order.  Cursors are one packed ``(element, keyword, parent,
    distance)`` tuple plus a parallel cost list, indexed by creation
    order; heap entries are ``(cost, index)`` two-tuples whose index is
    the exact tie-break the reference's ``(cost, created, Cursor)``
    triples encode.  Every counter increment, pruning decision, offer and
    termination check mirrors ``explore_top_k``'s loop line for line —
    the test suite asserts the diagnostics match bit for bit.

    Returns ``(created, popped, pruned, max_queue, terminated_by)``;
    accepted subgraphs accumulate in ``candidates``.
    """
    substrate = view.substrate
    offsets = substrate.offsets
    targets = substrate.targets
    extra_rows = view.rows
    costs = view.costs_list
    if costs is None:
        costs = view.costs.tolist()
        view.costs_list = costs
    to_merged = view.to_merged

    cursors: List[Tuple[int, int, int, int]] = []
    c_cost: List[float] = []
    cur_append = cursors.append
    cost_append = c_cost.append

    heap: List[Tuple[float, int]] = []
    created = 0
    for i, pairs in enumerate(seed_lists):
        for element, cost in pairs:
            cur_append((element, i, -1, 0))
            cost_append(cost)
            heap.append((cost, created))
            created += 1
    heapify(heap)

    states: Dict[int, List[List[int]]] = {}
    states_get = states.get
    # The adjacency-row memo lives on the view so repeated explorations
    # skip both the CSR slice and the per-iteration int boxing of
    # array('l') rows (base rows are boxed into tuples once).  Concurrent
    # searches share it safely: entries are pure functions of the element
    # id, so a racing double-compute just overwrites with an equal value.
    rows = view.row_memo
    if rows is None:
        rows = dict(extra_rows)
        view.row_memo = rows
    rows_get = rows.get
    # A cursor's (translated) path and its element set are fixed at
    # creation; registrations re-enumerate the same cursors many times,
    # so both are memoized by cursor index.  MatchingSubgraph copies the
    # path lists it is handed, so sharing them is safe.
    path_cache: Dict[int, list] = {}
    paths_get = path_cache.get
    pset_cache: Dict[int, frozenset] = {}
    anc_cache: Dict[int, set] = {}
    from_parts = MatchingSubgraph.from_parts

    def path_of(ix):
        path = paths_get(ix)
        if path is None:
            parts = []
            append = parts.append
            probe = ix
            if to_merged is None:
                while probe >= 0:
                    cu = cursors[probe]
                    append(cu[0])
                    probe = cu[2]
            else:
                while probe >= 0:
                    cu = cursors[probe]
                    append(to_merged(cu[0]))
                    probe = cu[2]
            parts.reverse()
            # Stored as a tuple: MatchingSubgraph's path normalization
            # (tuple of tuples) then reuses the object instead of copying.
            path = tuple(parts)
            path_cache[ix] = path
            pset_cache[ix] = frozenset(parts)
        return path

    kth_cost = candidates.kth_cost
    accept = candidates.accept
    by_key_get = candidates._by_key.get
    srt = candidates._sorted
    kth = kth_cost()
    n_found = len(candidates)
    dup_offers = 0

    # Net completion bounds: bounds[kw][e] - costs[e] folded once (the
    # exact subtraction the reference performs at every pop) and cached
    # on the view keyed by the bounds object's identity.
    nets = None
    if bounds is not None:
        cached_nets = view.net_bounds
        if cached_nets is not None and cached_nets[0] is bounds:
            nets = cached_nets[1]
        else:
            if _np is not None:
                carr = _np.asarray(costs)
                nets = [
                    (_np.asarray(brow) - carr).tolist() for brow in bounds
                ]
            else:  # pragma: no cover - explore_soa requires numpy today
                nets = [
                    [b - c for b, c in zip(brow, costs)] for brow in bounds
                ]
            view.net_bounds = (bounds, nets)

    popped = 0
    pruned = 0
    max_queue = 0
    terminated_by = "exhausted"
    budget = _INF if max_cursors is None else max_cursors
    hpop = heappop
    hpush = heappush

    while heap:
        queue_size = len(heap)
        if queue_size > max_queue:
            max_queue = queue_size
        cursor_cost, ci = hpop(heap)
        popped += 1
        element, kw, par, distance = cursors[ci]

        if distance > dmax:
            continue

        if nets is not None:
            if cursor_cost + nets[kw][element] >= kth:
                pruned += 1
                continue

        state = states_get(element)
        if state is None:
            state = ([], []) if m == 2 else [[] for _ in range(m)]
            states[element] = state
        bucket = state[kw]
        if len(bucket) >= k:
            pruned += 1
            continue
        bucket.append(ci)

        if distance < dmax:
            row = rows_get(element)
            if row is None:
                row = tuple(targets[offsets[element] : offsets[element + 1]])
                rows[element] = row
            # One ancestor-set per expansion replaces the reference's
            # per-neighbor parent-chain walk — same membership test.  A
            # child's path extends its parent's by one element, and a
            # child only exists because its parent expanded (and cached
            # its set), so each set is one C-level union, not a walk.
            if par >= 0:
                ancestors = anc_cache[par] | {element}
            else:
                ancestors = {element}
            anc_cache[ci] = ancestors
            next_distance = distance + 1
            for neighbor in row:
                if neighbor in ancestors:
                    continue
                neighbor_state = states_get(neighbor)
                if neighbor_state is not None and len(neighbor_state[kw]) >= k:
                    pruned += 1
                    continue
                child_cost = cursor_cost + costs[neighbor]
                cur_append((neighbor, kw, ci, next_distance))
                cost_append(child_cost)
                hpush(heap, (child_cost, created))
                created += 1

        if all(state):
            # Cheapest combination = the per-keyword list heads (this
            # cursor for its own keyword).  Same fold order as the
            # enumerator's start sum; if it already cannot beat the k-th
            # candidate, the enumerator's first yield would hit the break
            # below before offering anything — skip building it at all
            # (the dominant case once the candidate list saturates).
            first_cost = 0
            for i in range(m):
                first_cost = first_cost + c_cost[state[i][0] if i != kw else ci]
            if n_found >= k and first_cost >= kth:
                pass
            elif m == 2:
                # The dominant registration shape: this cursor is the
                # only entry for its own keyword, so the combination
                # stream is an ascending scan of the other keyword's
                # bucket — the iter_combinations singleton reduction,
                # inlined without the generator machinery.
                connecting = element if to_merged is None else to_merged(element)
                olist = state[1 - kw]
                olen = len(olist)
                distinct_sets = set()
                combo_cost = first_cost
                pc = path_of(ci)
                sc = pset_cache[ci]
                wc = c_cost[ci]
                oi = 0
                while True:
                    if n_found >= k and combo_cost >= kth:
                        break
                    ox = olist[oi]
                    po = path_of(ox)
                    if kw == 0:
                        subgraph_cost = 0 + wc + c_cost[ox]
                    else:
                        subgraph_cost = 0 + c_cost[ox] + wc
                    key = sc | pset_cache[ox]
                    existing = by_key_get(key)
                    if existing is None or subgraph_cost < existing.cost:
                        paths = [pc, po] if kw == 0 else [po, pc]
                        accept(
                            key,
                            existing,
                            from_parts(connecting, paths, key, subgraph_cost),
                        )
                        n_found = len(srt)
                        kth = srt[k - 1][0] if n_found >= k else _INF
                    else:
                        dup_offers += 1
                    distinct_sets.add(key)
                    if len(distinct_sets) >= k:
                        break
                    oi += 1
                    if oi >= olen:
                        break
                    combo_cost = combo_cost + c_cost[olist[oi]] - c_cost[ox]
            else:
                lists = [state[i] if i != kw else (ci,) for i in range(m)]
                connecting = element if to_merged is None else to_merged(element)
                distinct_sets = set()
                for combo_cost, combo in iter_combinations(lists, c_cost, kth_cost):
                    if n_found >= k and combo_cost >= kth:
                        break
                    paths = []
                    key_sets = []
                    subgraph_cost = 0
                    for ix in combo:
                        paths.append(path_of(ix))
                        key_sets.append(pset_cache[ix])
                        subgraph_cost = subgraph_cost + c_cost[ix]
                    key = frozenset().union(*key_sets)
                    existing = by_key_get(key)
                    if existing is None or subgraph_cost < existing.cost:
                        accept(
                            key,
                            existing,
                            from_parts(connecting, paths, key, subgraph_cost),
                        )
                        n_found = len(srt)
                        kth = srt[k - 1][0] if n_found >= k else _INF
                    else:
                        dup_offers += 1
                    distinct_sets.add(key)
                    if len(distinct_sets) >= k:
                        break

        lowest_remaining = heap[0][0] if heap else _INF
        if kth < lowest_remaining:
            terminated_by = "threshold"
            break

        if created >= budget:
            terminated_by = "budget"
            break

    if dup_offers:
        # Duplicate offers rejected by the inline pre-check; the counter
        # is flushed once so the final diagnostics match the reference.
        candidates.offered += dup_offers

    return created, popped, pruned, max_queue, terminated_by
