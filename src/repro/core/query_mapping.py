"""Mapping matching subgraphs to conjunctive queries (Section VI-D).

Every subgraph vertex gets a distinct variable; its label can serve as a
constant.  The paper's mapping rules are applied exhaustively:

* **A-edge to a matched V-vertex** → ``type(var(v1), constant(v1))`` and
  ``e(var(v1), constant(v2))`` — the literal becomes a query constant.
* **A-edge to the artificial ``value`` node** → ``type(var(v1), c(v1))``
  and ``e(var(v1), var(value))`` — the value stays a free variable.
* **R-edge** → ``type`` atoms for both endpoints plus
  ``e(var(v1), var(v2))``.

Documented deviations (DESIGN.md §5): ``type(x, Thing)`` atoms are dropped
(Thing aggregates exactly the *untyped* entities, so the atom would never
hold in the data), and subclass edges map to the ground atom
``subclass(constant(v1), constant(v2))`` — the paper omits their rule, and
the instance-level reading would be unsatisfiable.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.subgraph import MatchingSubgraph
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import Literal, Term, URI, Variable
from repro.summary.elements import (
    SummaryEdgeKind,
    SummaryVertexKind,
    is_edge_key,
)
from repro.summary.summary_graph import SummaryGraph


class QueryMappingError(ValueError):
    """Raised when a subgraph cannot be expressed as a conjunctive query."""


#: Friendly variable names in assignment order, then a numbered fallback.
_VAR_NAMES = ("x", "y", "z", "u", "v", "w")


class _VariableNamer:
    """Deterministic per-vertex variable assignment."""

    def __init__(self):
        self._assigned: Dict[Hashable, Variable] = {}

    def var(self, vertex_key: Hashable) -> Variable:
        existing = self._assigned.get(vertex_key)
        if existing is not None:
            return existing
        index = len(self._assigned)
        if index < len(_VAR_NAMES):
            name = _VAR_NAMES[index]
        else:
            name = f"x{index + 1}"
        variable = Variable(name)
        self._assigned[vertex_key] = variable
        return variable


def map_to_query(
    subgraph: MatchingSubgraph,
    graph: SummaryGraph,
    type_predicate: URI = RDF.type,
    subclass_predicate: URI = RDFS.subClassOf,
    distinguished: Optional[Sequence[Variable]] = None,
) -> ConjunctiveQuery:
    """Translate one matching subgraph into a conjunctive query.

    ``graph`` must be the augmented summary graph the subgraph was explored
    on (vertex/edge metadata is resolved through it).  All variables are
    distinguished unless a projection is given (Section VI-D's default).
    """
    namer = _VariableNamer()
    atoms: List[Atom] = []
    seen = set()

    def _emit(atom: Atom) -> None:
        if atom not in seen:
            seen.add(atom)
            atoms.append(atom)

    def _class_constant(vertex) -> Optional[Term]:
        if vertex.kind is SummaryVertexKind.CLASS:
            return vertex.term
        return None  # Thing: no type atom (documented deviation)

    def _emit_type_atom(vertex_key: Hashable, var_key: Optional[Hashable] = None) -> None:
        vertex = graph.vertex(vertex_key)
        constant = _class_constant(vertex)
        if constant is not None:
            _emit(Atom(type_predicate, namer.var(var_key or vertex_key), constant))

    # Deterministic edge order: sort by stable string form of the key.
    edge_keys = sorted(subgraph.edge_keys(), key=repr)
    covered_vertices = set()

    for edge_key in edge_keys:
        edge = graph.edge(edge_key)
        source = graph.vertex(edge.source_key)
        target = graph.vertex(edge.target_key)
        covered_vertices.add(edge.source_key)
        covered_vertices.add(edge.target_key)

        if edge.kind is SummaryEdgeKind.ATTRIBUTE:
            _emit_type_atom(edge.source_key)
            if target.kind is SummaryVertexKind.VALUE:
                if not isinstance(target.term, Literal):  # pragma: no cover
                    raise QueryMappingError(f"value vertex without literal: {target!r}")
                _emit(Atom(edge.label, namer.var(edge.source_key), target.term))
            elif target.kind is SummaryVertexKind.ARTIFICIAL:
                _emit(
                    Atom(
                        edge.label,
                        namer.var(edge.source_key),
                        namer.var(edge.target_key),
                    )
                )
            else:
                raise QueryMappingError(
                    f"attribute edge into non-value vertex: {edge!r}"
                )
        elif edge.kind is SummaryEdgeKind.RELATION:
            _emit_type_atom(edge.source_key)
            if edge.source_key == edge.target_key:
                # A class-level self-loop stands for instance pairs *within*
                # one class (a publication citing another publication), not
                # self-relations — give the target a fresh variable
                # (documented deviation, DESIGN.md §5).
                loop_key = ("loop-target", edge_key)
                _emit_type_atom(edge.target_key, var_key=loop_key)
                _emit(Atom(edge.label, namer.var(edge.source_key), namer.var(loop_key)))
            else:
                _emit_type_atom(edge.target_key)
                _emit(
                    Atom(
                        edge.label,
                        namer.var(edge.source_key),
                        namer.var(edge.target_key),
                    )
                )
        elif edge.kind is SummaryEdgeKind.SUBCLASS:
            if source.term is None or target.term is None:
                raise QueryMappingError("subclass edge with Thing endpoint")
            _emit(Atom(subclass_predicate, source.term, target.term))
        else:  # pragma: no cover - enum is closed
            raise QueryMappingError(f"unknown edge kind {edge.kind!r}")

    # Vertices not covered by any edge (single-element or degenerate
    # subgraphs) still need an anchoring atom.
    for vertex_key in sorted(set(subgraph.vertex_keys()) - covered_vertices, key=repr):
        vertex = graph.vertex(vertex_key)
        if vertex.kind is SummaryVertexKind.CLASS:
            _emit(Atom(type_predicate, namer.var(vertex_key), vertex.term))
        elif vertex.kind in (SummaryVertexKind.VALUE, SummaryVertexKind.ARTIFICIAL):
            _anchor_value_vertex(vertex_key, graph, namer, _emit, type_predicate)
        elif vertex.kind is SummaryVertexKind.THING:
            raise QueryMappingError(
                "subgraph consists only of the Thing vertex; no query derivable"
            )

    if not atoms:
        raise QueryMappingError("subgraph produced no atoms")
    return ConjunctiveQuery(atoms, distinguished=distinguished)


def _anchor_value_vertex(vertex_key, graph, namer, emit, type_predicate) -> None:
    """Anchor an isolated value vertex through its cheapest incident A-edge.

    Happens when every keyword maps to the same V-vertex: the subgraph is a
    single vertex, but a query needs the attribute and class context, which
    augmentation recorded as incident edges.
    """
    vertex = graph.vertex(vertex_key)
    incident = graph.incident_edges(vertex_key)
    if not incident:
        raise QueryMappingError(f"value vertex {vertex!r} has no incident edges")
    edge = graph.edge(sorted(incident, key=repr)[0])
    source = graph.vertex(edge.source_key)
    if source.kind is SummaryVertexKind.CLASS:
        emit(Atom(type_predicate, namer.var(edge.source_key), source.term))
    if vertex.kind is SummaryVertexKind.VALUE:
        emit(Atom(edge.label, namer.var(edge.source_key), vertex.term))
    else:
        emit(Atom(edge.label, namer.var(edge.source_key), namer.var(vertex_key)))
