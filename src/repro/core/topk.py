"""Algorithm 2: TA-style top-k over candidate subgraphs.

The Threshold-Algorithm adaptation of Section VI-C: candidates are matching
subgraphs; the *highest* cost of the k-ranked candidate is compared against
the *lowest* possible cost of any remaining subgraph — which is the cost of
the cheapest outstanding cursor, since every yet-undiscovered subgraph must
still be completed by some queued cursor and path costs only grow
(Theorem 1).  Termination when ``highestCost < lowestCost`` therefore
guarantees the returned subgraphs are exactly the k cheapest.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, FrozenSet, Hashable, List, Optional

from repro.core.subgraph import MatchingSubgraph


class CandidateList:
    """The sorted, deduplicated candidate list ``LG'`` of Algorithm 2.

    Subgraphs are identified by their element set: distinct connecting
    elements or path combinations assembling the same subgraph collapse to
    the cheapest variant.  The list is trimmed to the k best (Alg 2 line 8);
    ranks of retained candidates can only degrade as new candidates arrive,
    so trimming never discards a final top-k member.

    Equal-cost candidates rank by their canonical element-set key, not by
    discovery order — the ranking is then a function of the augmented
    graph alone, so incrementally maintained and freshly rebuilt indexes
    (whose internal orderings differ) produce identical result lists.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._by_key: Dict[FrozenSet[Hashable], MatchingSubgraph] = {}
        self._sorted: List[tuple] = []  # (cost, order_key, seq, subgraph)
        self._seq = 0
        self.offered = 0
        self.accepted = 0

    def offer(self, subgraph: MatchingSubgraph) -> bool:
        """Insert a candidate; returns True if the list changed."""
        return self.offer_lazy(
            subgraph.canonical_key, subgraph.cost, lambda: subgraph
        )

    def offer_lazy(self, key, cost: float, build) -> bool:
        """:meth:`offer` with deferred subgraph construction.

        The vectorized exploration loop knows a combination's element set
        and cost before materializing the :class:`MatchingSubgraph`;
        passing them with a ``build`` thunk lets the (frequent) duplicate
        offers — same element set at equal-or-higher cost — return without
        constructing anything.  Semantics, counters and ordering are
        exactly :meth:`offer`'s.
        """
        self.offered += 1
        existing = self._by_key.get(key)
        if existing is not None and cost >= existing.cost:
            return False
        subgraph = build()
        if existing is not None:
            self._remove(existing)
        self._by_key[key] = subgraph
        self._seq += 1
        insort(self._sorted, (subgraph.cost, subgraph.order_key, self._seq, subgraph))
        self.accepted += 1
        self._trim()
        return True

    def accept(self, key, existing, subgraph: MatchingSubgraph) -> None:
        """:meth:`offer_lazy`'s accept path for callers that performed
        the duplicate pre-check themselves (the vectorized exploration
        loop): ``existing`` is the current holder of ``key`` (or None),
        already known to cost more.  Counters and ordering are exactly
        :meth:`offer`'s; rejected duplicates must be added to
        :attr:`offered` separately by the caller."""
        self.offered += 1
        if existing is not None:
            self._remove(existing)
        self._by_key[key] = subgraph
        self._seq += 1
        insort(self._sorted, (subgraph.cost, subgraph.order_key, self._seq, subgraph))
        self.accepted += 1
        self._trim()

    def _remove(self, subgraph: MatchingSubgraph) -> None:
        for i, entry in enumerate(self._sorted):
            if entry[-1] is subgraph:
                del self._sorted[i]
                return

    def _trim(self) -> None:
        while len(self._sorted) > self.k:
            dropped = self._sorted.pop()[-1]
            del self._by_key[dropped.canonical_key]

    # ------------------------------------------------------------------
    # The TA bounds
    # ------------------------------------------------------------------

    def kth_cost(self) -> float:
        """``highestCost``: cost of the k-ranked candidate, +inf if fewer
        than k candidates exist yet (no termination before k are found)."""
        if len(self._sorted) < self.k:
            return float("inf")
        return self._sorted[self.k - 1][0]

    def should_terminate(self, lowest_remaining_cost: float) -> bool:
        """Alg 2 line 11: strict ``highestCost < lowestCost``."""
        return self.kth_cost() < lowest_remaining_cost

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def best(self, count: Optional[int] = None) -> List[MatchingSubgraph]:
        """The cheapest candidates, ascending cost."""
        limit = self.k if count is None else min(count, len(self._sorted))
        return [entry[-1] for entry in self._sorted[:limit]]

    def __len__(self) -> int:
        return len(self._sorted)

    def __repr__(self):
        return f"CandidateList(k={self.k}, size={len(self._sorted)}, kth={self.kth_cost():.3f})"
