"""Matching subgraphs (Definition 6), merged from cursor paths.

A K-matching subgraph contains at least one representative element per
keyword and is connected.  Here it arises by merging one cursor path per
keyword at a common connecting element; its cost is the sum of the merged
paths' costs — shared elements deliberately count once **per path**
(Section V), which both rewards tight connections and makes path costs
locally computable for top-k.

During exploration, elements are integer ids (interned per query for
speed); :meth:`MatchingSubgraph.translated` converts a finished subgraph
back to summary-graph element keys.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, List, Sequence, Tuple

from repro.core.cursor import Cursor


#: order_key is a pure function of the element set, so repeated queries
#: (which rediscover the same subgraphs) share one computed string.  The
#: cache is cleared wholesale at the cap rather than LRU-tracked — the
#: entries are tiny and recomputation is cheap.
_ORDER_KEYS: dict = {}
_ORDER_KEY_CAP = 4096


class MatchingSubgraph:
    """A candidate result of the exploration: merged paths + their cost."""

    __slots__ = ("connecting_element", "paths", "elements", "cost", "_order_key")

    def __init__(
        self,
        connecting_element: Hashable,
        paths: Sequence[Sequence[Hashable]],
        cost: float,
    ):
        if not paths:
            raise ValueError("a matching subgraph needs at least one path")
        elements: FrozenSet[Hashable] = frozenset(
            element for path in paths for element in path
        )
        object.__setattr__(self, "connecting_element", connecting_element)
        object.__setattr__(self, "paths", tuple(tuple(p) for p in paths))
        object.__setattr__(self, "elements", elements)
        object.__setattr__(self, "cost", float(cost))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("MatchingSubgraph is immutable")

    @classmethod
    def from_parts(
        cls,
        connecting_element: Hashable,
        paths: Sequence[Sequence[Hashable]],
        elements: FrozenSet[Hashable],
        cost: float,
    ) -> "MatchingSubgraph":
        """Trusted constructor for callers that already hold the merged
        element set (the vectorized loop's deduplication key is exactly
        it): skips recomputing the frozenset from the paths.  The caller
        guarantees ``elements`` equals the union of ``paths``."""
        self = cls.__new__(cls)
        object.__setattr__(self, "connecting_element", connecting_element)
        object.__setattr__(self, "paths", tuple(tuple(p) for p in paths))
        object.__setattr__(self, "elements", elements)
        object.__setattr__(self, "cost", float(cost))
        return self

    @classmethod
    def from_cursors(
        cls, connecting_element: Hashable, cursors: Sequence[Cursor]
    ) -> "MatchingSubgraph":
        """Merge one cursor path per keyword at a connecting element."""
        return cls(
            connecting_element,
            [c.path() for c in cursors],
            sum(c.cost for c in cursors),
        )

    @property
    def canonical_key(self) -> FrozenSet[Hashable]:
        """Identity for deduplication: the element set.

        Different connecting elements or path decompositions can assemble
        the same subgraph; the candidate list keeps only the cheapest.
        """
        return self.elements

    @property
    def order_key(self) -> str:
        """Canonical string over the element set, for deterministic
        ranking among equal-cost candidates (independent of the order in
        which exploration discovered them)."""
        cached = getattr(self, "_order_key", None)
        if cached is None:
            cached = _ORDER_KEYS.get(self.elements)
            if cached is None:
                cached = repr(sorted(self.elements, key=repr))
                if len(_ORDER_KEYS) >= _ORDER_KEY_CAP:
                    _ORDER_KEYS.clear()
                _ORDER_KEYS[self.elements] = cached
            object.__setattr__(self, "_order_key", cached)
        return cached

    @property
    def keyword_origins(self) -> Tuple[Hashable, ...]:
        """The origin element per merged path, in keyword order."""
        return tuple(p[0] for p in self.paths)

    def translated(self, decode: Callable[[Hashable], Hashable]) -> "MatchingSubgraph":
        """A copy with every element mapped through ``decode``."""
        return MatchingSubgraph(
            decode(self.connecting_element),
            [[decode(e) for e in path] for path in self.paths],
            self.cost,
        )

    def edge_keys(self) -> List[Hashable]:
        """Edge elements of the subgraph (4-tuple keys)."""
        from repro.summary.elements import is_edge_key

        return [key for key in self.elements if is_edge_key(key)]

    def vertex_keys(self) -> List[Hashable]:
        """Vertex elements of the subgraph."""
        from repro.summary.elements import is_edge_key

        return [key for key in self.elements if not is_edge_key(key)]

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self):
        return (
            f"MatchingSubgraph(connecting={self.connecting_element!r}, "
            f"elements={len(self.elements)}, cost={self.cost:.3f})"
        )
