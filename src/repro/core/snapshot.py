"""Epoch-versioned read views over one engine's offline structures.

This lives in :mod:`repro.core` (not the serving layer) because the
engine's own search path is built on it — ``search`` is snapshot
acquisition plus pure stages — and the core must stay importable without
dragging in the HTTP/threading serving stack.  :mod:`repro.service`
re-exports it as part of its public API.

The offline layer is mutated *in place* by the
:class:`~repro.maintenance.IndexManager` (that is what makes maintenance
delta-bounded), so a "snapshot" here is not a copy: it is a pin.  An
:class:`EngineSnapshot` records the exact ``(summary version, keyword-index
version)`` pair — the formal snapshot key — together with direct references
to every structure a search pipeline stage reads: the summary graph, the
keyword index, the CSR exploration substrate, the cost model (whose base
cost table is keyed on the pinned summary version), the data graph, the
triple store, and the evaluator.

Consistency is a contract between this pin and the writer coordination in
:class:`~repro.service.EngineService`: while any search holds a read view,
no update batch may begin, so every structure the snapshot references
still answers for the pinned versions.  A snapshot used *outside* such a
hold can observe later versions; :meth:`EngineSnapshot.is_current` makes
that detectable, never silent.
"""

from __future__ import annotations

from typing import Hashable, Tuple

#: The formal snapshot key: (SummaryGraph.snapshot_key, KeywordIndex.snapshot_key).
SnapshotKey = Tuple[int, int]


class EngineSnapshot:
    """An immutable read view pinning one engine state for one search.

    Instances are cheap (no copying — the referenced structures are shared
    and, under the service's reader/writer coordination, immutable for the
    lifetime of the read hold).  All search pipeline stages in
    :mod:`repro.core.engine` take the snapshot explicitly instead of
    reading engine attributes, so a search that started on version *(s, i)*
    finishes on version *(s, i)* even if the engine object has since moved
    on.
    """

    __slots__ = (
        "graph",
        "summary",
        "keyword_index",
        "store",
        "evaluator",
        "cost_model",
        "substrate",
        "summary_version",
        "index_version",
        "epoch",
        "k",
        "dmax",
        "strict_keywords",
        "guided",
        "use_vectorized",
    )

    def __init__(
        self,
        graph,
        summary,
        keyword_index,
        store,
        evaluator,
        cost_model,
        substrate,
        summary_version: int,
        index_version: int,
        epoch: int,
        k: int,
        dmax: int,
        strict_keywords: bool,
        guided: bool,
        use_vectorized=None,
    ):
        self.graph = graph
        self.summary = summary
        self.keyword_index = keyword_index
        self.store = store
        self.evaluator = evaluator
        self.cost_model = cost_model
        #: The version-keyed CSR intern tables, fetched eagerly so the
        #: (potentially expensive) build happens once per epoch instead of
        #: racing inside the first batch of concurrent searches.
        self.substrate = substrate
        self.summary_version = summary_version
        self.index_version = index_version
        #: The IndexManager epoch this snapshot was taken in (diagnostics).
        self.epoch = epoch
        self.k = k
        self.dmax = dmax
        self.strict_keywords = strict_keywords
        self.guided = guided
        #: Tri-state vectorized-kernel override pinned from the engine
        #: (None = auto: kernels when numpy is available).
        self.use_vectorized = use_vectorized

    @property
    def key(self) -> SnapshotKey:
        """The formal (summary version, index version) snapshot key."""
        return (self.summary_version, self.index_version)

    def is_current(self) -> bool:
        """True while the pinned structures still answer for the pinned
        versions (i.e. no update batch has committed since the pin)."""
        return (
            self.summary.version == self.summary_version
            and self.keyword_index.version == self.index_version
        )

    def __repr__(self):
        return (
            f"EngineSnapshot(summary_version={self.summary_version}, "
            f"index_version={self.index_version}, epoch={self.epoch})"
        )
