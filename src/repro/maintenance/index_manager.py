"""Delta propagation through the offline layer (keyword index, summary
graph, triple store).

The offline structures are all *derived* from the data graph:

* the **summary graph** aggregates instances into class vertices and
  projects every R-edge to class level (Definition 4);
* the **keyword index** maps analyzed labels of classes, edge labels, and
  values to elements, carrying the ``[V-vertex, A-edge, (C-vertex_1..n)]``
  neighbor structures (Section IV-A);
* the **triple store** mirrors the triples for query processing.

:class:`IndexManager` maintains all three under ``add_triples`` /
``remove_triples`` by *delta propagation*: from a batch of triple deltas
it computes the affected derived facts — classes whose instance sets
change, summary-edge projections of relation triples whose endpoint types
change, attribute-occurrence incidences whose class context changes — and
applies exactly those as counter adjustments and targeted re-indexing.
Work is proportional to the delta and its neighborhood (the incident
edges of retyped entities), never to the size of the graph or its
indexes, and in particular never to how many triples share a predicate or
a value.

The trickiest dependency is type information: adding or removing a
``type`` triple for entity *e* changes ``types_of(e)``, which silently
moves **every** relation triple incident to *e* to different class-level
summary edges and shifts the class context of *e*'s attribute values in
the keyword index.  The manager therefore snapshots the old projections of
those incident triples before mutating the data graph, decrements them,
and re-increments under the new types afterwards.

Cached query-time state is invalidated on the way out: the summary graph's
mutation ``version`` advances (which expires the cost models' per-element
base-cost caches keyed on it), and the evaluator's selectivity statistics
are dropped.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.keyword.keyword_index import KeywordIndex
from repro.query.evaluator import QueryEvaluator
from repro.rdf.graph import DataGraph, EdgeKind, VertexKind
from repro.rdf.namespace import LABEL_PREDICATES
from repro.rdf.terms import Literal, Term, URI
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore
from repro.summary.elements import THING_KEY, SummaryEdgeKind
from repro.summary.summary_graph import _SUBCLASS_LABEL, SummaryGraph

#: (edge label, source vertex key, target vertex key) — one class-level
#: projection of a relation triple.
_Projection = Tuple[URI, Hashable, Hashable]


class IndexManager:
    """Keeps the offline structures consistent under triple deltas.

    Parameters
    ----------
    graph:
        The data graph (mutated in place).
    keyword_index:
        The keyword index built over ``graph``.
    summary:
        The summary graph built over ``graph``.
    store:
        The triple store mirroring ``graph``.
    evaluator:
        Optional query evaluator whose cached statistics are invalidated
        after every update batch.
    """

    def __init__(
        self,
        graph: DataGraph,
        keyword_index: KeywordIndex,
        summary: SummaryGraph,
        store: TripleStore,
        evaluator: Optional[QueryEvaluator] = None,
    ):
        self.graph = graph
        self.keyword_index = keyword_index
        self.summary = summary
        self.store = store
        self.evaluator = evaluator
        #: Monotone batch counter: the number of committed update epochs.
        #: Together with the summary/keyword-index version counters this
        #: is the serving layer's notion of "which state am I reading".
        self.epoch: int = 0
        self._listeners: List[Tuple[int, int, Callable[[], None]]] = []
        self._epoch_hooks: List[
            Tuple[
                Optional[Callable[[int], None]],
                Optional[Callable[[int], None]],
                Optional[Callable[[int, Sequence[Triple], Sequence[Triple]], None]],
            ]
        ] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def add_listener(self, callback: Callable[[], None], priority: int = 0) -> None:
        """Register a callable invoked after every applied update batch.

        This is the invalidation hook for query-time caches that live
        outside the structures the manager mutates directly (e.g. the
        engine's memoized search results).  Caches keyed on the summary
        graph's or keyword index's version counters expire without it;
        the callback lets them release memory eagerly as well.

        Ordering guarantees: listeners run only after *every* structure
        (data graph, keyword index, summary graph, triple store) reflects
        the batch and the version counters have advanced; they run in
        ascending ``priority``, ties in registration order, so cache
        invalidation (priority 0, registered by the engine constructor)
        always precedes later-registered observers such as service stats.
        Listeners run inside the update epoch — before the commit hooks —
        so a coordinator that excludes readers for the epoch's span
        guarantees no search ever observes a mutated structure whose
        dependent caches have not been invalidated yet.
        """
        self._listeners.append((priority, len(self._listeners), callback))
        self._listeners.sort(key=lambda entry: (entry[0], entry[1]))

    def add_epoch_hooks(
        self,
        begin: Optional[Callable[[int], None]] = None,
        commit: Optional[Callable[[int], None]] = None,
        record: Optional[
            Callable[[int, Sequence[Triple], Sequence[Triple]], None]
        ] = None,
    ) -> None:
        """Register begin/record/commit hooks bracketing every update batch.

        ``begin(epoch)`` runs before the batch touches *any* structure
        (even before the dedup read of the data graph); ``commit(epoch)``
        runs in a ``finally`` — after listeners on success, and on failure
        too — so a hook pair acquiring and releasing a writer lock can
        never deadlock the manager.  The serving layer uses exactly that
        to serialize writes and drain readers around each epoch, which
        covers updates issued directly through the engine as well.

        ``record(epoch, adds, removes)`` is the *write-ahead* hook: it
        runs after the batch is deduplicated against the data graph but
        before any structure mutates, and only for batches that will
        actually toggle triples (and therefore advance :attr:`epoch` on
        success).  The persistence layer's
        :class:`~repro.storage.wal.DeltaLog` appends the batch durably
        here; pairing it with ``commit`` — whose epoch argument reveals
        whether the batch committed (advanced) or failed (unchanged) —
        yields exactly write-ahead-logging semantics.
        """
        self._epoch_hooks.append((begin, commit, record))

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Insert triples, propagating deltas; returns #actually added."""
        return self.apply_batch(adds=triples)

    def remove_triples(self, triples: Iterable[Triple]) -> int:
        """Remove triples, propagating deltas; returns #actually removed."""
        return self.apply_batch(removes=triples)

    def apply_batch(
        self, adds: Iterable[Triple] = (), removes: Iterable[Triple] = ()
    ) -> int:
        """Apply one atomic update epoch (removes then adds).

        Returns the number of triples actually toggled.  Epoch hooks
        bracket the whole application; a batch that toggles nothing still
        runs the hooks but does not advance :attr:`epoch`.
        """
        epoch = self.epoch
        for begin, _, _ in self._epoch_hooks:
            if begin is not None:
                begin(epoch)
        applied = False
        try:
            changed = self._apply(adds=adds, removes=removes)
            if changed:
                self.epoch += 1
            applied = True
            return changed
        finally:
            # Every commit hook runs even if an earlier one raises: the
            # hooks are independent resources (the WAL's commit marker,
            # the serving layer's writer-lock release), and skipping the
            # lock release because the log hit ENOSPC would wedge the
            # server forever.  The first hook failure is re-raised — but
            # only when the batch itself succeeded (explicit flag, not
            # sys.exc_info(), which would also see an unrelated exception
            # the *caller* happens to be handling), so it never masks the
            # in-flight exception.
            first_exc = None
            for _, commit, _ in self._epoch_hooks:
                if commit is not None:
                    try:
                        commit(self.epoch)
                    except BaseException as exc:
                        if first_exc is None:
                            first_exc = exc
            if first_exc is not None and applied:
                raise first_exc

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------

    def _apply(self, adds: Iterable[Triple], removes: Iterable[Triple]) -> int:
        graph = self.graph
        # Deduplicate and drop no-ops so every batch triple really toggles.
        adds = [t for t in dict.fromkeys(adds) if t not in graph]
        removes = [t for t in dict.fromkeys(removes) if t in graph]
        if not adds and not removes:
            return 0

        # Write-ahead hooks: the deduplicated batch is now known to be
        # effective, but nothing has mutated yet — a delta log persisting
        # it here can redo the epoch after a crash at any later point.
        for _, _, record in self._epoch_hooks:
            if record is not None:
                record(self.epoch, adds, removes)

        kind = graph.edge_kind
        type_adds = [t for t in adds if kind(t) is EdgeKind.TYPE]
        type_rems = [t for t in removes if kind(t) is EdgeKind.TYPE]
        sub_adds = [t for t in adds if kind(t) is EdgeKind.SUBCLASS]
        sub_rems = [t for t in removes if kind(t) is EdgeKind.SUBCLASS]
        attr_adds = [t for t in adds if kind(t) is EdgeKind.ATTRIBUTE]
        attr_rems = [t for t in removes if kind(t) is EdgeKind.ATTRIBUTE]
        rel_adds = [t for t in adds if kind(t) is EdgeKind.RELATION]
        rel_rems = [t for t in removes if kind(t) is EdgeKind.RELATION]

        # -- affected derived facts ------------------------------------
        type_changed: Set[Term] = {
            t.subject
            for t in chain(type_adds, type_rems)
            if not isinstance(t.object, Literal)
        }
        affected_classes: Set[Term] = set()
        for t in chain(type_adds, type_rems):
            if not isinstance(t.object, Literal):
                affected_classes.add(t.object)
        for t in chain(sub_adds, sub_rems):
            if not isinstance(t.subject, Literal) and not isinstance(t.object, Literal):
                affected_classes.add(t.subject)
                affected_classes.add(t.object)

        affected_rel_labels: Set[URI] = {t.predicate for t in chain(rel_adds, rel_rems)}

        # Relation triples whose class-level projection moves because an
        # endpoint is retyped; attribute incidences whose class context
        # moves for the same reason.
        reproject: Set[Triple] = set()
        reattribute: Set[Triple] = set()
        for e in type_changed:
            for p, o in graph.outgoing(e):
                if isinstance(o, Literal):
                    reattribute.add(Triple(e, p, o))
                else:
                    reproject.add(Triple(e, p, o))
            for p, s in graph.incoming(e):
                reproject.add(Triple(s, p, e))
        reproject.difference_update(rel_rems)
        reattribute.difference_update(attr_rems)

        # -- decrements under OLD types (snapshotted pre-mutation) ------
        edge_delta: Dict[_Projection, int] = defaultdict(int)
        for t in chain(rel_rems, reproject):
            for projection in self._projections(t):
                edge_delta[projection] -= 1
        # (label, value, classes, delta) events for the keyword index.
        occurrence_events: List[Tuple] = [
            (t.predicate, t.object, graph.types_of(t.subject), -1)
            for t in chain(attr_rems, reattribute)
        ]

        # -- mutate the data graph -------------------------------------
        # All-or-nothing: if any triple is rejected (strict-mode
        # violation), the already-applied prefix is rolled back so the
        # data graph never drifts from the not-yet-updated indexes.
        applied_removes: List[Triple] = []
        applied_adds: List[Triple] = []
        try:
            for t in removes:
                graph.remove(t)
                applied_removes.append(t)
            for t in adds:
                graph.add(t)
                applied_adds.append(t)
        except Exception:
            for t in reversed(applied_adds):
                graph.remove(t)
            for t in reversed(applied_removes):
                graph.add(t)
            raise

        # -- increments under NEW types --------------------------------
        for t in chain(rel_adds, reproject):
            for projection in self._projections(t):
                edge_delta[projection] += 1
        occurrence_events.extend(
            (t.predicate, t.object, graph.types_of(t.subject), +1)
            for t in chain(attr_adds, reattribute)
        )

        # Propagation failures past this point would be internal invariant
        # bugs; surface them with an explicit recovery instruction instead
        # of letting the engine serve silently diverged indexes.
        try:
            self._update_summary(affected_classes, edge_delta, sub_adds, sub_rems)
            self._update_keyword_index(
                affected_classes,
                affected_rel_labels,
                occurrence_events,
                chain(attr_adds, attr_rems),
            )
            self.store.remove_all(removes)
            self.store.add_all(adds)
        except Exception as exc:
            raise RuntimeError(
                "offline-index delta propagation failed after the data graph "
                "was updated; the derived indexes may have diverged — rebuild "
                "the engine from the data graph"
            ) from exc
        if self.evaluator is not None:
            self.evaluator.invalidate_statistics()
        for _, _, callback in self._listeners:
            callback()

        return len(adds) + len(removes)

    def _projections(self, triple: Triple) -> List[_Projection]:
        """Class-level summary projections of one relation triple, under the
        data graph's *current* types (Definition 4's aggregation rule)."""
        graph = self.graph
        class_key = self.summary.class_key
        source_classes = graph.types_of(triple.subject) or (None,)
        target_classes = graph.types_of(triple.object) or (None,)
        return [
            (triple.predicate, class_key(sc), class_key(tc))
            for sc in source_classes
            for tc in target_classes
        ]

    # ------------------------------------------------------------------
    # Summary graph
    # ------------------------------------------------------------------

    def _update_summary(
        self,
        affected_classes: Set[Term],
        edge_delta: Dict[_Projection, int],
        sub_adds: Sequence[Triple],
        sub_rems: Sequence[Triple],
    ) -> None:
        graph, summary = self.graph, self.summary

        # Class vertices first (new edges may anchor on them).
        for cls in affected_classes:
            key = summary.class_key(cls)
            if graph.vertex_kind(cls) is VertexKind.CLASS:
                agg = len(graph.instances_of(cls))
                if summary.has_element(key):
                    summary.set_vertex_agg_count(key, agg)
                else:
                    summary.add_class_vertex(cls, agg_count=agg)

        # Thing aggregates the untyped entities; its count moves whenever
        # entities appear, disappear, or are (un)typed.
        untyped = graph.untyped_entity_count
        if untyped > 0 or summary.has_element(THING_KEY):
            summary.ensure_thing(agg_count=untyped)

        # Relation-edge projections.
        for (label, sk, tk), delta in edge_delta.items():
            if delta == 0:
                continue
            if delta > 0 and (sk == THING_KEY or tk == THING_KEY):
                summary.ensure_thing(agg_count=graph.untyped_entity_count)
            summary.adjust_edge_agg_count(
                label, SummaryEdgeKind.RELATION, sk, tk, delta
            )

        # Subclass edges mirror the direct subclass pairs.
        for t in sub_rems:
            sub, sup = t.subject, t.object
            key = summary.edge_key(
                _SUBCLASS_LABEL, summary.class_key(sub), summary.class_key(sup)
            )
            if sup not in graph.superclasses_of(sub) and summary.has_element(key):
                summary.remove_edge(key)
        for t in sub_adds:
            sub, sup = t.subject, t.object
            if isinstance(sub, Literal) or isinstance(sup, Literal):
                continue
            if sup in graph.superclasses_of(sub):
                summary.add_edge(
                    _SUBCLASS_LABEL,
                    SummaryEdgeKind.SUBCLASS,
                    summary.class_key(sub),
                    summary.class_key(sup),
                    agg_count=1,
                )

        # Drop vertices whose class disappeared (their edges are gone by
        # now: no instances and no subclass pairs can remain).
        for cls in affected_classes:
            key = summary.class_key(cls)
            if graph.vertex_kind(cls) is not VertexKind.CLASS and summary.has_element(key):
                summary.remove_vertex(key)
        if (
            graph.untyped_entity_count == 0
            and summary.has_element(THING_KEY)
            and summary.degree(THING_KEY) == 0
        ):
            summary.remove_vertex(THING_KEY)

        stats = graph.stats()
        summary.set_totals(
            stats["entities"], stats["relation_edges"], stats["attribute_edges"]
        )

    # ------------------------------------------------------------------
    # Keyword index
    # ------------------------------------------------------------------

    def _update_keyword_index(
        self,
        affected_classes: Set[Term],
        affected_rel_labels: Set[URI],
        occurrence_events: Iterable[Tuple],
        attr_delta: Iterable[Triple],
    ) -> None:
        index = self.keyword_index
        for cls in affected_classes:
            index.refresh_class(cls)
        # A label-bearing attribute triple can change the display label a
        # class is indexed under.
        for t in attr_delta:
            if t.predicate in LABEL_PREDICATES and t.subject not in affected_classes:
                index.refresh_class(t.subject)
        for label in affected_rel_labels:
            index.refresh_relation_label(label)
        for label, value, classes, delta in occurrence_events:
            index.adjust_attribute_occurrence(label, value, classes, delta)
