"""Incremental maintenance of the offline indexes.

The offline phase of the paper (Fig. 2) builds three structures over the
data graph — the keyword index, the summary graph, and the triple store.
:class:`~repro.maintenance.index_manager.IndexManager` keeps all three
consistent under triple-level updates without rebuilding, which is what a
live deployment needs when the data changes under it.
"""

from repro.maintenance.index_manager import IndexManager

__all__ = ["IndexManager"]
