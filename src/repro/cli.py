"""Command-line interface: subcommands over the engine and the serving layer.

::

    repro search "cimiano 2006" --dataset dblp --execute   # one-shot search
    repro serve --dataset dblp --port 8080 --cache 256     # HTTP service
    repro bench --dataset dblp --clients 4 --requests 20   # closed-loop QPS
    repro build --dataset dblp -o dblp.reprobundle         # offline artifact
    repro compact dblp.reprobundle                         # fold WAL into it
    repro eval run --dataset tap                           # quality report
    repro eval check --dataset example --bundle ex.reprobundle  # CI gate

The original positional form (``repro "cimiano 2006" ...``) is kept as an
alias for ``repro search`` — any first argument that is not a subcommand
name is treated as the keyword query.

``search``/``serve``/``bench`` accept ``--bundle PATH`` to warm-start
from a ``repro build`` artifact instead of rebuilding the offline layer
from raw triples; serving then starts in milliseconds and ``/update``
epochs are logged durably next to the bundle.

Examples::

    python -m repro "cimiano 2006" --dataset dblp --execute
    python -m repro "2006 cimiano aifb" --dataset example --cost-model c1
    python -m repro "cimiano before 2005" --dataset dblp --filters
    python -m repro "professor department0" --data my_data.nt --guided
    python -m repro "new paper" --data base.nt --update-ntriples delta.nt
    python -m repro build --data my_data.nt -o my_data.reprobundle
    python -m repro build --data big.nt --stream --spill-budget 64 -o big.reprobundle
    python -m repro serve --bundle my_data.reprobundle --port 8080
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import __version__
from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.ntriples import parse_ntriples

SUBCOMMANDS = ("search", "serve", "bench", "build", "compact", "eval")


def _progress_lines(lines, every: int, label: str = "ingest"):
    """Pass lines through, reporting throughput to stderr every ``every``.

    Zero (the default for commands without ``--progress-every``) disables
    reporting — the generator then adds nothing but a loop over its input.
    """
    if not every:
        yield from lines
        return
    import time

    started = time.perf_counter()
    count = 0
    for line in lines:
        count += 1
        if count % every == 0:
            elapsed = time.perf_counter() - started
            rate = count / elapsed if elapsed > 0 else 0.0
            print(
                f"# {label}: {count:,} lines in {elapsed:.1f}s ({rate:,.0f}/s)",
                file=sys.stderr,
            )
        yield line


def _load_graph(args) -> DataGraph:
    if args.data is not None:
        # The file handle is handed to the parser as a line iterator —
        # the whole file is never read into memory (see parse_ntriples).
        with open(args.data) as fh:
            lines = _progress_lines(fh, getattr(args, "progress_every", 0) or 0)
            return DataGraph(parse_ntriples(lines))
    from repro.datasets import graph_for

    try:
        return graph_for(args.dataset, scale=args.scale)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_int_list(text: str) -> list:
    """Comma-separated positive ints: the bench matrix axes (``1,4``)."""
    try:
        values = [int(x) for x in text.split(",") if x.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty list")
    for value in values:
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return values


def _worker_count_list(text: str) -> list:
    """Like :func:`_positive_int_list` but 0 (in-process tier) is legal."""
    try:
        values = [int(x) for x in text.split(",") if x.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty list")
    for value in values:
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return values


def _add_dataset_args(
    parser: argparse.ArgumentParser, bundle: bool = True
) -> None:
    parser.add_argument(
        "--dataset",
        choices=("example", "dblp", "lubm", "tap"),
        default="example",
        help="bundled dataset to search (default: the paper's running example)",
    )
    parser.add_argument("--data", help="path to an N-Triples file to search instead")
    parser.add_argument("--scale", type=int, default=1000, help="dataset scale knob")
    if bundle:
        parser.add_argument(
            "--bundle",
            metavar="PATH",
            help="warm-start from a `repro build` index bundle instead of "
            "building the offline layer from triples (replays and attaches "
            "the bundle's delta log)",
        )


#: Engine configuration applied when a flag is not given on the command
#: line.  The parser defaults are ``None`` so `--bundle` can distinguish
#: "user asked for this" (flag wins) from "unspecified" (the config the
#: bundle was built with wins — overriding it silently would serve the
#: artifact under a different cost model than it was built for).
_ENGINE_DEFAULTS = {"k": 5, "cost_model": "c3", "dmax": 10, "guided": False}


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-k",
        type=_positive_int,
        default=None,
        help="number of queries to compute (>= 1; default 5, or the "
        "bundle's setting with --bundle)",
    )
    parser.add_argument(
        "--cost-model",
        choices=("c1", "c2", "c3", "pagerank"),
        default=None,
        help="scoring function (Section V; default c3, or the bundle's "
        "setting with --bundle)",
    )
    parser.add_argument(
        "--dmax", type=int, default=None,
        help="exploration depth bound (default 10, or the bundle's setting "
        "with --bundle)",
    )
    parser.add_argument(
        "--guided", action=argparse.BooleanOptionalAction, default=None,
        help="distance-information pruning (--no-guided overrides a "
        "bundle built with --guided)",
    )
    parser.add_argument(
        "--vectorized", dest="use_vectorized",
        action=argparse.BooleanOptionalAction, default=None,
        help="numpy exploration kernels (--no-vectorized forces the "
        "scalar path; default: auto, or the bundle's setting with "
        "--bundle)",
    )
    parser.add_argument(
        "--index-tier",
        choices=("memory", "mmap"),
        default=None,
        help="how --bundle serves the keyword index and triple store: "
        "'memory' materializes them at load (default); 'mmap' reads the "
        "format-v2 queryable sections in place — cold start stays "
        "O(metadata) and resident memory O(touched data)",
    )


def _resolve_engine_args(args) -> None:
    """Fill unset engine flags with the stock defaults (non-bundle paths)."""
    for name, value in _ENGINE_DEFAULTS.items():
        if getattr(args, name) is None:
            setattr(args, name, value)


def _build_engine(
    args, search_cache_size: int = 0, writer: bool = False
) -> KeywordSearchEngine:
    index_tier = getattr(args, "index_tier", None)
    if index_tier == "mmap" and not getattr(args, "bundle", None):
        # The mmap tier reads bundle sections in place; there is nothing
        # to map when the offline layer is built fresh in this process.
        raise SystemExit(
            "repro: --index-tier mmap requires --bundle (build one with "
            "`repro build` first)"
        )
    if getattr(args, "bundle", None):
        from repro.storage import BundleError, WalError

        if args.data is not None or args.dataset != "example" or args.scale != 1000:
            # Silently serving the bundle while the user believes their
            # --data/--dataset took effect is worse than an error.
            raise SystemExit(
                "repro: --bundle conflicts with --data/--dataset/--scale — "
                "the bundle already contains its data; rebuild it with "
                "`repro build` to change datasets"
            )

        # Warm start: the offline layer comes off disk.  Flags the user
        # actually passed override the saved engine configuration;
        # unspecified ones keep the settings the bundle was built with
        # (load() ignores None overrides).  Only commands that can write
        # (`serve` with /update, `search` with --update/--remove-ntriples)
        # attach the WAL and take its single-writer lock; read-only
        # commands coexist with a running server on the same artifact.
        try:
            engine = KeywordSearchEngine.load(
                args.bundle,
                attach_wal=writer,
                cost_model=args.cost_model,
                k=args.k,
                dmax=args.dmax,
                guided=args.guided,
                use_vectorized=args.use_vectorized,
                search_cache_size=search_cache_size,
                index_tier=index_tier or "memory",
            )
        except FileNotFoundError as exc:
            raise SystemExit(f"repro: --bundle: {exc}") from exc
        except (BundleError, WalError) as exc:
            raise SystemExit(f"repro: --bundle: {exc}") from exc
        # Post-load: resolve the remaining None flags to the engine's
        # effective settings for code that reads them directly
        # (search_command's k/dmax forwarding).
        if args.k is None:
            args.k = engine.k
        if args.dmax is None:
            args.dmax = engine.dmax
        if args.guided is None:
            args.guided = engine.guided
        if args.cost_model is None:
            args.cost_model = engine.cost_model.name
        artifact = engine.artifact
        print(
            f"# bundle: {args.bundle} (epoch {artifact['epoch_at_save']}, "
            f"+{artifact['wal_epochs_replayed']} WAL epochs, "
            f"{1000 * artifact['load_seconds']:.1f}ms)",
            file=sys.stderr,
        )
        return engine
    _resolve_engine_args(args)
    graph = _load_graph(args)
    print(f"# dataset: {graph}", file=sys.stderr)
    return KeywordSearchEngine(
        graph,
        cost_model=args.cost_model,
        k=args.k,
        dmax=args.dmax,
        guided=args.guided,
        use_vectorized=args.use_vectorized,
        search_cache_size=search_cache_size,
    )


# ----------------------------------------------------------------------
# repro search (also the legacy positional form)
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The ``repro search`` argument parser (the legacy top-level shape)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword search on RDF data through top-k query computation "
        "(Tran et al., ICDE 2009).  Subcommands: search (this form; the bare "
        "positional query is an alias), serve (HTTP service), bench "
        "(closed-loop throughput).",
        epilog="See also: `repro serve --help` and `repro bench --help`.",
    )
    parser.add_argument("keywords", help="the keyword query, e.g. 'cimiano 2006'")
    _add_dataset_args(parser)
    parser.add_argument(
        "--update-ntriples",
        metavar="FILE",
        action="append",
        default=[],
        help="N-Triples file of triples to ADD through incremental index "
        "maintenance before searching (repeatable)",
    )
    parser.add_argument(
        "--remove-ntriples",
        metavar="FILE",
        action="append",
        default=[],
        help="N-Triples file of triples to REMOVE through incremental index "
        "maintenance before searching (repeatable)",
    )
    _add_engine_args(parser)
    parser.add_argument(
        "--filters",
        action="store_true",
        help="recognize comparison keywords (before/after/ranges) as FILTERs",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="run the top query and print its answers",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-query timing breakdown (keyword mapping, "
        "augmentation, exploration, query mapping) to stderr",
    )
    parser.add_argument(
        "--sparql", action="store_true", help="print SPARQL instead of logic syntax"
    )
    parser.add_argument(
        "--limit", type=int, default=10, help="answer limit with --execute"
    )
    return parser


def search_command(argv) -> int:
    args = build_parser().parse_args(argv)
    engine = _build_engine(
        args, writer=bool(args.update_ntriples or args.remove_ntriples)
    )
    graph = engine.graph

    # Apply deltas through the incremental index maintenance path — the
    # offline indexes are updated in place, not rebuilt.
    for path in args.update_ntriples:
        with open(path) as fh:
            count = engine.add_triples(list(parse_ntriples(fh)))
        print(f"# +{count} triples from {path}", file=sys.stderr)
    for path in args.remove_ntriples:
        with open(path) as fh:
            count = engine.remove_triples(list(parse_ntriples(fh)))
        print(f"# -{count} triples from {path}", file=sys.stderr)

    if args.filters:
        if args.profile:
            print("# --profile is not supported with --filters", file=sys.stderr)
        filtered = engine.search_with_filters(
            args.keywords, k=args.k, dmax=args.dmax
        )
        if not filtered:
            print("no interpretations found", file=sys.stderr)
            return 1
        for rank, fq in enumerate(filtered, start=1):
            print(f"[{rank}] {fq.to_sparql() if args.sparql else fq}")
        if args.execute:
            print()
            for answer in engine.execute_filtered(filtered[0], limit=args.limit):
                print(" ", {str(v): graph.label_of(t) for v, t in answer.as_dict().items()})
        return 0

    result = engine.search(args.keywords, k=args.k)
    if args.profile:
        timings = result.timings
        breakdown = "  ".join(
            f"{stage}={1000 * timings.get(stage, 0.0):.2f}ms"
            for stage in (
                "keyword_mapping",
                "augmentation",
                "exploration",
                "query_mapping",
                "total",
            )
        )
        print(f"# timings: {breakdown}", file=sys.stderr)
    if result.ignored_keywords:
        print(f"# ignored keywords: {result.ignored_keywords}", file=sys.stderr)
    if not result.candidates:
        print("no interpretations found", file=sys.stderr)
        return 1
    for candidate in result:
        body = candidate.to_sparql() if args.sparql else str(candidate.query)
        print(f"[{candidate.rank}] cost={candidate.cost:.2f}  {body}")
        print(f"    {candidate.verbalize()}")
    if args.execute:
        print()
        for answer in engine.execute(result.best(), limit=args.limit):
            print(" ", {str(v): graph.label_of(t) for v, t in answer.as_dict().items()})
    return 0


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------

def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve /search, /execute, /update, /stats as JSON over HTTP.",
    )
    _add_dataset_args(parser)
    _add_engine_args(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker *processes* fanning out /search and /execute over a "
        "shared mmap bundle (0 = classic in-process serving; each worker "
        "gets its own GIL, so cold CPU-bound throughput scales with N)",
    )
    parser.add_argument(
        "--threads", type=_positive_int, default=4,
        help="in-process thread-pool size for batched search (workers=0 tier)",
    )
    parser.add_argument(
        "--max-pending", type=_positive_int, default=64,
        help="admission bound on in-flight queries (excess gets HTTP 429)",
    )
    parser.add_argument(
        "--max-queue-wait", type=float, default=None, metavar="SECONDS",
        help="bound on time a query may wait for admission/an idle worker, "
        "separately from execution (excess gets HTTP 429)",
    )
    parser.add_argument(
        "--cache", type=int, default=256, metavar="N",
        help="search-result memo size (0 disables)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-query deadline, seconds, for batched search",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def _dispatch_overrides(args) -> dict:
    """Engine-configuration overrides forwarded to every worker process,
    so the whole tier serves one configuration (the dispatcher's)."""
    return {
        "k": args.k,
        "cost_model": args.cost_model,
        "dmax": args.dmax,
        "guided": args.guided,
        "use_vectorized": args.use_vectorized,
        "search_cache_size": max(0, args.cache),
        "index_tier": getattr(args, "index_tier", None),
    }


def _stage_bundle(engine, prefix: str) -> str:
    """Save a just-built engine as the temp bundle the workers will mmap.

    ``--workers N`` without ``--bundle`` still works: the offline layer is
    built once in this process, staged to disk, and every worker maps the
    staged artifact — the same shared-page-cache shape as a prebuilt one.
    """
    import tempfile

    directory = tempfile.mkdtemp(prefix=prefix)
    path = f"{directory}/staged.reprobundle"
    info = engine.save(path)
    print(
        f"# staged bundle for worker processes: {path} "
        f"({info['bytes']} bytes)",
        file=sys.stderr,
    )
    return path


def serve_command(argv) -> int:
    import signal
    import threading

    from repro.service import DispatchService, EngineService, ReproServer

    args = build_serve_parser().parse_args(argv)
    if args.workers < 0:
        raise SystemExit(f"repro serve: --workers must be >= 0, got {args.workers}")
    engine = _build_engine(args, search_cache_size=max(0, args.cache), writer=True)

    if args.workers > 0:
        bundle = getattr(args, "bundle", None)
        dispatch_engine = engine
        if not bundle:
            bundle = _stage_bundle(engine, "repro-serve-")
            # The built engine has no WAL; the dispatcher loads its writer
            # from the staged bundle so /update epochs are logged durably
            # where the workers can replay them.
            dispatch_engine = None
        service = DispatchService(
            bundle,
            workers=args.workers,
            engine=dispatch_engine,
            overrides=_dispatch_overrides(args),
            max_pending=args.max_pending,
            max_queue_wait=args.max_queue_wait,
        )
        print(f"# dispatch tier: {args.workers} worker processes", file=sys.stderr)
    else:
        service = EngineService(
            engine,
            workers=args.threads,
            max_pending=args.max_pending,
            default_timeout=args.timeout,
            max_queue_wait=args.max_queue_wait,
        )
    server = ReproServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    # Graceful drain: SIGTERM stops accepting, finishes in-flight work,
    # then shuts the worker pool down cleanly (shutdown() must run off
    # the serving thread, so hand it to a helper).
    def _drain(signum, frame):
        print("# SIGTERM: draining", file=sys.stderr)
        threading.Thread(target=server._httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    print(f"# serving on {server.url}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    finally:
        server.close()
        service.close()
    return 0


# ----------------------------------------------------------------------
# repro bench
# ----------------------------------------------------------------------

_BENCH_QUERIES = {
    "example": ["cimiano 2006", "aifb publication", "2006 article"],
    "lubm": ["professor department0", "student course", "university publication"],
}


def _bench_queries(args, engine) -> list:
    """A workload whose keywords actually match the chosen data.

    Curated sets for the bundled datasets; for ``--data`` files (or any
    gap), keywords are sampled from the engine's own keyword index so the
    benchmark always exercises the full pipeline instead of silently
    measuring no-match short-circuits.
    """
    if args.queries:
        return list(args.queries)
    # A bundle's contents are opaque to the dataset flags (which stay at
    # their defaults), so the curated per-dataset workloads would silently
    # benchmark no-match short-circuits; sample from the loaded data.
    if args.data is None and not getattr(args, "bundle", None):
        if args.dataset == "dblp":
            from repro.datasets.workloads import dblp_performance_queries

            return [" ".join(q.keywords) for q in dblp_performance_queries()[:5]]
        if args.dataset == "tap":
            from repro.datasets.workloads import tap_effectiveness_workload

            return [" ".join(q.keywords) for q in tap_effectiveness_workload()[:5]]
        if args.dataset in _BENCH_QUERIES:
            return _BENCH_QUERIES[args.dataset]
    # Derive from the data: words of the first few indexed labels.
    words = []
    for term in engine.graph.triples:
        if not hasattr(term.object, "lexical"):
            continue
        for word in str(term.object.lexical).split():
            if word.isalpha() and len(word) > 2:
                words.append(word.lower())
        if len(words) >= 8:
            break
    if not words:
        raise SystemExit("bench: no textual labels in the data; pass --query")
    return [" ".join(words[i : i + 2]) for i in range(0, min(len(words), 8), 2)]


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Closed-loop throughput (QPS, p50/p99) against the "
        "serving layer.",
    )
    _add_dataset_args(parser)
    _add_engine_args(parser)
    parser.add_argument(
        "--clients", type=_positive_int_list, default=[1, 4], metavar="M[,M...]",
        help="closed-loop client counts — one benchmark row per value "
        "(default: 1,4)",
    )
    parser.add_argument(
        "--requests", type=_positive_int, default=20,
        help="requests per client",
    )
    parser.add_argument(
        "--workers", type=_worker_count_list, default=[0], metavar="N[,N...]",
        help="worker-process counts — the matrix crosses every value with "
        "every --clients value (0 = in-process serving; default: 0)",
    )
    parser.add_argument(
        "--threads", type=_positive_int, default=4,
        help="in-process thread-pool size for the workers=0 rows",
    )
    parser.add_argument(
        "--cache", type=int, default=0, metavar="N",
        help="search-result memo size (0 = every request runs the pipeline)",
    )
    parser.add_argument(
        "--query", dest="queries", action="append", default=[], metavar="KEYWORDS",
        help="benchmark query (repeatable; default: a workload matching "
        "the chosen dataset)",
    )
    return parser


def bench_command(argv) -> int:
    from repro.core import kernels
    from repro.service import DispatchService, EngineService, closed_loop_benchmark

    args = build_bench_parser().parse_args(argv)
    if args.use_vectorized is not None:
        # Benchmarks flip the module-level switch too: an apples-to-apples
        # scalar baseline must also cover the prefuse/shared-frontier
        # paths, which consult the global kill switch.
        kernels.set_enabled(args.use_vectorized)
    print(f"# {kernels.status_line()}")
    engine = _build_engine(args, search_cache_size=max(0, args.cache))
    queries = _bench_queries(args, engine)

    worker_counts = sorted(set(args.workers))
    client_counts = sorted(set(args.clients))
    max_pending = max(client_counts) * args.requests + 1

    bundle = getattr(args, "bundle", None)
    if any(n > 0 for n in worker_counts) and not bundle:
        bundle = _stage_bundle(engine, "repro-bench-")

    # The full matrix: every worker tier crossed with every client count,
    # so `repro bench --clients 1,4 --workers 0,1,2,4` regenerates the
    # serving figure in one command.
    for workers in worker_counts:
        if workers == 0:
            service = EngineService(
                engine, workers=args.threads, max_pending=max_pending
            )
        else:
            service = DispatchService(
                bundle,
                workers=workers,
                overrides=_dispatch_overrides(args),
                max_pending=max_pending,
            )
        try:
            for clients in client_counts:
                row = closed_loop_benchmark(
                    service, queries, clients=clients,
                    requests_per_client=args.requests,
                )
                print(
                    f"workers={workers:<2d} clients={row['clients']:<3d} "
                    f"completed={row['completed']:<5d} "
                    f"qps={row['qps']:8.1f}  p50={row['p50_ms']:7.2f}ms  "
                    f"p99={row['p99_ms']:7.2f}ms  errors={row['errors']}"
                )
            if workers > 0:
                rows = service.stats()["workers"]
                vmhwm = [w.get("vmhwm_kb") for w in rows if w.get("alive")]
                pss = [w.get("pss_kb") for w in rows if w.get("alive")]
                print(
                    f"# workers={workers}: per-worker VmHWM_kb={vmhwm} "
                    f"Pss_kb={pss}"
                )
        finally:
            service.close()
    return 0


# ----------------------------------------------------------------------
# repro build / repro compact (the offline artifact lifecycle)
# ----------------------------------------------------------------------

def build_build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro build",
        description="Build the offline layer once and save it as a versioned "
        "index bundle that `search`/`serve`/`bench --bundle` warm-start from.",
    )
    _add_dataset_args(parser, bundle=False)
    _add_engine_args(parser)
    parser.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="PATH",
        help="bundle file to write (conventionally *.reprobundle)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing bundle (refused otherwise)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="out-of-core build: consume the triple source as an iterator "
        "and spool intermediates to disk, so peak memory is bounded by the "
        "keyword-class contexts + summary graph + the spill budget instead "
        "of the corpus size",
    )
    parser.add_argument(
        "--spill-budget",
        type=_positive_int,
        default=64,
        metavar="MB",
        help="with --stream: in-memory budget per sort/postings buffer "
        "before spilling a sorted run to disk (default 64 MB)",
    )
    parser.add_argument(
        "--progress-every",
        type=_positive_int,
        default=100_000,
        metavar="N",
        help="log an ingestion throughput line every N triples/lines "
        "(default 100000)",
    )
    return parser


def _stream_triple_source(args):
    """(context manager, triple iterator) for ``repro build --stream``.

    Every branch returns a *lazy* source: a file handle parsed line by
    line, or a dataset generator.  Nothing here materializes the corpus.
    """
    import contextlib

    if args.data is not None:
        fh = open(args.data)
        lines = _progress_lines(fh, args.progress_every, label="parse")
        return fh, parse_ntriples(lines)
    if args.dataset == "lubm":
        from repro.datasets import LubmConfig, iter_lubm_triples

        config = LubmConfig(universities=max(1, args.scale // 1000))
        return contextlib.nullcontext(), iter_lubm_triples(config)
    # The remaining bundled datasets are small; iterating the generated
    # graph keeps the streamed builder's input shape uniform.
    return contextlib.nullcontext(), iter(_load_graph(args))


def build_command(argv) -> int:
    from repro.storage import BundleError, WalError

    args = build_build_parser().parse_args(argv)
    if args.stream:
        return _stream_build_command(args)
    engine = _build_engine(args)
    try:
        info = engine.save(args.output, force=args.force)
    except (BundleError, WalError) as exc:
        # WalError covers overwriting an artifact whose delta log another
        # engine currently holds — same clean refusal as `repro compact`.
        print(f"repro build: {exc}", file=sys.stderr)
        return 1
    print(
        f"# wrote {info['path']}: {info['bytes']} bytes, "
        f"{info['sections']} sections, format v{info['format_version']}, "
        f"epoch {info['epoch']}",
        file=sys.stderr,
    )
    return 0


def _stream_build_command(args) -> int:
    from repro.storage import BundleError, WalError, build_bundle_streaming

    if getattr(args, "bundle", None):
        raise SystemExit("repro build: --stream builds from triples, not --bundle")
    _resolve_engine_args(args)

    def progress(count: int, elapsed: float) -> None:
        rate = count / elapsed if elapsed > 0 else 0.0
        print(
            f"# build --stream: {count:,} triples in {elapsed:.1f}s "
            f"({rate:,.0f} triples/s)",
            file=sys.stderr,
        )

    source, triples = _stream_triple_source(args)
    try:
        with source:
            info = build_bundle_streaming(
                triples,
                args.output,
                force=args.force,
                cost_model=args.cost_model,
                k=args.k,
                dmax=args.dmax,
                guided=args.guided,
                use_vectorized=args.use_vectorized,
                spill_budget_bytes=args.spill_budget * 1024 * 1024,
                progress=progress,
                progress_every=args.progress_every,
            )
    except (BundleError, WalError) as exc:
        print(f"repro build: {exc}", file=sys.stderr)
        return 1
    print(
        f"# wrote {info['path']}: {info['bytes']} bytes, "
        f"{info['sections']} sections, format v{info['format_version']}, "
        f"epoch {info['epoch']} "
        f"(streamed {info['triples']:,} triples, {info['terms']:,} terms, "
        f"{info['postings_runs']} posting runs, {info['build_seconds']:.1f}s)",
        file=sys.stderr,
    )
    return 0


def build_compact_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro compact",
        description="Fold a bundle's write-ahead delta log back into the "
        "bundle and truncate the log.",
    )
    parser.add_argument("bundle", help="path to the *.reprobundle file")
    return parser


def compact_command(argv) -> int:
    from repro.storage import BundleError, WalError, compact_bundle

    args = build_compact_parser().parse_args(argv)
    try:
        info = compact_bundle(args.bundle)
    except FileNotFoundError as exc:
        print(f"repro compact: {exc}", file=sys.stderr)
        return 1
    except (BundleError, WalError) as exc:
        print(f"repro compact: {exc}", file=sys.stderr)
        return 1
    print(
        f"# compacted {info['path']}: folded {info['wal_epochs_folded']} WAL "
        f"epochs, now at epoch {info['epoch']} ({info['bytes']} bytes)",
        file=sys.stderr,
    )
    return 0


# ----------------------------------------------------------------------
# eval: the retrieval-quality harness (repro.quality)
# ----------------------------------------------------------------------

#: Conventional layout, relative to the working directory (the repo root
#: in CI).  Goldens and baselines are committed; reports are not.
_EVAL_GOLDENS = "eval/goldens/{dataset}.jsonl"
_EVAL_BASELINE = "eval/baselines/{dataset}.json"
_EVAL_REPORTS_DIR = "eval/reports"


def _add_eval_engine_args(parser: argparse.ArgumentParser) -> None:
    """Engine-configuration flags shared by ``eval run/check/seed``.

    Unlike ``repro search``, an eval invocation combines ``--dataset``
    (selects goldens + intent workload) with an optional ``--bundle``
    (supplies the offline structures), so it does not go through
    ``_build_engine``'s mutual-exclusion checks.
    """
    parser.add_argument(
        "--dataset",
        required=True,
        choices=("example", "dblp", "lubm", "tap"),
        help="dataset name: selects the golden file, the intent workload, "
        "and (without --bundle) the generated graph",
    )
    parser.add_argument(
        "--bundle",
        default=None,
        help="evaluate an engine loaded from this .reprobundle instead of "
        "building the offline layer fresh",
    )
    parser.add_argument(
        "--scale", type=int, default=1000,
        help="generator scale for fresh builds (same meaning as repro "
        "build --scale; ignored with --bundle)",
    )
    parser.add_argument(
        "--perturb-costs", action="store_true",
        help="deliberately invert the cost model's ranking — proves the "
        "regression gate fires (eval check must then exit nonzero)",
    )
    _add_engine_args(parser)


def _add_eval_metric_args(parser: argparse.ArgumentParser) -> None:
    from repro.quality.runner import DEFAULT_ANSWER_DEPTH, DEFAULT_EVAL_K

    parser.add_argument(
        "--eval-k", type=_positive_int, default=DEFAULT_EVAL_K,
        help=f"candidate depth for query-level metrics (default "
        f"{DEFAULT_EVAL_K})",
    )
    parser.add_argument(
        "--answer-depth", type=_positive_int, default=DEFAULT_ANSWER_DEPTH,
        help=f"answer depth for answer-level metrics (default "
        f"{DEFAULT_ANSWER_DEPTH})",
    )


def build_eval_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro eval",
        description="Retrieval-quality evaluation against golden cases: "
        "Recall@k / MRR / nDCG at the query-candidate and executed-answer "
        "level, versioned reports, and a baseline regression gate.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    run = sub.add_parser(
        "run", help="evaluate a configuration and write a versioned report"
    )
    _add_eval_engine_args(run)
    _add_eval_metric_args(run)
    run.add_argument(
        "--goldens", default=None,
        help=f"golden file (default {_EVAL_GOLDENS})",
    )
    run.add_argument(
        "--reports-dir", default=_EVAL_REPORTS_DIR,
        help=f"where reports go (default {_EVAL_REPORTS_DIR})",
    )
    run.add_argument(
        "--baseline", default=None,
        help=f"baseline to compare against (default {_EVAL_BASELINE})",
    )
    run.add_argument(
        "--update-baseline", action="store_true",
        help="bless this run's aggregates as the committed baseline",
    )
    run.add_argument(
        "--include-unblessed", action="store_true",
        help="also evaluate proposed (unblessed) golden cases",
    )
    run.add_argument(
        "--json", action="store_true",
        help="print the full report JSON to stdout",
    )

    seed = sub.add_parser(
        "seed", help="propose golden cases from a trusted engine or endpoint"
    )
    _add_eval_engine_args(seed)
    _add_eval_metric_args(seed)
    seed.add_argument(
        "--endpoint", default=None,
        help="seed from a live `repro serve` URL instead of in-process "
        "(intent grades then top out at 2: JSON does not round-trip "
        "query objects)",
    )
    seed.add_argument(
        "-o", "--output", default=None,
        help="where to write the proposals (default: the golden path "
        "with --bless, else <golden path>.proposed.jsonl)",
    )
    seed.add_argument(
        "--bless", action="store_true",
        help="mark the seeded cases blessed (trusted workflows only; the "
        "default leaves them as proposals for human review)",
    )

    check = sub.add_parser(
        "check", help="the regression gate: exit 1 if any metric regressed"
    )
    _add_eval_engine_args(check)
    _add_eval_metric_args(check)
    check.add_argument(
        "--goldens", default=None,
        help=f"golden file (default {_EVAL_GOLDENS})",
    )
    check.add_argument(
        "--baseline", default=None,
        help=f"baseline to gate against (default {_EVAL_BASELINE})",
    )
    check.add_argument(
        "--tolerance", type=float, default=None,
        help="slack below baseline before a metric fails (default 1e-9)",
    )

    diff = sub.add_parser("diff", help="compare two report files")
    diff.add_argument("report_a", help="current report JSON")
    diff.add_argument("report_b", help="reference report JSON")
    return parser


def _load_eval_goldens(args, include_unblessed: bool):
    """Load + filter the golden file an eval action should score against."""
    from repro.quality import GoldenFile, load_goldens

    path = args.goldens or _EVAL_GOLDENS.format(dataset=args.dataset)
    goldens = load_goldens(path)
    if goldens.dataset != args.dataset:
        raise SystemExit(
            f"repro eval: {path} is for dataset {goldens.dataset!r}, "
            f"not {args.dataset!r}"
        )
    if include_unblessed:
        return goldens, path
    blessed = [
        c for c in goldens.cases if c.provenance.get("blessed", False)
    ]
    skipped = len(goldens.cases) - len(blessed)
    if skipped:
        print(
            f"# skipping {skipped} unblessed case(s) — review and bless "
            "them, or pass --include-unblessed",
            file=sys.stderr,
        )
    if not blessed:
        raise SystemExit(
            f"repro eval: {path} has no blessed cases; nothing to score"
        )
    return GoldenFile(goldens.dataset, blessed, goldens.meta), path


def _eval_engine_from_args(args):
    from repro.quality import build_eval_engine

    try:
        return build_eval_engine(
            args.dataset,
            bundle=args.bundle,
            index_tier=args.index_tier,
            cost_model=args.cost_model,
            k=args.k,
            dmax=args.dmax,
            guided=args.guided,
            use_vectorized=args.use_vectorized,
            scale=args.scale,
            perturb_costs=args.perturb_costs,
        )
    except ValueError as exc:
        raise SystemExit(f"repro eval: {exc}")


def _print_aggregates(report, deltas=None) -> None:
    for name, value in sorted(report["aggregates"].items()):
        count = report["counts"].get(name, 0)
        shown = "undefined" if value is None else f"{value:.4f}"
        line = f"  {name:<20} {shown:>10}  ({count}/{report['num_cases']} cases)"
        if deltas and deltas.get(name, {}).get("delta") is not None:
            line += f"  Δ{deltas[name]['delta']:+.4f} vs previous"
        print(line)


def _eval_run(args) -> int:
    from repro.quality import (
        compare_to_baseline,
        evaluate_quality,
        load_baseline,
        save_baseline,
        write_report,
    )

    goldens, goldens_path = _load_eval_goldens(args, args.include_unblessed)
    engine, config = _eval_engine_from_args(args)
    report = evaluate_quality(
        engine, goldens, eval_k=args.eval_k, answer_depth=args.answer_depth
    )
    paths = write_report(report, args.reports_dir, config=config)
    print(f"# goldens: {goldens_path} ({report['num_cases']} cases)")
    print(f"# config: {config}")
    print(f"# report: {paths['latest']}")
    _print_aggregates(report, report.get("deltas_vs_previous"))

    baseline_path = args.baseline or _EVAL_BASELINE.format(dataset=args.dataset)
    if args.update_baseline:
        save_baseline(report, baseline_path)
        print(f"# baseline updated: {baseline_path}")
    else:
        import os

        if os.path.exists(baseline_path):
            failures = compare_to_baseline(report, load_baseline(baseline_path))
            if failures:
                print(f"# NOTE: {len(failures)} metric(s) below the committed "
                      f"baseline ({baseline_path}); `repro eval check` would fail")
            else:
                print(f"# at or above baseline: {baseline_path}")
    if args.json:
        import json as _json

        print(_json.dumps(report, indent=2, sort_keys=True))
    return 0


def _eval_seed(args) -> int:
    from repro.quality import (
        GoldenFile,
        save_goldens,
        seed_cases_from_endpoint,
        seed_cases_in_process,
    )
    from repro.datasets import effectiveness_workload

    workload = effectiveness_workload(args.dataset)
    if args.endpoint:
        cases = seed_cases_from_endpoint(
            args.endpoint,
            workload,
            eval_k=args.eval_k,
            answer_depth=args.answer_depth,
            blessed=args.bless,
        )
        source = args.endpoint
    else:
        engine, config = _eval_engine_from_args(args)
        cases = seed_cases_in_process(
            engine,
            workload,
            eval_k=args.eval_k,
            answer_depth=args.answer_depth,
            blessed=args.bless,
            engine_config=config,
        )
        source = "in-process"
    golden_path = _EVAL_GOLDENS.format(dataset=args.dataset)
    output = args.output or (
        golden_path if args.bless else f"{golden_path}.proposed.jsonl"
    )
    meta = {
        "golden_format": 1,
        "dataset": args.dataset,
        "eval_k": args.eval_k,
        "answer_depth": args.answer_depth,
    }
    save_goldens(GoldenFile(args.dataset, cases, meta), output)
    matched = sum(1 for c in cases if c.provenance.get("intent_matched"))
    state = "blessed" if args.bless else "proposed (unblessed)"
    print(
        f"# seeded {len(cases)} {state} case(s) from {source} -> {output}"
    )
    print(f"# intent matched for {matched}/{len(cases)} queries")
    if not args.bless:
        print(
            "# review the proposals, then re-run with --bless (or edit "
            "provenance.blessed by hand) to admit them to the gate"
        )
    return 0


def _eval_check(args) -> int:
    from repro.quality import (
        compare_to_baseline,
        evaluate_quality,
        load_baseline,
    )

    baseline_path = args.baseline or _EVAL_BASELINE.format(dataset=args.dataset)
    try:
        baseline = load_baseline(baseline_path)
    except FileNotFoundError:
        raise SystemExit(
            f"repro eval check: no baseline at {baseline_path} — run "
            "`repro eval run --update-baseline` on a trusted build first"
        )
    goldens, goldens_path = _load_eval_goldens(args, include_unblessed=False)
    engine, config = _eval_engine_from_args(args)
    report = evaluate_quality(
        engine, goldens, eval_k=args.eval_k, answer_depth=args.answer_depth
    )
    kwargs = {} if args.tolerance is None else {"tolerance": args.tolerance}
    failures = compare_to_baseline(report, baseline, **kwargs)
    print(f"# goldens: {goldens_path} ({report['num_cases']} cases)")
    print(f"# config: {config}")
    print(f"# baseline: {baseline_path}")
    _print_aggregates(report)
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed vs baseline:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: all metrics at or above baseline")
    return 0


def _eval_diff(args) -> int:
    import json as _json

    from repro.quality import diff_reports, load_report

    diff = diff_reports(load_report(args.report_a), load_report(args.report_b))
    print(_json.dumps(diff, indent=2, sort_keys=True))
    return 0


def eval_command(argv) -> int:
    from repro.quality import GoldenFormatError

    args = build_eval_parser().parse_args(argv)
    actions = {
        "run": _eval_run,
        "seed": _eval_seed,
        "check": _eval_check,
        "diff": _eval_diff,
    }
    try:
        return actions[args.action](args)
    except GoldenFormatError as exc:
        raise SystemExit(f"repro eval: {exc}")
    except FileNotFoundError as exc:
        raise SystemExit(f"repro eval: {exc}")


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("--version", "-V"):
        # Handled before dispatch: the legacy positional alias would
        # otherwise swallow the flag as a keyword query.
        from repro.core import kernels

        print(f"repro {__version__}")
        print(kernels.status_line())
        return 0
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
    else:
        # Legacy alias: `repro "cimiano 2006" ...` == `repro search ...`.
        command, rest = "search", argv
    if command == "serve":
        return serve_command(rest)
    if command == "bench":
        return bench_command(rest)
    if command == "build":
        return build_command(rest)
    if command == "compact":
        return compact_command(rest)
    if command == "eval":
        return eval_command(rest)
    return search_command(rest)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
