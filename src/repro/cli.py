"""Command-line interface: keyword search over bundled or custom datasets.

Examples::

    python -m repro "cimiano 2006" --dataset dblp --execute
    python -m repro "2006 cimiano aifb" --dataset example --cost-model c1
    python -m repro "cimiano before 2005" --dataset dblp --filters
    python -m repro "professor department0" --data my_data.nt --guided
    python -m repro "new paper" --data base.nt --update-ntriples delta.nt
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.engine import KeywordSearchEngine
from repro.rdf.graph import DataGraph
from repro.rdf.ntriples import parse_ntriples


def _load_graph(args) -> DataGraph:
    if args.data is not None:
        with open(args.data) as fh:
            return DataGraph(parse_ntriples(fh))
    if args.dataset == "example":
        from repro.datasets.example import running_example_graph

        return running_example_graph()
    if args.dataset == "dblp":
        from repro.datasets import DblpConfig, generate_dblp

        return generate_dblp(DblpConfig(publications=args.scale))
    if args.dataset == "lubm":
        from repro.datasets import LubmConfig, generate_lubm

        return generate_lubm(LubmConfig(universities=max(1, args.scale // 1000)))
    if args.dataset == "tap":
        from repro.datasets import TapConfig, generate_tap

        return generate_tap(TapConfig())
    raise SystemExit(f"unknown dataset {args.dataset!r}")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword search on RDF data through top-k query computation "
        "(Tran et al., ICDE 2009).",
    )
    parser.add_argument("keywords", help="the keyword query, e.g. 'cimiano 2006'")
    parser.add_argument(
        "--dataset",
        choices=("example", "dblp", "lubm", "tap"),
        default="example",
        help="bundled dataset to search (default: the paper's running example)",
    )
    parser.add_argument("--data", help="path to an N-Triples file to search instead")
    parser.add_argument(
        "--update-ntriples",
        metavar="FILE",
        action="append",
        default=[],
        help="N-Triples file of triples to ADD through incremental index "
        "maintenance before searching (repeatable)",
    )
    parser.add_argument(
        "--remove-ntriples",
        metavar="FILE",
        action="append",
        default=[],
        help="N-Triples file of triples to REMOVE through incremental index "
        "maintenance before searching (repeatable)",
    )
    parser.add_argument("--scale", type=int, default=1000, help="dataset scale knob")
    parser.add_argument(
        "-k",
        type=_positive_int,
        default=5,
        help="number of queries to compute (>= 1)",
    )
    parser.add_argument(
        "--cost-model",
        choices=("c1", "c2", "c3", "pagerank"),
        default="c3",
        help="scoring function (Section V)",
    )
    parser.add_argument("--dmax", type=int, default=10, help="exploration depth bound")
    parser.add_argument(
        "--guided", action="store_true", help="distance-information pruning"
    )
    parser.add_argument(
        "--filters",
        action="store_true",
        help="recognize comparison keywords (before/after/ranges) as FILTERs",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="run the top query and print its answers",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-query timing breakdown (keyword mapping, "
        "augmentation, exploration, query mapping) to stderr",
    )
    parser.add_argument(
        "--sparql", action="store_true", help="print SPARQL instead of logic syntax"
    )
    parser.add_argument(
        "--limit", type=int, default=10, help="answer limit with --execute"
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    graph = _load_graph(args)
    print(f"# dataset: {graph}", file=sys.stderr)

    engine = KeywordSearchEngine(
        graph,
        cost_model=args.cost_model,
        k=args.k,
        dmax=args.dmax,
        guided=args.guided,
    )

    # Apply deltas through the incremental index maintenance path — the
    # offline indexes are updated in place, not rebuilt.
    for path in args.update_ntriples:
        with open(path) as fh:
            count = engine.add_triples(list(parse_ntriples(fh)))
        print(f"# +{count} triples from {path}", file=sys.stderr)
    for path in args.remove_ntriples:
        with open(path) as fh:
            count = engine.remove_triples(list(parse_ntriples(fh)))
        print(f"# -{count} triples from {path}", file=sys.stderr)

    if args.filters:
        if args.profile:
            print("# --profile is not supported with --filters", file=sys.stderr)
        filtered = engine.search_with_filters(
            args.keywords, k=args.k, dmax=args.dmax
        )
        if not filtered:
            print("no interpretations found", file=sys.stderr)
            return 1
        for rank, fq in enumerate(filtered, start=1):
            print(f"[{rank}] {fq.to_sparql() if args.sparql else fq}")
        if args.execute:
            print()
            for answer in engine.execute_filtered(filtered[0], limit=args.limit):
                print(" ", {str(v): graph.label_of(t) for v, t in answer.as_dict().items()})
        return 0

    result = engine.search(args.keywords, k=args.k)
    if args.profile:
        timings = result.timings
        breakdown = "  ".join(
            f"{stage}={1000 * timings.get(stage, 0.0):.2f}ms"
            for stage in (
                "keyword_mapping",
                "augmentation",
                "exploration",
                "query_mapping",
                "total",
            )
        )
        print(f"# timings: {breakdown}", file=sys.stderr)
    if result.ignored_keywords:
        print(f"# ignored keywords: {result.ignored_keywords}", file=sys.stderr)
    if not result.candidates:
        print("no interpretations found", file=sys.stderr)
        return 1
    for candidate in result:
        body = candidate.to_sparql() if args.sparql else str(candidate.query)
        print(f"[{candidate.rank}] cost={candidate.cost:.2f}  {body}")
        print(f"    {candidate.verbalize()}")
    if args.execute:
        print()
        for answer in engine.execute(result.best(), limit=args.limit):
            print(" ", {str(v): graph.label_of(t) for v, t in answer.as_dict().items()})
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
