"""Retrieval-quality harness: golden cases, graded metrics, regression gates.

The paper's Section VII-A measures answer quality as MRR over
intent-annotated workloads; the speed/scale layers of this repo
(substrate, kernels, bundles, the mmap tier) are property-tested for
*identity*, but identity tests cannot catch a ranking change that is
internally consistent yet worse.  This package is the safety net: golden
query→expected-result files per dataset (``eval/goldens/*.jsonl``), a
metrics core (Recall@k / MRR / nDCG@k at the query-candidate and the
executed-answer level), a runner that evaluates any engine configuration
against the goldens, versioned JSON reports with per-metric deltas, and a
baseline gate (``repro eval check``) CI fails on.

Layout
------

``signatures``
    Canonical, JSON-storable ids for query candidates and answers —
    stable across index tiers, worker processes, and hash seeds.
``metrics``
    Pure ranking metrics over signature lists and graded relevance.
``goldens``
    The versioned golden-case JSONL format (load/save/validate).
``runner``
    Engine construction from an eval configuration (fresh build, bundle,
    mmap tier, perturbed cost model) and case/workload evaluation.
``reports``
    Timestamped report files, delta computation, baseline compare.
``seeding``
    Semi-automatic golden proposals from an in-process engine or a live
    ``/search``+``/execute`` HTTP endpoint.
"""

from repro.quality.goldens import (
    GOLDEN_FORMAT,
    GoldenCase,
    GoldenFile,
    GoldenFormatError,
    load_goldens,
    save_goldens,
)
from repro.quality.metrics import (
    mean_of,
    ndcg_at_k,
    recall_at_k,
    reciprocal_rank_graded,
)
from repro.quality.reports import (
    compare_to_baseline,
    diff_reports,
    load_baseline,
    load_report,
    metric_deltas,
    save_baseline,
    write_report,
)
from repro.quality.runner import (
    PerturbedCostModel,
    build_eval_engine,
    evaluate_quality,
)
from repro.quality.seeding import (
    seed_cases_from_endpoint,
    seed_cases_in_process,
)
from repro.quality.signatures import (
    answer_json_signature,
    answer_signature,
    query_signature,
    sort_answers,
)

__all__ = [
    "GOLDEN_FORMAT",
    "GoldenCase",
    "GoldenFile",
    "GoldenFormatError",
    "PerturbedCostModel",
    "answer_json_signature",
    "answer_signature",
    "build_eval_engine",
    "compare_to_baseline",
    "diff_reports",
    "evaluate_quality",
    "load_baseline",
    "load_goldens",
    "load_report",
    "mean_of",
    "metric_deltas",
    "ndcg_at_k",
    "query_signature",
    "recall_at_k",
    "reciprocal_rank_graded",
    "save_baseline",
    "save_goldens",
    "seed_cases_from_endpoint",
    "seed_cases_in_process",
    "sort_answers",
    "write_report",
]
