"""Engine construction for evaluation, and the evaluation loop itself.

:func:`build_eval_engine` turns an *eval configuration* — dataset name,
optional bundle path, index tier, cost model, exploration flags — into a
ready engine, the same way for every entry point (CLI, CI gate, tests).
Unlike ``repro search``, an eval run needs **both** a dataset name (it
selects the golden file and the intent workload) and, optionally, a
bundle (it supplies the offline structures); the two are not mutually
exclusive here.

:func:`evaluate_quality` runs every golden case through the engine and
scores Recall@k / MRR / nDCG@k on two levels:

* **query** — the ranked candidate list against the expected query
  signatures (plus ``intent_mrr``, the paper's Section VII-A protocol
  via :meth:`~repro.datasets.workloads.IntentSpec.matches`);
* **answer** — the executed answers, canonically ordered, against the
  expected answer signatures.

:class:`PerturbedCostModel` deliberately inverts a cost model's ranking;
it exists so the regression gate can prove it fires (a gate nobody has
seen fail is a gate nobody should trust).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.engine import KeywordSearchEngine
from repro.datasets import DATASET_NAMES, effectiveness_workload, graph_for
from repro.quality.goldens import GoldenCase, GoldenFile
from repro.quality.metrics import (
    dedupe_ranked,
    mean_of,
    ndcg_at_k,
    recall_at_k,
    reciprocal_rank_graded,
)
from repro.quality.signatures import (
    answer_signature,
    candidate_signatures,
    sort_answers,
)
from repro.scoring.cost import CostModel

#: Candidate depth for the query-level metrics (the paper's top-k).
DEFAULT_EVAL_K = 10
#: How many canonical answers per case enter the answer-level ranking.
DEFAULT_ANSWER_DEPTH = 20
#: Per-candidate evaluation cap.  ``None`` = full enumeration, and that
#: default is deliberate: a *truncated* answer set keeps whichever
#: answers hash-set iteration yielded first, which differs across
#: processes and seeds — canonical sorting can only make enumeration
#: order deterministic, not the choice of what got enumerated.  Eval
#: datasets are small enough (worst case ~2k answers per candidate)
#: that enumerating everything costs well under a second per workload.
DEFAULT_EXECUTE_LIMIT: Optional[int] = None


class PerturbedCostModel(CostModel):
    """Wraps a cost model and inverts its ranking (cheap becomes dear).

    ``1 / (cost + eps)`` maps low-cost (good) elements to high cost and
    vice versa, so top-ranked interpretations sink.  Marked
    non-cacheable: the perturbation is a diagnostic, not a model worth
    caching base costs for.
    """

    cacheable = False

    def __init__(self, base: CostModel):
        self._base = base

    def element_costs(self, augmented) -> Dict:
        base_costs = self._base.element_costs(augmented)
        return {key: 1.0 / (base_costs[key] + 0.01) for key in base_costs}

    def __repr__(self):
        return f"PerturbedCostModel({self._base!r})"


def build_eval_engine(
    dataset: str,
    bundle: Optional[str] = None,
    index_tier: Optional[str] = None,
    cost_model: Optional[str] = None,
    k: Optional[int] = None,
    dmax: Optional[int] = None,
    guided: Optional[bool] = None,
    use_vectorized: Optional[bool] = None,
    scale: int = 1000,
    perturb_costs: bool = False,
):
    """Build the engine a configuration describes; returns ``(engine, config)``.

    ``config`` is the JSON-safe record of what actually ran — it goes
    into report provenance so two reports can be compared knowing whether
    they measured the same serving configuration.
    """
    if dataset not in DATASET_NAMES:
        raise ValueError(f"unknown dataset {dataset!r} (have: {DATASET_NAMES})")
    if index_tier == "mmap" and not bundle:
        raise ValueError("--index-tier mmap requires --bundle (nothing to map)")
    if bundle:
        engine = KeywordSearchEngine.load(
            bundle,
            attach_wal=False,
            index_tier=index_tier or "memory",
            cost_model=cost_model,
            k=k,
            dmax=dmax,
            guided=guided,
            use_vectorized=use_vectorized,
        )
    else:
        # Stock CLI defaults (cli._ENGINE_DEFAULTS), so a fresh eval
        # build and a `repro build` bundle describe the same engine —
        # the gate must not drift just because the offline layer came
        # from a different entry point.
        engine = KeywordSearchEngine(
            graph_for(dataset, scale=scale),
            cost_model=cost_model or "c3",
            k=k if k is not None else DEFAULT_EVAL_K,
            dmax=dmax if dmax is not None else 10,
            guided=bool(guided),
            use_vectorized=use_vectorized,
        )
    if perturb_costs:
        engine.cost_model = PerturbedCostModel(engine.cost_model)
    config = {
        "dataset": dataset,
        "bundle": bundle,
        "index_tier": (index_tier or "memory") if bundle else "in-process",
        "cost_model": type(engine.cost_model).__name__,
        "k": engine.k,
        "dmax": engine.dmax,
        "guided": engine.guided,
        "scale": None if bundle else scale,
        "perturb_costs": perturb_costs,
    }
    return engine, config


def ranked_answer_signatures(
    engine: KeywordSearchEngine,
    candidates,
    answer_depth: int = DEFAULT_ANSWER_DEPTH,
    execute_limit: Optional[int] = DEFAULT_EXECUTE_LIMIT,
) -> List[str]:
    """Execute candidates best-first and rank their canonical answers.

    Candidate order carries the ranking signal; *within* one candidate
    the evaluator's answer order reflects store internals (hash sets,
    posting runs), so each candidate's answers are canonically sorted
    before concatenation, then deduplicated at best rank and capped at
    ``answer_depth``.  The result is identical for every index tier that
    serves the same data.
    """
    ranked: List[str] = []
    for candidate in candidates:
        answers = engine.execute(candidate, limit=execute_limit)
        ranked.extend(answer_signature(a) for a in sort_answers(answers))
        if len(dedupe_ranked(ranked)) >= answer_depth:
            break
    return dedupe_ranked(ranked)[:answer_depth]


def evaluate_case(
    engine: KeywordSearchEngine,
    case: GoldenCase,
    intent=None,
    eval_k: int = DEFAULT_EVAL_K,
    answer_depth: int = DEFAULT_ANSWER_DEPTH,
    execute_limit: Optional[int] = DEFAULT_EXECUTE_LIMIT,
) -> Dict[str, object]:
    """Run one golden case; returns its per-metric record."""
    result = engine.search(case.keywords, k=max(eval_k, engine.k))
    ranked_queries = candidate_signatures(result.candidates)
    query_rel = case.query_relevance()
    answer_rel = case.answer_relevance()

    intent_rr: Optional[float] = None
    if intent is not None:
        intent_rr = 0.0
        for rank, candidate in enumerate(result.candidates, start=1):
            if intent.matches(candidate.query):
                intent_rr = 1.0 / rank
                break

    ranked_answers: List[str] = []
    if answer_rel:
        ranked_answers = ranked_answer_signatures(
            engine,
            result.candidates,
            answer_depth=answer_depth,
            execute_limit=execute_limit,
        )

    return {
        "qid": case.qid,
        "keywords": case.keywords,
        "candidates": len(result.candidates),
        "metrics": {
            f"query_recall@{eval_k}": recall_at_k(ranked_queries, query_rel, eval_k),
            "query_mrr": reciprocal_rank_graded(ranked_queries, query_rel),
            f"query_ndcg@{eval_k}": ndcg_at_k(ranked_queries, query_rel, eval_k),
            f"answer_recall@{answer_depth}": recall_at_k(
                ranked_answers, answer_rel, answer_depth
            ),
            "answer_mrr": reciprocal_rank_graded(ranked_answers, answer_rel),
            f"answer_ndcg@{answer_depth}": ndcg_at_k(
                ranked_answers, answer_rel, answer_depth
            ),
            "intent_mrr": intent_rr,
        },
    }


def evaluate_quality(
    engine: KeywordSearchEngine,
    goldens: GoldenFile,
    eval_k: int = DEFAULT_EVAL_K,
    answer_depth: int = DEFAULT_ANSWER_DEPTH,
    execute_limit: Optional[int] = DEFAULT_EXECUTE_LIMIT,
) -> Dict[str, object]:
    """Evaluate every golden case; returns per-case records + aggregates.

    Aggregates are means over the cases where each metric is *defined*
    (see :mod:`repro.quality.metrics`); ``counts`` records how many cases
    contributed to each mean so a regression in coverage (a metric
    silently going undefined) is visible, not averaged away.
    """
    intents = {
        wq.qid: wq.intent
        for wq in effectiveness_workload(goldens.dataset)
        if wq.intent is not None
    }
    cases = []
    for case in goldens.cases:
        intent = intents.get(case.intent_qid) if case.intent_qid else None
        cases.append(
            evaluate_case(
                engine,
                case,
                intent=intent,
                eval_k=eval_k,
                answer_depth=answer_depth,
                execute_limit=execute_limit,
            )
        )
    metric_names = list(cases[0]["metrics"]) if cases else []
    aggregates = {}
    counts = {}
    for name in metric_names:
        values = [c["metrics"][name] for c in cases]
        aggregates[name] = mean_of(values)
        counts[name] = sum(1 for v in values if v is not None)
    return {
        "dataset": goldens.dataset,
        "eval_k": eval_k,
        "answer_depth": answer_depth,
        "cases": cases,
        "aggregates": aggregates,
        "counts": counts,
        "num_cases": len(cases),
    }
