"""Semi-automatic golden seeding: propose cases, let a human bless them.

Hand-writing canonical signatures is hopeless, so seeding runs each
workload query against a *trusted* engine — either in-process or a live
``/search``+``/execute`` endpoint — and records what came back as the
proposed expectation, with provenance.  Grades encode the trust
gradient:

* **queries** — a candidate matching the workload's paper-protocol
  intent gets grade 3 (independently verified ground truth); the
  top-ranked candidate gets 2; every other returned candidate gets 1.
  Endpoint seeding cannot re-run intent matching on JSON payloads, so
  its ceiling is grade 2 — provenance says so.
* **answers** — answers of the top-ranked interpretation get grade 2,
  answers appearing only under lower-ranked interpretations get 1.

Proposals carry ``provenance.blessed = false``.  Blessing — a human (or
an explicitly trusted workflow via ``repro eval seed --bless``) flipping
the flag after review — is what turns a snapshot of current behavior
into ground truth; ``repro eval check`` refuses unblessed cases.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence
from urllib.error import HTTPError
from urllib.parse import quote
from urllib.request import Request, urlopen

from repro.quality.goldens import GoldenCase
from repro.quality.signatures import (
    answer_json_signature,
    answer_signature,
    candidate_signatures,
    sort_answers,
)

DEFAULT_SEED_K = 10
DEFAULT_ANSWER_DEPTH = 20
#: ``None`` = full enumeration — same rationale as the runner's default:
#: a truncated answer set is truncated in hash-iteration order, which no
#: canonical sort can repair, and goldens must not depend on it.
DEFAULT_EXECUTE_LIMIT: Optional[int] = None

#: What "unbounded" means over HTTP: /execute takes an integer limit,
#: so full enumeration is requested as a bound far above any eval-scale
#: answer count.
_HTTP_UNBOUNDED_LIMIT = 1_000_000


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _graded_entries(grades: Dict[str, float]) -> List[Dict[str, object]]:
    return [
        {"signature": sig, "relevance": grade} for sig, grade in grades.items()
    ]


def _answer_case_grades(
    ranked_answer_lists: Sequence[Sequence[str]], answer_depth: int
) -> Dict[str, float]:
    """Merge per-candidate (already canonical) answer signature lists."""
    grades: Dict[str, float] = {}
    for rank, signatures in enumerate(ranked_answer_lists, start=1):
        for sig in signatures:
            if sig not in grades:
                grades[sig] = 2.0 if rank == 1 else 1.0
        if len(grades) >= answer_depth:
            break
    return dict(list(grades.items())[:answer_depth])


def seed_cases_in_process(
    engine,
    workload,
    eval_k: int = DEFAULT_SEED_K,
    answer_depth: int = DEFAULT_ANSWER_DEPTH,
    execute_limit: Optional[int] = DEFAULT_EXECUTE_LIMIT,
    blessed: bool = False,
    engine_config: Optional[dict] = None,
) -> List[GoldenCase]:
    """Propose one golden case per workload query from a local engine."""
    cases: List[GoldenCase] = []
    for wq in workload:
        result = engine.search(wq.keywords, k=eval_k)
        query_grades: Dict[str, float] = {}
        intent_matched = False
        for rank, (candidate, sig) in enumerate(
            zip(result.candidates, candidate_signatures(result.candidates)),
            start=1,
        ):
            if sig in query_grades:
                continue
            if wq.intent is not None and wq.intent.matches(candidate.query):
                query_grades[sig] = 3.0
                intent_matched = True
            else:
                query_grades[sig] = 2.0 if rank == 1 else 1.0
        answer_lists = []
        for candidate in result.candidates:
            answers = engine.execute(candidate, limit=execute_limit)
            answer_lists.append(
                [answer_signature(a) for a in sort_answers(answers)]
            )
        answer_grades = _answer_case_grades(answer_lists, answer_depth)
        cases.append(
            GoldenCase(
                qid=wq.qid,
                keywords=wq.keywords,
                description=wq.description,
                intent_qid=wq.qid if wq.intent is not None else None,
                expected_queries=_graded_entries(query_grades),
                expected_answers=_graded_entries(answer_grades),
                provenance={
                    "seeded_from": "in-process",
                    "seeded_at": _now(),
                    "engine": engine_config or {},
                    "intent_matched": intent_matched,
                    "blessed": blessed,
                },
            )
        )
    return cases


def _http_json(url: str, body: Optional[dict] = None, timeout: float = 60.0):
    if body is None:
        request = Request(url)
    else:
        request = Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    with urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def seed_cases_from_endpoint(
    base_url: str,
    workload,
    eval_k: int = DEFAULT_SEED_K,
    answer_depth: int = DEFAULT_ANSWER_DEPTH,
    execute_limit: Optional[int] = DEFAULT_EXECUTE_LIMIT,
    blessed: bool = False,
    timeout: float = 60.0,
) -> List[GoldenCase]:
    """Propose golden cases from a live ``repro serve`` endpoint.

    Uses ``GET /search`` for the candidate signatures the payloads now
    carry, then ``POST /execute`` rank by rank for canonical answers.
    Intent matching needs query objects, which JSON does not round-trip,
    so query grades top out at 2 (rank 1) — the in-process path is the
    one that certifies intent.
    """
    base = base_url.rstrip("/")
    cases: List[GoldenCase] = []
    for wq in workload:
        q = " ".join(wq.keywords)
        result = _http_json(
            f"{base}/search?q={quote(q)}&k={eval_k}", timeout=timeout
        )
        candidates = result.get("candidates", [])
        query_grades: Dict[str, float] = {}
        for rank, candidate in enumerate(candidates, start=1):
            sig = candidate["signature"]
            if sig not in query_grades:
                query_grades[sig] = 2.0 if rank == 1 else 1.0
        answer_lists = []
        limit = _HTTP_UNBOUNDED_LIMIT if execute_limit is None else execute_limit
        for rank in range(1, len(candidates) + 1):
            try:
                payload = _http_json(
                    f"{base}/execute",
                    body={"q": q, "rank": rank, "limit": limit},
                    timeout=timeout,
                )
            except HTTPError as exc:
                if exc.code == 404:
                    # /execute re-searches with the *server's* configured
                    # top-k, which may be shallower than eval_k — ranks
                    # beyond it simply do not exist there.  Grade what
                    # the endpoint can actually execute.
                    break
                raise
            # answers_to_json already emits canonical (sorted) order.
            answer_lists.append(
                [answer_json_signature(a) for a in payload.get("answers", [])]
            )
        answer_grades = _answer_case_grades(answer_lists, answer_depth)
        cases.append(
            GoldenCase(
                qid=wq.qid,
                keywords=wq.keywords,
                description=wq.description,
                intent_qid=wq.qid if wq.intent is not None else None,
                expected_queries=_graded_entries(query_grades),
                expected_answers=_graded_entries(answer_grades),
                provenance={
                    "seeded_from": base,
                    "seeded_at": _now(),
                    "engine": {},
                    "intent_matched": False,
                    "blessed": blessed,
                },
            )
        )
    return cases
