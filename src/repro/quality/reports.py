"""Versioned evaluation reports, deltas, and the baseline gate logic.

Reports are *artifacts*, not test output: every ``repro eval run``
writes a timestamped JSON file under ``eval/reports/history/`` and
refreshes ``eval/reports/{dataset}-latest.json``, embedding per-metric
deltas against the previous run so drift is visible in the report
itself, without archaeology.  Reports are machine-local (gitignored);
what *is* committed is the baseline — a slim aggregates-only snapshot
under ``eval/baselines/`` that :func:`compare_to_baseline` (and hence
``repro eval check`` and the CI quality gate) measures against.

The gate's contract: a metric fails when it is worse than the baseline
beyond ``tolerance``, **or** when it became undefined / lost coverage
(fewer cases contributed than at baseline time) — a metric that silently
stops being measured is a regression too, not a pass.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

#: Bump when the report schema changes incompatibly.
REPORT_FORMAT = 1

#: Default slack when comparing against a committed baseline.  Metrics
#: are means of exact rational values (1/rank, set ratios), so genuine
#: equality survives float round-trips; the epsilon only absorbs
#: serialization noise, never a real ranking change.
DEFAULT_TOLERANCE = 1e-9


def metric_deltas(
    current: Dict[str, Optional[float]], previous: Dict[str, Optional[float]]
) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-metric ``{current, previous, delta}`` across two aggregate maps.

    ``delta`` is ``None`` when either side is undefined — an undefined
    metric has no magnitude to subtract, and pretending it is 0.0 would
    hide exactly the transitions the gate cares about.
    """
    deltas: Dict[str, Dict[str, Optional[float]]] = {}
    for name in sorted(set(current) | set(previous)):
        cur = current.get(name)
        prev = previous.get(name)
        deltas[name] = {
            "current": cur,
            "previous": prev,
            "delta": (cur - prev) if cur is not None and prev is not None else None,
        }
    return deltas


def load_report(path: str) -> Dict[str, object]:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    version = report.get("report_format")
    if version != REPORT_FORMAT:
        raise ValueError(
            f"{path}: report_format {version!r} unsupported "
            f"(this build reads {REPORT_FORMAT})"
        )
    return report


def _write_json(payload: Dict[str, object], path: str) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def write_report(
    report: Dict[str, object], reports_dir: str, config: Optional[dict] = None
) -> Dict[str, str]:
    """Persist an evaluation report; returns the written paths.

    Writes ``history/{dataset}-{timestamp}.json`` plus the
    ``{dataset}-latest.json`` pointer, after folding in
    ``deltas_vs_previous`` computed against the previous latest (if one
    exists).  The report dict is mutated in place with the format tag,
    timestamp, config, and deltas, so callers see what was written.
    """
    dataset = report["dataset"]
    report["report_format"] = REPORT_FORMAT
    report.setdefault(
        "generated_at", time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    )
    if config is not None:
        report["config"] = config

    latest_path = os.path.join(reports_dir, f"{dataset}-latest.json")
    if os.path.exists(latest_path):
        previous = load_report(latest_path)
        report["deltas_vs_previous"] = metric_deltas(
            report["aggregates"], previous.get("aggregates", {})
        )
        report["previous_generated_at"] = previous.get("generated_at")
    else:
        report["deltas_vs_previous"] = None
        report["previous_generated_at"] = None

    # Second-granularity timestamps collide under rapid runs (CI retries,
    # tests); suffix rather than silently overwrite history.
    stem = os.path.join(reports_dir, "history", f"{dataset}-{report['generated_at']}")
    history_path = f"{stem}.json"
    suffix = 1
    while os.path.exists(history_path):
        suffix += 1
        history_path = f"{stem}-{suffix}.json"
    _write_json(report, history_path)
    _write_json(report, latest_path)
    return {"history": history_path, "latest": latest_path}


def save_baseline(report: Dict[str, object], path: str) -> str:
    """Commit-worthy snapshot: aggregates + coverage counts, no cases."""
    baseline = {
        "baseline_format": REPORT_FORMAT,
        "dataset": report["dataset"],
        "eval_k": report["eval_k"],
        "answer_depth": report["answer_depth"],
        "num_cases": report["num_cases"],
        "aggregates": report["aggregates"],
        "counts": report["counts"],
        "source": {
            "generated_at": report.get("generated_at"),
            "config": report.get("config"),
        },
    }
    return _write_json(baseline, path)


def load_baseline(path: str) -> Dict[str, object]:
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    version = baseline.get("baseline_format")
    if version != REPORT_FORMAT:
        raise ValueError(
            f"{path}: baseline_format {version!r} unsupported "
            f"(this build reads {REPORT_FORMAT})"
        )
    return baseline


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, object]]:
    """The gate: every way the report is worse than the baseline.

    Returns one failure record per regressed metric — value below
    baseline beyond ``tolerance``, value gone undefined, or coverage
    (count of defined cases) shrunk.  An empty list means the gate
    passes; improvements never fail.
    """
    failures: List[Dict[str, object]] = []
    aggregates = report.get("aggregates", {})
    counts = report.get("counts", {})
    for name, base_value in sorted(baseline.get("aggregates", {}).items()):
        if base_value is None:
            continue
        current = aggregates.get(name)
        if current is None:
            failures.append(
                {
                    "metric": name,
                    "baseline": base_value,
                    "current": None,
                    "reason": "metric undefined (was defined at baseline)",
                }
            )
        elif current < base_value - tolerance:
            failures.append(
                {
                    "metric": name,
                    "baseline": base_value,
                    "current": current,
                    "delta": current - base_value,
                    "reason": "below baseline",
                }
            )
    for name, base_count in sorted(baseline.get("counts", {}).items()):
        current_count = counts.get(name, 0)
        if current_count < base_count:
            failures.append(
                {
                    "metric": name,
                    "baseline_count": base_count,
                    "current_count": current_count,
                    "reason": "coverage shrank (fewer cases contributed)",
                }
            )
    return failures


def diff_reports(
    report_a: Dict[str, object], report_b: Dict[str, object]
) -> Dict[str, object]:
    """Compare two reports: aggregate deltas plus per-case metric deltas.

    ``report_a`` is "current", ``report_b`` is the reference.  Cases are
    matched by qid; qids present on only one side are listed, not
    silently dropped.
    """
    cases_a = {c["qid"]: c for c in report_a.get("cases", [])}
    cases_b = {c["qid"]: c for c in report_b.get("cases", [])}
    shared = sorted(set(cases_a) & set(cases_b))
    return {
        "datasets": [report_a.get("dataset"), report_b.get("dataset")],
        "aggregates": metric_deltas(
            report_a.get("aggregates", {}), report_b.get("aggregates", {})
        ),
        "cases": {
            qid: metric_deltas(
                cases_a[qid].get("metrics", {}), cases_b[qid].get("metrics", {})
            )
            for qid in shared
        },
        "only_in_a": sorted(set(cases_a) - set(cases_b)),
        "only_in_b": sorted(set(cases_b) - set(cases_a)),
    }
