"""Canonical signatures: stable ids for query candidates and answers.

Golden files store *signatures*, not object dumps, so a golden seeded
from one serving configuration can be evaluated against any other.  Two
requirements drive the format:

* **Determinism across tiers and hash seeds.**  Query candidates are
  already canonical (interning + tie-breaks are property-tested), but
  answers come off hash-set iteration — their order was never canonical,
  so every answer-level signature list must be sorted before use.
* **Computability from the JSON payloads.**  ``repro eval seed`` can
  propose goldens from a live ``/search``/``/execute`` endpoint, so an
  answer's signature must be derivable from the ``{var: n3}`` dict the
  HTTP layer returns, and a candidate's signature travels in the payload
  itself (``candidate_to_json`` includes it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.isomorphism import canonical_form
from repro.rdf.terms import Term


def answer_json_signature(payload: Mapping[str, str]) -> str:
    """Signature of an answer given as the HTTP layer's ``{var: n3}`` dict."""
    return "|".join(f"{var}={payload[var]}" for var in sorted(payload))


def answer_signature(answer) -> str:
    """Signature of a :class:`~repro.query.evaluator.Answer`.

    Identical to :func:`answer_json_signature` applied to the answer's
    JSON rendering, so goldens seeded over HTTP and goldens seeded
    in-process agree byte for byte.
    """
    return answer_json_signature(
        {str(var): term.n3() for var, term in zip(answer.variables, answer.values)}
    )


def sort_answers(answers: Iterable) -> List:
    """Answers in canonical (signature) order.

    Answer iteration order reflects store internals (hash sets, posting
    runs, mmap ranges) and differs across index tiers and epochs even
    though the answer *set* is identical; sorting by signature is the
    canonical presentation every tier shares.
    """
    return sorted(answers, key=answer_signature)


def _normalize(value):
    """Make :func:`canonical_form`'s nested structure repr-stable.

    The canonical form nests RDF terms (inside ``("const", term)`` keys)
    whose ``repr`` is not guaranteed stable across releases; everything
    else is tuples/strs/ints.  Terms become their N3 string, frozensets
    become sorted tuples, so ``repr`` of the result is deterministic.
    """
    if isinstance(value, Term):
        return ("term", value.n3())
    if isinstance(value, (frozenset, set)):
        return tuple(sorted(repr(_normalize(v)) for v in value))
    if isinstance(value, tuple):
        return tuple(_normalize(v) for v in value)
    return value


def query_signature(query: ConjunctiveQuery) -> str:
    """A renaming-invariant, JSON-storable id for a conjunctive query.

    Serializes :func:`repro.query.isomorphism.canonical_form` (the same
    fingerprint the engine uses to deduplicate candidates) with sorted,
    normalized atoms — so it is stable across variable naming, atom
    order, index tiers, and Python hash seeds.
    """
    atoms = sorted(repr(_normalize(atom)) for atom in canonical_form(query))
    return "cq:" + ";".join(atoms)


def candidate_signatures(candidates) -> List[str]:
    """Ranked candidate signatures, as the metrics layer consumes them."""
    return [query_signature(c.query) for c in candidates]


def answer_payloads(answers) -> List[Dict[str, str]]:
    """The ``{var: n3}`` JSON rendering of each answer (unsorted)."""
    return [
        {str(var): term.n3() for var, term in zip(a.variables, a.values)}
        for a in answers
    ]
