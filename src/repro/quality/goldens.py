"""The versioned golden-case file format (``eval/goldens/*.jsonl``).

Line 1 is a meta header::

    {"golden_format": 1, "dataset": "tap", "eval_k": 10, ...}

Every following line is one case::

    {"qid": "T1",
     "keywords": ["jordan", "team"],
     "description": "The team Michael Jordan plays for",
     "intent_qid": "T1",
     "expected_queries": [{"signature": "cq:...", "relevance": 3}, ...],
     "expected_answers": [{"signature": "?x=<...>", "relevance": 2}, ...],
     "provenance": {"seeded_from": "in-process", "seeded_at": "...",
                    "engine": {...}, "blessed": true}}

``intent_qid`` names a :class:`~repro.datasets.workloads.WorkloadQuery`
in the dataset's effectiveness workload, which carries the paper-protocol
intent spec; the signature lists carry the graded answer-level ground
truth this harness adds on top.  Relevance grades are positive numbers
(higher = more relevant).  Seeding proposes cases with
``provenance.blessed = false``; a human blesses them into the committed
file (``repro eval seed --bless`` flips the flag for trusted workflows).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

#: Bump when the line schema changes incompatibly.
GOLDEN_FORMAT = 1


class GoldenFormatError(ValueError):
    """A golden file violates the schema (loudly, with the line number)."""


class GoldenCase:
    """One golden case: a keyword query and its graded expectations."""

    __slots__ = (
        "qid",
        "keywords",
        "description",
        "intent_qid",
        "expected_queries",
        "expected_answers",
        "provenance",
    )

    def __init__(
        self,
        qid: str,
        keywords: Sequence[str],
        description: str = "",
        intent_qid: Optional[str] = None,
        expected_queries: Optional[List[Dict[str, object]]] = None,
        expected_answers: Optional[List[Dict[str, object]]] = None,
        provenance: Optional[Dict[str, object]] = None,
    ):
        self.qid = qid
        self.keywords = list(keywords)
        self.description = description
        self.intent_qid = intent_qid
        self.expected_queries = list(expected_queries or [])
        self.expected_answers = list(expected_answers or [])
        self.provenance = dict(provenance or {})

    def query_relevance(self) -> Dict[str, float]:
        return {
            e["signature"]: float(e["relevance"]) for e in self.expected_queries
        }

    def answer_relevance(self) -> Dict[str, float]:
        return {
            e["signature"]: float(e["relevance"]) for e in self.expected_answers
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "qid": self.qid,
            "keywords": self.keywords,
            "description": self.description,
            "intent_qid": self.intent_qid,
            "expected_queries": self.expected_queries,
            "expected_answers": self.expected_answers,
            "provenance": self.provenance,
        }

    def __repr__(self):
        return (
            f"GoldenCase({self.qid}: {' '.join(self.keywords)!r}, "
            f"{len(self.expected_queries)}q/{len(self.expected_answers)}a)"
        )


class GoldenFile:
    """A parsed golden file: the meta header plus its cases."""

    __slots__ = ("dataset", "meta", "cases")

    def __init__(
        self, dataset: str, cases: Sequence[GoldenCase], meta: Optional[dict] = None
    ):
        self.dataset = dataset
        self.cases = list(cases)
        self.meta = dict(meta or {})
        self.meta.setdefault("golden_format", GOLDEN_FORMAT)
        self.meta.setdefault("dataset", dataset)

    def __len__(self):
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def __repr__(self):
        return f"GoldenFile({self.dataset}, {len(self.cases)} cases)"


def _check_expected(entries, qid: str, field: str, lineno: int) -> None:
    if not isinstance(entries, list):
        raise GoldenFormatError(f"line {lineno}: {qid}.{field} must be a list")
    seen = set()
    for entry in entries:
        if not isinstance(entry, dict) or "signature" not in entry:
            raise GoldenFormatError(
                f"line {lineno}: {qid}.{field} entries need a 'signature'"
            )
        relevance = entry.get("relevance")
        if not isinstance(relevance, (int, float)) or relevance <= 0:
            raise GoldenFormatError(
                f"line {lineno}: {qid}.{field} relevance must be a number > 0, "
                f"got {relevance!r}"
            )
        if entry["signature"] in seen:
            raise GoldenFormatError(
                f"line {lineno}: duplicate signature in {qid}.{field}"
            )
        seen.add(entry["signature"])


def load_goldens(path: str) -> GoldenFile:
    """Parse and validate a golden JSONL file; loud errors, line-numbered."""
    cases: List[GoldenCase] = []
    meta: Optional[dict] = None
    seen_qids = set()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GoldenFormatError(f"{path}: line {lineno}: {exc}") from exc
            if not isinstance(payload, dict):
                raise GoldenFormatError(
                    f"{path}: line {lineno}: expected a JSON object"
                )
            if meta is None:
                if "golden_format" not in payload:
                    raise GoldenFormatError(
                        f"{path}: line 1 must be the meta header "
                        "({'golden_format': ..., 'dataset': ...})"
                    )
                version = payload["golden_format"]
                if version != GOLDEN_FORMAT:
                    raise GoldenFormatError(
                        f"{path}: golden_format {version} unsupported "
                        f"(this build reads {GOLDEN_FORMAT})"
                    )
                if not payload.get("dataset"):
                    raise GoldenFormatError(f"{path}: meta header needs 'dataset'")
                meta = payload
                continue
            qid = payload.get("qid")
            keywords = payload.get("keywords")
            if not qid or not isinstance(qid, str):
                raise GoldenFormatError(
                    f"{path}: line {lineno}: case needs a string 'qid'"
                )
            if qid in seen_qids:
                raise GoldenFormatError(
                    f"{path}: line {lineno}: duplicate qid {qid!r}"
                )
            seen_qids.add(qid)
            if (
                not isinstance(keywords, list)
                or not keywords
                or not all(isinstance(kw, str) and kw.strip() for kw in keywords)
            ):
                raise GoldenFormatError(
                    f"{path}: line {lineno}: {qid}: 'keywords' must be a "
                    "non-empty list of non-empty strings"
                )
            _check_expected(
                payload.get("expected_queries", []), qid, "expected_queries", lineno
            )
            _check_expected(
                payload.get("expected_answers", []), qid, "expected_answers", lineno
            )
            cases.append(
                GoldenCase(
                    qid=qid,
                    keywords=keywords,
                    description=payload.get("description", ""),
                    intent_qid=payload.get("intent_qid"),
                    expected_queries=payload.get("expected_queries", []),
                    expected_answers=payload.get("expected_answers", []),
                    provenance=payload.get("provenance", {}),
                )
            )
    if meta is None:
        raise GoldenFormatError(f"{path}: empty golden file (no meta header)")
    return GoldenFile(meta["dataset"], cases, meta)


def save_goldens(golden_file: GoldenFile, path: str) -> str:
    """Write a golden file atomically (tmp + rename); returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(golden_file.meta, sort_keys=True) + "\n")
        for case in golden_file.cases:
            fh.write(json.dumps(case.as_dict(), sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path
