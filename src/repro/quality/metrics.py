"""Ranking metrics over signature lists with graded relevance.

All functions take a ranked list of item signatures and a relevance
mapping ``{signature: grade}`` with grades > 0 (a grade of 0 is treated
as "not relevant" and dropped).  Three conventions, chosen so the
aggregate never silently averages apples with absences:

* **Missing goldens** (no relevant items for a case) make every metric
  *undefined* — the functions return ``None`` and :func:`mean_of`
  excludes them, rather than crediting a vacuous 1.0 or punishing with
  a 0.0 the engine could never avoid.
* **Empty result lists** against a non-empty golden set score 0.0 — the
  engine had something to find and found nothing.
* **Duplicates** in the ranked list count once, at their best rank
  (candidates are deduplicated upstream; executed answers can repeat
  across candidates).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence


def _relevant(relevance: Mapping[str, float]) -> Dict[str, float]:
    return {sig: grade for sig, grade in relevance.items() if grade > 0}


def dedupe_ranked(ranked: Sequence[str]) -> List[str]:
    """First occurrence of each signature, order preserved."""
    return list(dict.fromkeys(ranked))


def recall_at_k(
    ranked: Sequence[str], relevance: Mapping[str, float], k: int
) -> Optional[float]:
    """Fraction of relevant signatures present in the top ``k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    relevant = _relevant(relevance)
    if not relevant:
        return None
    top = set(dedupe_ranked(ranked)[:k])
    return len(top & set(relevant)) / len(relevant)


def reciprocal_rank_graded(
    ranked: Sequence[str], relevance: Mapping[str, float]
) -> Optional[float]:
    """1/rank of the first relevant signature; 0.0 if none appears.

    The graded counterpart of the paper's RR: any grade > 0 counts as a
    hit (MRR is a binary-relevance metric; grades matter to nDCG).
    """
    relevant = _relevant(relevance)
    if not relevant:
        return None
    for rank, sig in enumerate(dedupe_ranked(ranked), start=1):
        if sig in relevant:
            return 1.0 / rank
    return 0.0


def dcg_at_k(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain with the ``2^g - 1`` gain shape."""
    return sum(
        (2.0**gain - 1.0) / math.log2(position + 2)
        for position, gain in enumerate(gains[:k])
    )


def ndcg_at_k(
    ranked: Sequence[str], relevance: Mapping[str, float], k: int
) -> Optional[float]:
    """Normalized DCG@k under graded relevance.

    The ideal ordering sorts the golden grades descending; ties between
    equal grades cost nothing (any order of equal grades has equal DCG).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    relevant = _relevant(relevance)
    if not relevant:
        return None
    gains = [relevant.get(sig, 0.0) for sig in dedupe_ranked(ranked)]
    ideal = sorted(relevant.values(), reverse=True)
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:  # pragma: no cover - grades > 0 make this unreachable
        return None
    return dcg_at_k(gains, k) / ideal_dcg


def mean_of(values: Sequence[Optional[float]]) -> Optional[float]:
    """Mean over the defined values; ``None`` when every case was undefined."""
    defined = [v for v in values if v is not None]
    if not defined:
        return None
    return sum(defined) / len(defined)
