"""The single-table relational storage scheme of Fig. 1b.

RDF engines of the paper's era (Jena, Sesame, Oracle) commonly store all
triples in one three-column relation ``Ex(s, p, o)`` and answer SPARQL by
self-joining it — the SQL query of Fig. 1c joins six aliases of that table.

:class:`SingleTableStore` materializes that relation and evaluates exactly
such self-join plans with nested loops over the raw rows.  It is deliberately
index-free: it exists as a *differential-testing oracle* for the optimized
evaluator in :mod:`repro.query.evaluator`, and to ground the SQL rendering.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.rdf.terms import Term, Variable
from repro.rdf.triples import Triple


class Row(NamedTuple):
    """One row of the three-column relation ``Ex(s, p, o)``."""

    s: Term
    p: Term
    o: Term


class SingleTableStore:
    """All triples in one relation; queries run as unindexed self-joins."""

    TABLE_NAME = "Ex"

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._rows: List[Row] = []
        if triples is not None:
            for t in triples:
                self.add(t)

    def add(self, triple: Triple) -> None:
        self._rows.append(Row(triple.subject, triple.predicate, triple.object))

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Tuple[Row, ...]:
        return tuple(self._rows)

    def scan(self) -> Iterator[Row]:
        """Full table scan (the only access path this store has)."""
        yield from self._rows

    def evaluate_self_join(
        self,
        patterns: Sequence[Tuple[Term, Term, Term]],
        projection: Sequence[Variable],
    ) -> List[Tuple[Term, ...]]:
        """Evaluate a conjunctive self-join plan by brute force.

        Each pattern is a ``(s, p, o)`` template whose positions hold either
        constants (:class:`~repro.rdf.terms.Term`) or
        :class:`~repro.rdf.terms.Variable`; one table alias is scanned per
        pattern, exactly like the ``Ex AS A, Ex AS B, ...`` SQL of Fig. 1c.
        Returns distinct projected tuples.
        """
        results: List[Tuple[Term, ...]] = []
        seen = set()
        self._join(patterns, 0, {}, projection, results, seen)
        return results

    def _join(
        self,
        patterns: Sequence[Tuple[Term, Term, Term]],
        depth: int,
        binding: Dict[Variable, Term],
        projection: Sequence[Variable],
        results: List[Tuple[Term, ...]],
        seen: set,
    ) -> None:
        if depth == len(patterns):
            row = tuple(binding.get(v, v) for v in projection)
            if row not in seen:
                seen.add(row)
                results.append(row)
            return
        pattern = patterns[depth]
        for row in self._rows:
            extension = self._unify(pattern, row, binding)
            if extension is not None:
                self._join(patterns, depth + 1, extension, projection, results, seen)

    @staticmethod
    def _unify(
        pattern: Tuple[Term, Term, Term],
        row: Row,
        binding: Dict[Variable, Term],
    ) -> Optional[Dict[Variable, Term]]:
        """Match one pattern against one row under the current binding."""
        extension = binding
        copied = False
        for template, actual in zip(pattern, row):
            if isinstance(template, Variable):
                bound = extension.get(template)
                if bound is None:
                    if not copied:
                        extension = dict(extension)
                        copied = True
                    extension[template] = actual
                elif bound != actual:
                    return None
            elif template != actual:
                return None
        return extension
