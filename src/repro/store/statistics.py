"""Cardinality statistics over a triple store, for join ordering.

The evaluator orders query atoms most-selective-first.  Estimates here are
exact where the indexes answer them in O(1) (bound-predicate counts) and
uniform-assumption approximations elsewhere — the classic System-R recipe
scaled down to a triple table.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.rdf.terms import Term, Variable
from repro.store.triple_store import TripleStore


class StoreStatistics:
    """Selectivity estimates for triple patterns against a store."""

    def __init__(self, store: TripleStore):
        self._store = store
        self._pred_cache: Dict[Term, int] = {}

    def predicate_count(self, predicate: Term) -> int:
        """Number of triples carrying ``predicate`` (cached)."""
        if predicate not in self._pred_cache:
            self._pred_cache[predicate] = self._store.predicate_cardinality(predicate)
        return self._pred_cache[predicate]

    def invalidate(self) -> None:
        """Drop cached counts (call after the store's contents change)."""
        self._pred_cache.clear()

    def estimate(
        self,
        subject: Optional[Term],
        predicate: Optional[Term],
        obj: Optional[Term],
    ) -> float:
        """Estimated result cardinality of a pattern; ``None``/Variable = free.

        Patterns with a bound predicate and one bound endpoint are answered
        exactly from the indexes; otherwise a uniform-distribution assumption
        divides the relevant base count by the store size.
        """
        s = None if isinstance(subject, Variable) else subject
        p = None if isinstance(predicate, Variable) else predicate
        o = None if isinstance(obj, Variable) else obj

        if p is not None:
            if s is not None or o is not None:
                return float(self._store.count(s, p, o))
            return float(self.predicate_count(p))
        # Unbound predicate: exact counts are still cheap for bound endpoints.
        if s is not None or o is not None:
            return float(self._store.count(s, None, o))
        return float(len(self._store))

    def selectivity(
        self,
        subject: Optional[Term],
        predicate: Optional[Term],
        obj: Optional[Term],
    ) -> float:
        """Estimated fraction of the store matched by the pattern, in [0, 1]."""
        total = max(len(self._store), 1)
        return self.estimate(subject, predicate, obj) / total
