"""Vertically partitioned storage (the paper's Section II, citing [5]).

The paper notes that "more advanced techniques such as the property table
and vertical partitioning that leverage column-oriented databases have
greatly increased performance of storage and retrieval of RDF data": one
two-column table per predicate, sorted by subject, replacing most
self-joins with merge-friendly per-predicate scans.

:class:`VerticalStore` implements that layout over sorted column pairs and
answers the same pattern interface as :class:`~repro.store.triple_store.
TripleStore`, so the query evaluator runs unchanged on either backend —
the differential tests in ``tests/`` hold the two implementations to
identical semantics.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.terms import Term, URI
from repro.rdf.triples import Triple
from repro.store.triple_store import ill_typed_pattern


class _PredicateTable:
    """One predicate's two-column table, sorted by (subject, object) key."""

    __slots__ = ("_rows", "_sorted", "_by_object")

    def __init__(self):
        self._rows: List[Tuple[Term, Term]] = []
        self._sorted = True
        # Lazily built object-side index for (? p o) lookups.
        self._by_object: Optional[Dict[Term, List[Term]]] = None

    @staticmethod
    def _key(row: Tuple[Term, Term]) -> Tuple[str, str]:
        return (row[0].n3(), row[1].n3())

    def add(self, subject: Term, obj: Term) -> None:
        self._rows.append((subject, obj))
        self._sorted = False
        self._by_object = None

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._rows.sort(key=self._key)
            deduped = []
            previous = None
            for row in self._rows:
                if row != previous:
                    deduped.append(row)
                    previous = row
            self._rows = deduped
            self._sorted = True

    def __len__(self) -> int:
        self._ensure_sorted()
        return len(self._rows)

    def scan(self) -> Iterator[Tuple[Term, Term]]:
        self._ensure_sorted()
        yield from self._rows

    def by_subject(self, subject: Term) -> Iterator[Tuple[Term, Term]]:
        """Binary-search the sorted subject column."""
        self._ensure_sorted()
        key = subject.n3()
        lo = bisect_left(self._rows, key, key=lambda row: row[0].n3())
        for row in self._rows[lo:]:
            if row[0] != subject:
                break
            yield row

    def by_object(self, obj: Term) -> Iterator[Tuple[Term, Term]]:
        self._ensure_sorted()
        if self._by_object is None:
            index: Dict[Term, List[Term]] = {}
            for s, o in self._rows:
                index.setdefault(o, []).append(s)
            self._by_object = index
        for subject in self._by_object.get(obj, ()):
            yield (subject, obj)

    def contains(self, subject: Term, obj: Term) -> bool:
        return any(o == obj for _, o in self.by_subject(subject))


class VerticalStore:
    """Per-predicate two-column tables with the TripleStore pattern API."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._tables: Dict[URI, _PredicateTable] = {}
        if triples is not None:
            self.add_all(triples)

    def add(self, triple: Triple) -> None:
        table = self._tables.get(triple.predicate)
        if table is None:
            table = self._tables[triple.predicate] = _PredicateTable()
        table.add(triple.subject, triple.object)

    def add_all(self, triples: Iterable[Triple]) -> None:
        for t in triples:
            self.add(t)

    @classmethod
    def from_stream(cls, triples: Iterable[Triple]) -> "VerticalStore":
        """Build from a triple iterator, consumed incrementally.

        Rows land unsorted in their per-predicate tables (sorting and
        dedup happen lazily on first read), so ingesting a stream is a
        straight append pass with no intermediate list of triples.
        """
        store = cls()
        for triple in triples:
            store.add(triple)
        return store

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def __contains__(self, triple: Triple) -> bool:
        table = self._tables.get(triple.predicate)
        return table is not None and table.contains(triple.subject, triple.object)

    @property
    def predicates(self) -> Tuple[URI, ...]:
        return tuple(self._tables)

    def predicate_cardinality(self, predicate: URI) -> int:
        table = self._tables.get(predicate)
        return len(table) if table is not None else 0

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Pattern lookup; ``None`` is a wildcard (TripleStore-compatible)."""
        if ill_typed_pattern(subject, predicate):
            return
        if predicate is not None:
            table = self._tables.get(predicate)
            if table is None:
                return
            yield from self._match_in(table, predicate, subject, obj)
            return
        for pred, table in self._tables.items():
            yield from self._match_in(table, pred, subject, obj)

    @staticmethod
    def _match_in(
        table: _PredicateTable, predicate: URI, subject: Optional[Term], obj: Optional[Term]
    ) -> Iterator[Triple]:
        if subject is not None and obj is not None:
            if table.contains(subject, obj):
                yield Triple(subject, predicate, obj)
        elif subject is not None:
            for s, o in table.by_subject(subject):
                yield Triple(s, predicate, o)
        elif obj is not None:
            for s, o in table.by_object(obj):
                yield Triple(s, predicate, o)
        else:
            for s, o in table.scan():
                yield Triple(s, predicate, o)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        if predicate is not None and subject is None and obj is None:
            if not isinstance(predicate, URI):
                return 0
            return self.predicate_cardinality(predicate)
        return sum(1 for _ in self.match(subject, predicate, obj))

    def subjects(self, predicate: URI, obj: Term) -> Iterator[Term]:
        for triple in self.match(None, predicate, obj):
            yield triple.subject

    def objects(self, subject: Term, predicate: URI) -> Iterator[Term]:
        for triple in self.match(subject, predicate, None):
            yield triple.object

    def __repr__(self):
        return f"VerticalStore(predicates={len(self._tables)}, size={len(self)})"
