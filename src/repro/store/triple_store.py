"""An in-memory triple store indexed for every access pattern.

Maintains the six lookup shapes a conjunctive-query evaluator needs —
``(s ? ?)``, ``(? p ?)``, ``(? ? o)``, ``(s p ?)``, ``(? p o)``, ``(s ? o)`` —
via three nested hash indexes (SPO, POS, OSP), mirroring the index layout of
RDF engines such as Jena/Sesame the paper names as its storage substrate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.graph import DataGraph
from repro.rdf.terms import Term, URI
from repro.rdf.triples import Triple

_Index = Dict[Term, Dict[Term, Set[Term]]]


def _nested() -> _Index:
    return defaultdict(lambda: defaultdict(set))


def ill_typed_pattern(subject: Optional[Term], predicate: Optional[Term]) -> bool:
    """True when a match pattern can never hold in any store.

    A literal in subject position or a non-URI predicate is not an error
    — joins routinely probe with values bound from other atoms — but it
    matches nothing.  Every store tier (hash-indexed, vertical, mmap)
    applies the same guard so their answers stay identical.
    """
    from repro.rdf.terms import Literal as _Literal

    return isinstance(subject, _Literal) or (
        predicate is not None and not isinstance(predicate, URI)
    )


class TripleStore:
    """Triple storage with SPO/POS/OSP hash indexes.

    The store accepts the same triples as :class:`~repro.rdf.graph.DataGraph`
    but serves a different role: the data graph classifies (for index
    construction), the store retrieves (for query processing).

    >>> store = TripleStore()
    >>> _ = store.add(Triple(URI("e:a"), URI("e:p"), URI("e:b")))
    >>> store.count(None, URI("e:p"), None)
    1
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._spo: _Index = _nested()
        self._pos: _Index = _nested()
        self._osp: _Index = _nested()
        self._size = 0
        if triples is not None:
            self.add_all(triples)

    @classmethod
    def from_graph(cls, graph: DataGraph) -> "TripleStore":
        """Build a store over all triples of a data graph."""
        return cls(graph)

    @classmethod
    def from_stream(cls, triples: Iterable[Triple]) -> "TripleStore":
        """Build a store from a triple iterator, consumed incrementally.

        Identical in result to ``TripleStore(list(triples))`` but never
        materializes the input — the streaming ingestion paths hand file
        and generator-backed iterators through here.  (The resulting
        store itself is in-memory; the *bundle* streaming build in
        ``repro.storage.stream_build`` bypasses object stores entirely
        and writes the three index sections from external sorts.)
        """
        store = cls()
        for triple in triples:
            store.add(triple)
        return store

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False if it was already stored."""
        s, p, o = triple
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple from all three indexes; False if absent."""
        s, p, o = triple
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        subjects = self._pos[p][o]
        subjects.discard(s)
        if not subjects:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        predicates = self._osp[o][s]
        predicates.discard(p)
        if not predicates:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.remove(t))

    # ------------------------------------------------------------------
    # Persistence (used by repro.storage)
    # ------------------------------------------------------------------

    def state_for_persistence(self) -> Dict[str, _Index]:
        """Read-only references to the three nested indexes."""
        return {"spo": self._spo, "pos": self._pos, "osp": self._osp}

    @classmethod
    def from_state(cls, spo: _Index, pos: _Index, osp: _Index, size: int) -> "TripleStore":
        """Adopt pre-built nested indexes (the bundle loader's output).

        Replaying :meth:`add` per triple would redo exactly the hashing
        this bypasses; the caller guarantees the three indexes are the
        SPO/POS/OSP views of one triple set of ``size`` triples, built as
        the same ``defaultdict`` nesting :func:`_nested` produces.
        """
        store = cls.__new__(cls)
        store._spo = spo
        store._pos = pos
        store._osp = osp
        store._size = size
        return store

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching a pattern; ``None`` is a wildcard.

        Chooses the index that binds the most constants, so every pattern is
        answered without a full scan (except the all-wildcard pattern).

        Ill-typed constants — a literal in subject position, a non-URI
        predicate — match nothing rather than erroring
        (:func:`ill_typed_pattern`).
        """
        if ill_typed_pattern(subject, predicate):
            return
        s, p, o = subject, predicate, obj
        if s is not None and p is not None and o is not None:
            if Triple(s, p, o) in self:
                yield Triple(s, p, o)
            return
        if s is not None and p is not None:
            for obj_term in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj_term)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj_term in objects:
                    yield Triple(s, pred, obj_term)
            return
        if p is not None:
            for obj_term, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj_term)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        for subj, po in self._spo.items():
            for pred, objects in po.items():
                for obj_term in objects:
                    yield Triple(subj, pred, obj_term)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Exact cardinality of a pattern, computed from the indexes.

        Fully-indexed patterns are O(1)/O(bucket); this is what the join
        optimizer uses for selectivity estimates.
        """
        if ill_typed_pattern(subject, predicate):
            return 0
        s, p, o = subject, predicate, obj
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    def subjects(self, predicate: Term, obj: Term) -> Iterator[Term]:
        """Subjects s with (s, predicate, obj) stored."""
        yield from self._pos.get(predicate, {}).get(obj, ())

    def objects(self, subject: Term, predicate: Term) -> Iterator[Term]:
        """Objects o with (subject, predicate, o) stored."""
        yield from self._spo.get(subject, {}).get(predicate, ())

    def predicates(self) -> Iterator[Term]:
        """All distinct predicates."""
        yield from self._pos.keys()

    def predicate_cardinality(self, predicate: Term) -> int:
        """Number of triples with the given predicate."""
        return sum(len(subs) for subs in self._pos.get(predicate, {}).values())

    def __repr__(self):
        return f"TripleStore(size={self._size})"
