"""Storage substrate: the RDF store the computed queries are executed on.

The paper hands its top-k queries to "the underlying database engine"
(Semplore / Jena / Sesame / Oracle in the original).  This package provides
that engine: an in-memory triple store with hash indexes over all access
patterns (:mod:`~repro.store.triple_store`), the single-table relational view
of Fig. 1b (:mod:`~repro.store.single_table`), and cardinality statistics for
join ordering (:mod:`~repro.store.statistics`).
"""

from repro.store.triple_store import TripleStore
from repro.store.single_table import SingleTableStore, Row
from repro.store.vertical import VerticalStore
from repro.store.statistics import StoreStatistics

__all__ = ["TripleStore", "SingleTableStore", "Row", "VerticalStore", "StoreStatistics"]
