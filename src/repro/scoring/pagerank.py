"""PageRank over the summary graph, as an alternative popularity signal.

Section V notes that "PageRank can also be used in this context" but that the
aggregation-count metric is cheaper to compute for the summary graph.  This
module provides both the standalone power-iteration PageRank and a cost
model derived from it, enabling the ablation benchmark that compares the two
popularity signals.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.scoring.cost import CostModel, DEFAULT_MIN_COST
from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.summary_graph import SummaryGraph


def pagerank(
    graph: SummaryGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> Dict[Hashable, float]:
    """Power-iteration PageRank over the summary graph's vertices.

    Edges are followed from source to target; dangling mass is redistributed
    uniformly, the standard treatment.
    """
    vertices = [v.key for v in graph.vertices]
    if not vertices:
        return {}
    n = len(vertices)
    out_edges: Dict[Hashable, list] = {key: [] for key in vertices}
    for edge in graph.edges:
        out_edges[edge.source_key].append(edge.target_key)

    rank = {key: 1.0 / n for key in vertices}
    for _ in range(max_iterations):
        dangling_mass = sum(rank[k] for k in vertices if not out_edges[k])
        next_rank = {
            key: (1.0 - damping) / n + damping * dangling_mass / n for key in vertices
        }
        for key in vertices:
            targets = out_edges[key]
            if not targets:
                continue
            share = damping * rank[key] / len(targets)
            for target in targets:
                next_rank[target] += share
        delta = sum(abs(next_rank[k] - rank[k]) for k in vertices)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


class PageRankCost(CostModel):
    """Vertex cost ``1 − PR(v)/max PR``; edges cost the mean of endpoints.

    Ranks are computed per augmented graph (augmentation adds vertices), so
    this model is strictly more expensive than C2 — which is the trade-off
    the paper's Section V remark is about.
    """

    name = "pagerank"

    def __init__(self, min_cost: float = DEFAULT_MIN_COST):
        self._min_cost = min_cost
        self._ranks: Dict[int, Dict[Hashable, float]] = {}

    def element_costs(self, augmented: AugmentedSummaryGraph) -> Dict[Hashable, float]:
        ranks = pagerank(augmented.graph)
        top = max(ranks.values(), default=1.0) or 1.0
        costs: Dict[Hashable, float] = {}
        for vertex in augmented.graph.vertices:
            costs[vertex.key] = max(self._min_cost, 1.0 - ranks[vertex.key] / top)
        for edge in augmented.graph.edges:
            source_cost = costs[edge.source_key]
            target_cost = costs[edge.target_key]
            costs[edge.key] = max(self._min_cost, (source_cost + target_cost) / 2.0)
        return costs

    def vertex_cost(self, vertex, augmented):  # pragma: no cover - unused path
        raise NotImplementedError("PageRankCost computes costs graph-wide")

    def edge_cost(self, edge, augmented):  # pragma: no cover - unused path
        raise NotImplementedError("PageRankCost computes costs graph-wide")
