"""Cost functions of Section V.

A subgraph's cost is the monotone sum of its paths' costs; a path's cost is
the sum of its elements' costs.  Three element-cost schemes are provided:

* :class:`PathLengthCost` (C1) — every element costs 1;
* :class:`PopularityCost` (C2) — ``1 − |agg|/|total|``, cheaper for summary
  elements that aggregate more data elements;
* :class:`KeywordMatchCost` (C3) — a base cost divided by the keyword
  matching score ``sm(n)``.

plus :class:`PageRankCost`, the PageRank alternative the paper mentions.
"""

from repro.scoring.cost import (
    CostModel,
    PathLengthCost,
    PopularityCost,
    KeywordMatchCost,
    make_cost_model,
    COST_MODELS,
)
from repro.scoring.pagerank import PageRankCost, pagerank

__all__ = [
    "CostModel",
    "PathLengthCost",
    "PopularityCost",
    "KeywordMatchCost",
    "PageRankCost",
    "pagerank",
    "make_cost_model",
    "COST_MODELS",
]
