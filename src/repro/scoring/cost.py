"""Element-cost models C1, C2, C3 (Section V).

Each model maps every element of an augmented summary graph to a positive
cost.  Exploration and top-k only require that costs are positive and that
graph cost aggregates monotonically — which a sum of positive path costs
guarantees — so all models plug into the same Algorithm 1/2 machinery.

Normalization note (documented deviation, DESIGN.md §5): the paper divides
|v_agg| by "the total number of vertices in the summary graph", which can
produce negative costs.  We divide by the number of aggregated *data*
elements (entities for vertices, R-edges for edges), keeping costs in
(0, 1] while preserving the intent that more-representative elements are
cheaper.  ``literal_normalization=True`` restores the paper's literal
formula (costs are then clamped at ``min_cost``).
"""

from __future__ import annotations

import weakref
from collections import ChainMap
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.summary.augmentation import AugmentedSummaryGraph
from repro.summary.elements import (
    SummaryEdge,
    SummaryEdgeKind,
    SummaryVertex,
    SummaryVertexKind,
    is_edge_key,
)

#: Elements never cost less than this — keeps Theorem 1's strictly-positive
#: path-cost growth and avoids zero-cost cycles.
DEFAULT_MIN_COST = 0.01


def split_cost_mapping(
    costs: Mapping[Hashable, float],
) -> Tuple[Mapping[Hashable, float], Optional[Mapping[Hashable, float]]]:
    """Split a cost mapping into ``(overrides, base_table)``.

    :meth:`CostModel.element_costs` returns a two-layer
    ``ChainMap(overrides, cached_base_costs)`` for overlay-augmented
    graphs: the second map is the query-invariant base-cost table (cached
    per summary-graph version and stable in identity across queries), the
    first holds only the O(#matches) per-query entries.  The exploration
    substrate keys its ``array('d')`` cost slots on that base table's
    identity, so it needs the layers apart.

    Any other mapping shape — a plain dict from tests, a non-cacheable
    model's full recomputation — yields ``(costs, None)``: every element
    must then be read through ``costs`` directly.
    """
    if isinstance(costs, ChainMap) and len(costs.maps) == 2:
        overrides, base = costs.maps
        return overrides, base
    return costs, None


class CostModel:
    """Base: assigns ``cost(n) > 0`` to every element of an augmented graph.

    When the augmented graph is an overlay view, base-graph element costs
    are query-invariant for most models (C1, C2, and C3 away from matched
    elements), so they are computed once and cached; per query only the
    overlay-added elements and the keyword-matched elements get fresh
    costs, layered over the cached table with a :class:`~collections.ChainMap`.
    The cache keys on the base graph's mutation ``version``, so incremental
    index maintenance invalidates it automatically; ``invalidate_cache()``
    drops it explicitly.
    """

    name = "abstract"
    #: False for models whose base-element costs depend on per-query state
    #: (e.g. C2's literal normalization divides by the *augmented* graph
    #: size); such models recompute every element each query.
    cacheable = True

    def element_costs(self, augmented: AugmentedSummaryGraph) -> Mapping[Hashable, float]:
        """Cost for every element key in the augmented graph."""
        graph = augmented.graph
        base = getattr(graph, "base", None)
        if base is None or not self.cacheable:
            costs: Dict[Hashable, float] = {}
            for vertex in graph.vertices:
                costs[vertex.key] = self.vertex_cost(vertex, augmented)
            for edge in graph.edges:
                costs[edge.key] = self.edge_cost(edge, augmented)
            return costs

        base_costs = self._cached_base_costs(base)
        overrides: Dict[Hashable, float] = {}
        for vertex in graph.added_vertices:
            overrides[vertex.key] = self.vertex_cost(vertex, augmented)
        for edge in graph.added_edges:
            overrides[edge.key] = self.edge_cost(edge, augmented)
        # Matched base elements may be rescored (C3 divides by sm(n)).
        for key in augmented.match_scores:
            if key in overrides:
                continue
            if is_edge_key(key):
                overrides[key] = self.edge_cost(graph.edge(key), augmented)
            else:
                overrides[key] = self.vertex_cost(graph.vertex(key), augmented)
        return ChainMap(overrides, base_costs)

    def _cached_base_costs(self, base) -> Dict[Hashable, float]:
        cached = getattr(self, "_base_cost_cache", None)
        if cached is not None:
            graph_ref, version, costs = cached
            if graph_ref() is base and version == base.version:
                return costs
        # Score-neutral view: base elements carry no keyword matches.
        neutral = AugmentedSummaryGraph(base, [], {})
        costs = {}
        for vertex in base.vertices:
            costs[vertex.key] = self.vertex_cost(vertex, neutral)
        for edge in base.edges:
            costs[edge.key] = self.edge_cost(edge, neutral)
        self._base_cost_cache = (weakref.ref(base), base.version, costs)
        return costs

    def invalidate_cache(self) -> None:
        """Drop cached per-element base costs (e.g. after graph updates)."""
        self._base_cost_cache = None

    def vertex_cost(self, vertex: SummaryVertex, augmented: AugmentedSummaryGraph) -> float:
        raise NotImplementedError

    def edge_cost(self, edge: SummaryEdge, augmented: AugmentedSummaryGraph) -> float:
        raise NotImplementedError


class PathLengthCost(CostModel):
    """C1: the cost of an element is simply one — graph cost is total path
    length."""

    name = "c1"

    def vertex_cost(self, vertex, augmented) -> float:
        return 1.0

    def edge_cost(self, edge, augmented) -> float:
        return 1.0


class PopularityCost(CostModel):
    """C2: ``c(v) = 1 − |v_agg|/|V|`` and ``c(e) = 1 − |e_agg|/|E|``.

    Popular summary elements (aggregating many data elements) are cheaper,
    steering the exploration toward structures that many data instances
    support.  Augmentation-time elements (value vertices, A-edges) have no
    aggregation semantics in the paper's formula and cost 1.
    """

    name = "c2"

    def __init__(
        self,
        min_cost: float = DEFAULT_MIN_COST,
        literal_normalization: bool = False,
    ):
        self._min_cost = min_cost
        self._literal = literal_normalization
        # The literal formula divides by the augmented graph's element
        # counts, which vary per query — base costs cannot be cached then.
        self.cacheable = not literal_normalization

    def vertex_cost(self, vertex, augmented) -> float:
        if vertex.kind in (SummaryVertexKind.VALUE, SummaryVertexKind.ARTIFICIAL):
            return 1.0
        if self._literal:
            total = max(len(augmented.graph.vertices), 1)
        else:
            total = max(augmented.graph.total_entities, 1)
        return max(self._min_cost, 1.0 - vertex.agg_count / total)

    def edge_cost(self, edge, augmented) -> float:
        if edge.kind is not SummaryEdgeKind.RELATION:
            return 1.0
        if self._literal:
            total = max(len(augmented.graph.edges), 1)
        else:
            total = max(augmented.graph.total_relation_edges, 1)
        return max(self._min_cost, 1.0 - edge.agg_count / total)


class KeywordMatchCost(CostModel):
    """C3: ``c(n) / sm(n)`` — a base cost divided by the matching score.

    ``sm(n) ∈ (0, 1]`` for keyword elements and 1 otherwise, so well-matching
    keyword elements get cheaper relative to poorly matching ones while
    non-keyword elements keep their base cost.  The base defaults to C2,
    matching the paper's presentation of C3 as a refinement of C2.
    """

    name = "c3"

    def __init__(self, base: Optional[CostModel] = None, min_score: float = 1e-3):
        self._base = base or PopularityCost()
        self._min_score = min_score
        self.cacheable = getattr(self._base, "cacheable", True)

    def vertex_cost(self, vertex, augmented) -> float:
        base = self._base.vertex_cost(vertex, augmented)
        return base / self._score(vertex.key, augmented)

    def edge_cost(self, edge, augmented) -> float:
        base = self._base.edge_cost(edge, augmented)
        return base / self._score(edge.key, augmented)

    def _score(self, key: Hashable, augmented: AugmentedSummaryGraph) -> float:
        return max(self._min_score, augmented.matching_score(key))


def make_cost_model(name: str) -> CostModel:
    """Factory for the model names used throughout benchmarks and the CLI.

    >>> make_cost_model("c1").name
    'c1'
    """
    try:
        factory = COST_MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown cost model {name!r}; choose from {sorted(COST_MODELS)}"
        ) from None
    return factory()


def _make_pagerank():
    from repro.scoring.pagerank import PageRankCost

    return PageRankCost()


COST_MODELS = {
    "c1": PathLengthCost,
    "c2": PopularityCost,
    "c3": KeywordMatchCost,
    "pagerank": _make_pagerank,
}
