"""Out-of-core bundle construction: stream triples in, stream sections out.

:func:`build_bundle_streaming` consumes a triple *iterator* — an open
N-Triples file handle through :func:`repro.rdf.ntriples.parse_ntriples`,
or a generator like :func:`repro.datasets.lubm.iter_lubm_triples` — and
writes a ``.reprobundle`` that loads into an engine behaviorally
identical to one built in memory from the same triples (property-tested
in ``tests/property/test_stream_build_identity.py``).  The corpus is
never resident:

* **pass A** (the only pass over the input) interns terms, classifies
  and dedups each triple, appends its id row to an on-disk segment
  spool, and maintains the *hot* aggregates: role refcounts, type/
  subclass pairs, display labels, predicate counts, conflicts;
* **pass B** re-reads the spool — with the full classification known —
  to project the summary graph, seed the keyword class contexts, and
  externally sort the rows into the adjacency, triple-bucket, and
  SPO/POS/OSP sections; posting lists spill to sorted runs past the
  in-memory budget and k-way merge at finalize.

Peak RSS is ``O(hot structures + spill budgets)`` instead of
``O(corpus)``: what stays resident is exactly what the paper calls the
small structures (summary graph, keyword vocabulary, class contexts)
plus bounded sort buffers, while triple-shaped state lives in the
temporary segment files.
"""

from __future__ import annotations

import os
import struct
import tempfile
import time
from array import array
from itertools import groupby
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro import __version__
from repro.core.exploration import DEFAULT_DMAX
from repro.keyword.analysis import Analyzer
from repro.keyword.inverted_index import SpillingPostingsBuilder
from repro.keyword.keyword_index import element_label_text
from repro.rdf.namespace import (
    LABEL_PREDICATES,
    SUBCLASS_PREDICATES,
    TYPE_PREDICATES,
    local_name,
)
from repro.rdf.terms import Literal, Term, URI
from repro.rdf.triples import Triple
from repro.scoring.cost import COST_MODELS
from repro.summary.elements import THING_KEY, SummaryEdgeKind
from repro.summary.summary_graph import _SUBCLASS_LABEL, SummaryGraph

from repro.storage.bundle import (
    _EDGE_CODE,
    _ELEMENT_CODE,
    _VERTEX_CODE,
    BundleWriter,
    SummaryVertexKind,
)
from repro.storage.codec import (
    Interner,
    TermInterner,
    _pack_str,
    encode_grouping,
    encode_ids,
    encode_raw_ids,
    encode_term_record,
    term_order_key,
)
from repro.storage.errors import UnsupportedEngineError
from repro.storage.segments import (
    ExternalSorter,
    GroupingSpool,
    SegmentWriter,
    TwoLevelSpool,
    iter_rows,
    write_ids_from_segment,
    write_raw_from_segment,
)

_U64 = struct.Struct("<Q")
_QQI = struct.Struct("<QQI")

#: Default in-memory budget per spilled structure (each of the external
#: sorters and the postings builder gets its own budget of this size).
DEFAULT_SPILL_BUDGET = 64 * 1024 * 1024

#: Rough resident bytes per buffered row tuple (Python tuple of small
#: ints); converts the byte budget into the sorters' row budgets.
_BYTES_PER_ROW = 96

# Row classification codes in the kind spool.  "Bad" rows are Definition
# 1 violations the in-memory DataGraph stores but excludes from every
# derived structure; they occupy a triple index (and appear in the
# triples + store sections) without contributing refs or buckets.
_K_TYPE = 0
_K_SUBCLASS = 1
_K_ATTR = 2
_K_REL = 3
_K_TYPE_BAD = 4
_K_SUBCLASS_BAD = 5

# Ids fit three-per-word in the dedup key while the vocabulary is below
# 2^21 terms; wider corpora fall back to tuple keys (ints and tuples
# never compare equal, so mixing the two in one set is sound).
_PACK_LIMIT = 1 << 21


def _capture_rows(
    rows: Iterable[Tuple[int, int, int]], section, buffer_rows: int = 16384
) -> Iterator[Tuple[int, int, int]]:
    """Tee a sorted-row stream into a raw int64 section while yielding it.

    The mmap-tier triple runs (``store2.*``) are the *same* merge pass
    that feeds the two-level store sections; this wrapper writes each
    row to the open raw section in bounded chunks on the way through, so
    the sort is consumed exactly once.
    """
    buf: List[int] = []
    flush_at = 3 * max(1, buffer_rows)
    for row in rows:
        buf.extend(row)
        if len(buf) >= flush_at:
            section.write(encode_raw_ids(buf))
            buf.clear()
        yield row
    if buf:
        section.write(encode_raw_ids(buf))


def build_bundle_streaming(
    triples: Iterable[Triple],
    path,
    *,
    force: bool = False,
    cost_model: str = "c3",
    k: int = 10,
    dmax: int = DEFAULT_DMAX,
    strict_keywords: bool = False,
    guided: bool = False,
    search_cache_size: int = 0,
    use_vectorized: Optional[bool] = None,
    fuzzy_max_distance: int = 1,
    max_matches_per_keyword: int = 8,
    lookup_cache_size: int = 1024,
    spill_budget_bytes: int = DEFAULT_SPILL_BUDGET,
    progress: Optional[Callable[[int, float], None]] = None,
    progress_every: int = 100_000,
    tmp_dir=None,
) -> Dict[str, object]:
    """Build a bundle from a triple iterator without materializing it.

    Parameters mirror the engine/CLI configuration persisted in the
    bundle header; ``spill_budget_bytes`` bounds each external sort's
    resident buffer, ``progress(n_triples, elapsed_seconds)`` is invoked
    every ``progress_every`` input triples.  Returns the
    :meth:`BundleWriter.finish` info dict extended with build statistics
    (triple/term counts, seconds, spill-run counts).
    """
    if cost_model not in COST_MODELS:
        raise UnsupportedEngineError(
            f"unknown cost model {cost_model!r}; bundles persist only the "
            f"stock models {sorted(COST_MODELS)}"
        )
    path = os.fspath(path)
    budget_rows = max(4, spill_budget_bytes // _BYTES_PER_ROW)
    started = time.perf_counter()

    writer = BundleWriter(path, force=force)
    spool_parent = tmp_dir if tmp_dir is not None else (
        os.path.dirname(os.path.abspath(path)) or "."
    )
    try:
        with tempfile.TemporaryDirectory(
            prefix="repro-stream-", dir=spool_parent
        ) as tmp:
            info = _build(
                triples,
                writer,
                tmp,
                budget_rows=budget_rows,
                cost_model=cost_model,
                k=k,
                dmax=dmax,
                strict_keywords=strict_keywords,
                guided=guided,
                search_cache_size=search_cache_size,
                use_vectorized=use_vectorized,
                fuzzy_max_distance=fuzzy_max_distance,
                max_matches_per_keyword=max_matches_per_keyword,
                lookup_cache_size=lookup_cache_size,
                progress=progress,
                progress_every=max(1, progress_every),
                started=started,
            )
    except BaseException:
        writer.abort()
        raise
    info["build_seconds"] = time.perf_counter() - started
    return info


def _build(
    triples,
    writer: BundleWriter,
    tmp: str,
    *,
    budget_rows: int,
    cost_model: str,
    k: int,
    dmax: int,
    strict_keywords: bool,
    guided: bool,
    search_cache_size: int,
    use_vectorized: Optional[bool],
    fuzzy_max_distance: int,
    max_matches_per_keyword: int,
    lookup_cache_size: int,
    progress,
    progress_every: int,
    started: float,
) -> Dict[str, object]:
    interner = TermInterner()
    term_id = interner.id
    terms = interner.terms

    # ------------------------------------------------------------------
    # Pass A: one pass over the input.
    # ------------------------------------------------------------------
    rows_spool = SegmentWriter(os.path.join(tmp, "rows.seg"), 3)
    kind_spool = SegmentWriter(os.path.join(tmp, "kinds.seg"), 1)

    seen: Set = set()
    # Role refcounts and classification, id-keyed, insertion order
    # matching the in-memory DataGraph's first-acquisition order.
    entity_refs: Dict[int, int] = {}
    class_refs: Dict[int, int] = {}
    value_refs: Dict[int, int] = {}
    entities: Set[int] = set()
    classes: Set[int] = set()
    types_of: Dict[int, List[int]] = {}
    type_pairs: Dict[Tuple[int, int], int] = {}
    subclass_pairs: Dict[Tuple[int, int], int] = {}
    type_pred_counts: Dict[int, int] = {}
    subclass_pred_counts: Dict[int, int] = {}
    rel_pred_counts: Dict[int, int] = {}
    attr_pred_counts: Dict[int, int] = {}
    out_rank: Dict[int, int] = {}
    in_rank: Dict[int, int] = {}
    labels: Dict[int, Tuple[int, int]] = {}
    label_rank_cache: Dict[int, Optional[int]] = {}
    conflicts: List[str] = []
    n_rows = 0

    def acquire_entity(tid: int, term: Term) -> None:
        entity_refs[tid] = entity_refs.get(tid, 0) + 1
        if tid in classes:
            conflicts.append(f"term used both as class and entity: {term}")
            return
        entities.add(tid)

    def acquire_class(tid: int, term: Term) -> None:
        class_refs[tid] = class_refs.get(tid, 0) + 1
        if tid in entities:
            conflicts.append(f"term used both as entity and class: {term}")
            entities.discard(tid)
        classes.add(tid)

    for triple in triples:
        s, p, o = triple
        sid = term_id(s)
        pid = term_id(p)
        oid = term_id(o)
        if (sid | pid | oid) < _PACK_LIMIT:
            key = (sid << 42) | (pid << 21) | oid
        else:
            key = (sid, pid, oid)
        if key in seen:
            continue
        seen.add(key)

        if p in TYPE_PREDICATES:
            if isinstance(o, Literal):
                conflicts.append(f"type edge with literal object: {triple.n3()}")
                kind = _K_TYPE_BAD
            else:
                acquire_entity(sid, s)
                acquire_class(oid, o)
                pair = (sid, oid)
                count = type_pairs.get(pair, 0) + 1
                type_pairs[pair] = count
                if count == 1:
                    types_of.setdefault(sid, []).append(oid)
                type_pred_counts[pid] = type_pred_counts.get(pid, 0) + 1
                kind = _K_TYPE
        elif p in SUBCLASS_PREDICATES:
            if isinstance(o, Literal):
                conflicts.append(
                    f"subclass edge with literal endpoint: {triple.n3()}"
                )
                kind = _K_SUBCLASS_BAD
            else:
                acquire_class(sid, s)
                acquire_class(oid, o)
                pair = (sid, oid)
                subclass_pairs[pair] = subclass_pairs.get(pair, 0) + 1
                subclass_pred_counts[pid] = subclass_pred_counts.get(pid, 0) + 1
                kind = _K_SUBCLASS
        elif isinstance(o, Literal):
            acquire_entity(sid, s)
            value_refs[oid] = value_refs.get(oid, 0) + 1
            attr_pred_counts[pid] = attr_pred_counts.get(pid, 0) + 1
            if sid not in out_rank:
                out_rank[sid] = len(out_rank)
            if oid not in in_rank:
                in_rank[oid] = len(in_rank)
            rank = label_rank_cache.get(pid, -1)
            if rank == -1:
                try:
                    rank = LABEL_PREDICATES.index(p)
                except ValueError:
                    rank = None
                label_rank_cache[pid] = rank
            if rank is not None:
                entry = labels.get(sid)
                if entry is None or rank < entry[0]:
                    labels[sid] = (rank, oid)
            kind = _K_ATTR
        else:
            acquire_entity(sid, s)
            acquire_entity(oid, o)
            rel_pred_counts[pid] = rel_pred_counts.get(pid, 0) + 1
            if sid not in out_rank:
                out_rank[sid] = len(out_rank)
            if oid not in in_rank:
                in_rank[oid] = len(in_rank)
            kind = _K_REL

        rows_spool.append((sid, pid, oid))
        kind_spool.append_value(kind)
        n_rows += 1
        if progress is not None and n_rows % progress_every == 0:
            progress(n_rows, time.perf_counter() - started)

    rows_spool.close()
    kind_spool.close()
    del seen  # the largest pass-A structure; done deduping

    untyped_count = sum(1 for e in entities if e not in types_of)
    stats = {
        "triples": n_rows,
        "entities": len(entities),
        "classes": len(classes),
        "values": len(value_refs),
        "relation_labels": len(rel_pred_counts),
        "attribute_labels": len(attr_pred_counts),
        "relation_edges": sum(rel_pred_counts.values()),
        "attribute_edges": sum(attr_pred_counts.values()),
        "untyped_entities": untyped_count,
    }

    # ------------------------------------------------------------------
    # Sections straight from pass-A state.
    # ------------------------------------------------------------------
    with writer.section("triples") as sec:
        write_ids_from_segment(sec, rows_spool)

    def flat_pairs(mapping) -> Iterable[int]:
        for key, value in mapping.items():
            yield key
            yield value

    writer.add_section("graph.entity_refs", encode_ids(flat_pairs(entity_refs)))
    writer.add_section("graph.class_refs", encode_ids(flat_pairs(class_refs)))
    writer.add_section("graph.value_refs", encode_ids(flat_pairs(value_refs)))

    def flat_triads(mapping) -> Iterable[int]:
        for (a, b), count in mapping.items():
            yield a
            yield b
            yield count

    writer.add_section("graph.type_pairs", encode_ids(flat_triads(type_pairs)))
    writer.add_section(
        "graph.subclass_pairs", encode_ids(flat_triads(subclass_pairs))
    )

    # ------------------------------------------------------------------
    # Pass B: one pass over the spool feeds every external sort.
    # ------------------------------------------------------------------
    sort_spo = ExternalSorter(tmp, 3, budget_rows, "spo")
    sort_pos = ExternalSorter(tmp, 3, budget_rows, "pos")
    sort_osp = ExternalSorter(tmp, 3, budget_rows, "osp")
    sort_out = ExternalSorter(tmp, 5, budget_rows, "out")
    sort_in = ExternalSorter(tmp, 5, budget_rows, "in")
    sort_rel = ExternalSorter(tmp, 5, budget_rows, "rel")
    sort_attr = ExternalSorter(tmp, 5, budget_rows, "attr")
    rel_rank = {pid: i for i, pid in enumerate(rel_pred_counts)}
    attr_rank = {pid: i for i, pid in enumerate(attr_pred_counts)}

    seq = 0
    kind_iter = iter_rows(kind_spool.path, 1)
    for sid, pid, oid in iter_rows(rows_spool.path, 3):
        (kind,) = next(kind_iter)
        sort_spo.add((sid, pid, oid))
        sort_pos.add((pid, oid, sid))
        sort_osp.add((oid, sid, pid))
        if kind == _K_REL:
            sort_out.add((out_rank[sid], seq, sid, pid, oid))
            sort_in.add((in_rank[oid], seq, oid, pid, sid))
            sort_rel.add((rel_rank[pid], seq, pid, sid, oid))
        elif kind == _K_ATTR:
            sort_out.add((out_rank[sid], seq, sid, pid, oid))
            sort_in.add((in_rank[oid], seq, oid, pid, sid))
            sort_attr.add((attr_rank[pid], seq, pid, sid, oid))
        seq += 1
    del out_rank, in_rank

    # Adjacency: sorted by (first-seen-as-vertex rank, insertion seq),
    # which reproduces the in-memory dicts' insertion order exactly.
    for name, sorter in (("graph.out", sort_out), ("graph.in", sort_in)):
        grouping = GroupingSpool(tmp, name.replace(".", "_"))
        for vertex, vertex_rows in groupby(
            sorter.sorted_rows(), key=lambda row: row[2]
        ):
            grouping.add(
                vertex,
                (value for row in vertex_rows for value in (row[3], row[4])),
            )
        with writer.section(name) as sec:
            grouping.write_to(sec)
        grouping.cleanup()
        sorter.cleanup()

    # Relation buckets + summary edge projection in one sorted pass.
    types_sorted: Dict[int, Tuple[int, ...]] = {
        e: tuple(sorted(v)) for e, v in types_of.items()
    }
    edge_counts: Dict[Tuple[int, int, int], int] = {}
    rel_bucket = GroupingSpool(tmp, "rel_buckets")
    for pid, pred_rows in groupby(sort_rel.sorted_rows(), key=lambda row: row[2]):
        indices: List[int] = []
        for _, row_seq, _, sid, oid in pred_rows:
            indices.append(row_seq)
            for sc in types_sorted.get(sid, (-1,)):
                for tc in types_sorted.get(oid, (-1,)):
                    ekey = (pid, sc, tc)
                    edge_counts[ekey] = edge_counts.get(ekey, 0) + 1
        rel_bucket.add(pid, indices)
    with writer.section("graph.relation_triples") as sec:
        rel_bucket.write_to(sec)
    rel_bucket.cleanup()
    sort_rel.cleanup()

    # Attribute buckets + keyword class contexts in one sorted pass
    # (the same order KeywordIndex._build seeds its refcounts in).
    attr_class_refs: Dict[int, Dict[int, int]] = {}
    value_occ_refs: Dict[int, Dict[Tuple[int, int], int]] = {}
    attr_bucket = GroupingSpool(tmp, "attr_buckets")
    for pid, pred_rows in groupby(sort_attr.sorted_rows(), key=lambda row: row[2]):
        indices = []
        label_refs = attr_class_refs.setdefault(pid, {})
        for _, row_seq, _, sid, oid in pred_rows:
            indices.append(row_seq)
            refs = value_occ_refs.setdefault(oid, {})
            for cls in types_sorted.get(sid, (-1,)):
                label_refs[cls] = label_refs.get(cls, 0) + 1
                occ = (pid, cls)
                refs[occ] = refs.get(occ, 0) + 1
        attr_bucket.add(pid, indices)
    with writer.section("graph.attribute_triples") as sec:
        attr_bucket.write_to(sec)
    attr_bucket.cleanup()
    sort_attr.cleanup()

    with writer.section("graph.labels") as sec:
        sec.write(_U64.pack(len(labels)))
        for sid, (rank, value_id) in labels.items():
            data = terms[value_id].lexical.encode("utf-8")
            sec.write(_QQI.pack(sid, rank, len(data)))
            sec.write(data)

    writer.add_section(
        "graph.type_pred_counts", encode_ids(flat_pairs(type_pred_counts))
    )
    writer.add_section(
        "graph.subclass_pred_counts", encode_ids(flat_pairs(subclass_pred_counts))
    )

    # Triple store indexes: three external sorts, each consumed once —
    # teed into the raw mmap-tier runs (store2.*) and the two-level
    # hash-store sections (store.*).
    for name, raw_name, sorter in (
        ("store.spo", "store2.spo", sort_spo),
        ("store.pos", "store2.pos", sort_pos),
        ("store.osp", "store2.osp", sort_osp),
    ):
        two_level = TwoLevelSpool(tmp, name.replace(".", "_"))
        with writer.section(raw_name) as sec:
            two_level.feed(_capture_rows(sorter.sorted_rows(), sec))
        with writer.section(name) as sec:
            two_level.write_to(sec)
        two_level.cleanup()
        sorter.cleanup()

    # ------------------------------------------------------------------
    # Keyword index: elements in _build() order, postings via spill runs.
    # ------------------------------------------------------------------
    kindex_started = time.perf_counter()
    analyzer = Analyzer()
    analyze = analyzer.analyze
    vocab = Interner()
    vocab_id = vocab.id
    postings = SpillingPostingsBuilder(tmp, budget_rows)
    elements_spool = SegmentWriter(os.path.join(tmp, "elements.seg"), 2)
    element_terms = GroupingSpool(tmp, "element_terms")
    element_count = 0

    def class_label_text(tid: int) -> str:
        entry = labels.get(tid)
        if entry is not None:
            return terms[entry[1]].lexical
        term = terms[tid]
        if isinstance(term, URI):
            return local_name(term)
        return str(term)

    def index_element(code: int, tid: int, text: str) -> None:
        nonlocal element_count
        analyzed = analyze(text)
        if not analyzed:
            return
        counts: Dict[str, int] = {}
        for t in analyzed:
            counts[t] = counts.get(t, 0) + 1
        total = len(analyzed)
        eid = element_count
        element_count += 1
        elements_spool.append((code, tid))
        term_ids = []
        for text_term, tf in counts.items():
            vid = vocab_id(text_term)
            term_ids.append(vid)
            postings.add(vid, eid, tf, total)
        element_terms.add(eid, term_ids)

    code_class = _ELEMENT_CODE["class"]
    code_relation = _ELEMENT_CODE["relation"]
    code_attribute = _ELEMENT_CODE["attribute"]
    code_value = _ELEMENT_CODE["value"]
    for cid in class_refs:
        index_element(
            code_class,
            cid,
            element_label_text(
                "class", terms[cid], lambda term: class_label_text(term_id(term))
            ),
        )
    for pid in rel_pred_counts:
        index_element(
            code_relation, pid, element_label_text("relation", terms[pid], None)
        )
    for pid in attr_pred_counts:
        index_element(
            code_attribute, pid, element_label_text("attribute", terms[pid], None)
        )
    for vid in value_refs:
        index_element(code_value, vid, element_label_text("value", terms[vid], None))

    with writer.section("kindex.vocab") as sec:
        sec.write(_U64.pack(len(vocab.items)))
        vocab_offsets = array("q", [8])
        offset = 8
        for text in vocab.items:
            packed = _pack_str(text)
            offset += len(packed)
            vocab_offsets.append(offset)
            sec.write(packed)
    writer.add_section("kindex2.vocab.offsets", encode_raw_ids(vocab_offsets))
    writer.add_section(
        "kindex2.vocab.sorted",
        encode_raw_ids(
            sorted(range(len(vocab.items)), key=vocab.items.__getitem__)
        ),
    )
    elements_spool.close()
    with writer.section("kindex.elements") as sec:
        write_ids_from_segment(sec, elements_spool)
    # The sorted element permutation re-reads the closed spool: two
    # resident int64 arrays over the element set (vocabulary scale, not
    # corpus scale) are within the hot-structure budget.
    element_codes = array("q")
    element_tids = array("q")
    for code, tid in iter_rows(elements_spool.path, 2):
        element_codes.append(code)
        element_tids.append(tid)
    writer.add_section(
        "kindex2.elements.sorted",
        encode_raw_ids(
            sorted(
                range(element_count),
                key=lambda i: (element_codes[i], element_tids[i]),
            )
        ),
    )
    del element_codes, element_tids
    # Posting lists: the merged spill runs feed the v1 grouping and the
    # mmap-tier run layout (per-vocab-id row offsets + flat rows) in one
    # consumption.
    postings_grouping = GroupingSpool(tmp, "postings_grouping")
    postings_runs_spool = SegmentWriter(os.path.join(tmp, "postings_runs.seg"), 3)
    run_offsets = array("q", [0])
    rows_so_far = 0
    for vid, flat in postings.merged_groups():
        while len(run_offsets) <= vid:
            run_offsets.append(rows_so_far)  # vocab id with no postings
        it = iter(flat)
        for row in zip(it, it, it):
            postings_runs_spool.append(row)
        rows_so_far += len(flat) // 3
        run_offsets.append(rows_so_far)
        postings_grouping.add(vid, flat)
    while len(run_offsets) <= len(vocab.items):
        run_offsets.append(rows_so_far)
    with writer.section("kindex.postings") as sec:
        postings_grouping.write_to(sec)
    postings_grouping.cleanup()
    postings_runs_spool.close()
    writer.add_section("kindex2.postings.offsets", encode_raw_ids(run_offsets))
    with writer.section("kindex2.postings.runs") as sec:
        write_raw_from_segment(sec, postings_runs_spool)
    postings_runs_spool.unlink()
    postings_runs = postings.runs_spilled
    postings.cleanup()
    with writer.section("kindex.element_terms") as sec:
        element_terms.write_to(sec)
    with writer.section("kindex2.element_terms.offsets") as sec:
        element_terms.write_raw_offsets(sec)
    with writer.section("kindex2.element_terms.runs") as sec:
        element_terms.write_raw_values(sec)
    element_terms.cleanup()
    elements_spool.unlink()

    writer.add_section(
        "kindex.attr_class_refs",
        encode_grouping(
            (pid, flat_pairs(refs)) for pid, refs in attr_class_refs.items()
        ),
    )
    writer.add_section(
        "kindex.value_occ_refs",
        encode_grouping(
            (
                vid,
                (
                    value
                    for (label_id, cls), count in refs.items()
                    for value in (label_id, cls, count)
                ),
            )
            for vid, refs in value_occ_refs.items()
        ),
    )
    # The same refcount groupings re-keyed in ascending term-id order,
    # so the mmap tier can bisect them without decoding.
    writer.add_section(
        "kindex2.attr_refs",
        encode_grouping(
            (pid, flat_pairs(attr_class_refs[pid]))
            for pid in sorted(attr_class_refs)
        ),
    )
    writer.add_section(
        "kindex2.value_refs",
        encode_grouping(
            (
                vid,
                (
                    value
                    for (label_id, cls), count in value_occ_refs[vid].items()
                    for value in (label_id, cls, count)
                ),
            )
            for vid in sorted(value_occ_refs)
        ),
    )
    kindex_seconds = time.perf_counter() - kindex_started

    # ------------------------------------------------------------------
    # Summary graph: replay the Definition 4 projection from aggregates.
    # ------------------------------------------------------------------
    summary_started = time.perf_counter()
    summary = SummaryGraph()
    summary.total_entities = max(stats["entities"], 1)
    summary.total_relation_edges = max(stats["relation_edges"], 1)
    summary.total_attribute_edges = max(stats["attribute_edges"], 1)

    instance_counts: Dict[int, int] = {}
    for _, cls in type_pairs:
        instance_counts[cls] = instance_counts.get(cls, 0) + 1
    for cid in class_refs:
        summary.add_class_vertex(terms[cid], agg_count=instance_counts.get(cid, 0))
    if untyped_count:
        summary.ensure_thing(agg_count=untyped_count)
    for (pid, sc, tc), count in edge_counts.items():
        sk = THING_KEY if sc == -1 else ("class", terms[sc])
        tk = THING_KEY if tc == -1 else ("class", terms[tc])
        if sk == THING_KEY or tk == THING_KEY:
            summary.ensure_thing()
        summary.add_edge(
            terms[pid], SummaryEdgeKind.RELATION, sk, tk, agg_count=count
        )
    for sub, sup in subclass_pairs:
        summary.add_edge(
            _SUBCLASS_LABEL,
            SummaryEdgeKind.SUBCLASS,
            ("class", terms[sub]),
            ("class", terms[sup]),
            agg_count=1,
        )
    summary.build_seconds = time.perf_counter() - summary_started

    summary_state = summary.state_for_persistence()
    vertices = list(summary_state["vertices"].values())
    vertex_index = {v.key: i for i, v in enumerate(vertices)}

    def vertex_term_id(vertex) -> int:
        if vertex.kind is SummaryVertexKind.THING:
            return -1
        return term_id(vertex.key[1])

    writer.add_section(
        "summary.vertices",
        encode_ids(
            value
            for v in vertices
            for value in (_VERTEX_CODE[v.kind], vertex_term_id(v), v.agg_count)
        ),
    )
    writer.add_section(
        "summary.edges",
        encode_ids(
            value
            for e in summary_state["edges"].values()
            for value in (
                term_id(e.label),
                _EDGE_CODE[e.kind],
                vertex_index[e.source_key],
                vertex_index[e.target_key],
                e.agg_count,
            )
        ),
    )

    substrate = summary.exploration_substrate()
    writer.add_section("substrate.offsets", encode_raw_ids(substrate.offsets))
    writer.add_section("substrate.targets", encode_raw_ids(substrate.targets))

    # Term table last: every id is assigned by now (the loader finds it
    # by name, not position).  The byte-offset table accumulates along
    # the way (8 bytes per term, marginal next to the resident interner)
    # and the order-key permutation makes the table binary-searchable.
    term_offsets = array("q", [8])
    with writer.section("terms") as sec:
        sec.write(_U64.pack(len(terms)))
        buffer: List[bytes] = []
        buffered = 0
        offset = 8
        for term in terms:
            record = encode_term_record(term, term_id)
            offset += len(record)
            term_offsets.append(offset)
            buffer.append(record)
            buffered += len(record)
            if buffered >= (1 << 20):
                sec.write(b"".join(buffer))
                buffer.clear()
                buffered = 0
        if buffer:
            sec.write(b"".join(buffer))
    writer.add_section("terms.offsets", encode_raw_ids(term_offsets))
    writer.add_section(
        "terms.sorted",
        encode_raw_ids(
            sorted(
                range(len(terms)),
                key=lambda i: term_order_key(terms[i], term_id),
            )
        ),
    )

    rows_spool.unlink()
    kind_spool.unlink()

    meta = {
        "writer": f"repro {__version__}",
        "builder": "stream",
        "snapshot": {
            "summary_version": summary.snapshot_key,
            "index_version": 0,
            "epoch": 0,
        },
        "engine": {
            "cost_model": cost_model,
            "k": k,
            "dmax": dmax,
            "strict_keywords": strict_keywords,
            "guided": guided,
            "search_cache_size": search_cache_size,
            "use_vectorized": use_vectorized,
        },
        "graph": {
            "strict": False,
            "conflicts": conflicts,
            "stats": stats,
        },
        "kindex": {
            "version": 0,
            "fuzzy_max_distance": fuzzy_max_distance,
            "max_matches": max_matches_per_keyword,
            "lookup_cache_size": lookup_cache_size,
            "build_seconds": kindex_seconds,
        },
        "summary": {
            "version": summary_state["version"],
            "total_entities": summary_state["total_entities"],
            "total_relation_edges": summary_state["total_relation_edges"],
            "total_attribute_edges": summary_state["total_attribute_edges"],
            "build_seconds": summary_state["build_seconds"],
        },
        "counts": {
            "terms": len(terms),
            "triples": n_rows,
            "summary_vertices": len(vertices),
            "summary_edges": len(summary_state["edges"]),
        },
    }

    info = writer.finish(meta)
    info.update(
        {
            "triples": n_rows,
            "terms": len(terms),
            "elements": element_count,
            "posting_rows": postings.posting_rows,
            "postings_runs": postings_runs,
            "conflicts": len(conflicts),
        }
    )
    return info
