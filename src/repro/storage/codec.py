"""Binary primitives of the bundle format: terms, id blobs, groupings.

The bundle is pickle-free by design — loading an artifact must never
execute data-controlled code — so every structure is reduced to three
primitive shapes with explicit little-endian encodings:

* a **term table**: each distinct RDF term encoded once, addressed by its
  position, with datatype URIs interned *before* the literals that carry
  them so decoding is a single forward pass;
* **id blobs**: ``int64`` arrays (term ids, triple indices, counts),
  decoded wholesale via :meth:`array.array.frombytes` — the C-speed path
  that makes cold start cheap;
* **groupings**: a ``keys / offsets / flat values`` triple of id blobs
  encoding one mapping ``key -> [values]``, restored with slice
  comprehensions instead of per-entry insertion.

Strings (analyzed index terms, display labels) travel in **string
streams** with the same count-prefixed framing.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.rdf.terms import BNode, Literal, Term, URI

from repro.storage.errors import BundleFormatError


def fsync_directory(file_path) -> None:
    """Flush the directory entry of a just created/renamed file.

    ``fsync`` on the file alone does not make its *name* durable; after
    an ``os.replace`` or first creation, a power loss can still lose the
    directory entry.  Best-effort: platforms or filesystems that cannot
    open/fsync a directory are silently tolerated.
    """
    directory = os.path.dirname(os.path.abspath(os.fspath(file_path))) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_LITTLE_ENDIAN = sys.byteorder == "little"

# Term record kinds (one byte each).
_TERM_URI = 0
_TERM_BNODE = 1
_TERM_LITERAL = 2
_TERM_LITERAL_DT = 3
_TERM_LITERAL_LANG = 4

#: Keyword-index element kinds in wire-code order: an element reference is
#: encoded as ``(code, term-id)``, and ``ELEMENT_KINDS[code]`` restores the
#: kind string of the element key.
ELEMENT_KINDS = ("class", "relation", "attribute", "value")
ELEMENT_CODE = {kind: code for code, kind in enumerate(ELEMENT_KINDS)}


class Interner:
    """Dense get-or-assign id table, first-seen order.

    ``id(item)`` is stable for the lifetime of the interner; iterating
    :attr:`items` yields the table in id order — the order the encoders
    write and the decoders rebuild.
    """

    __slots__ = ("_ids", "items")

    def __init__(self):
        self._ids: Dict = {}
        self.items: List = []

    def id(self, item) -> int:
        existing = self._ids.get(item)
        if existing is not None:
            return existing
        index = len(self.items)
        self._ids[item] = index
        self.items.append(item)
        return index

    def __len__(self) -> int:
        return len(self.items)


class TermInterner(Interner):
    """Term interner that orders datatype URIs before their literals, so
    decoding the term table is one forward pass."""

    __slots__ = ()

    def id(self, term: Term) -> int:
        if (
            term not in self._ids
            and isinstance(term, Literal)
            and term.datatype is not None
        ):
            super().id(term.datatype)
        return super().id(term)

    @property
    def terms(self) -> List[Term]:
        return self.items


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return _U32.pack(len(data)) + data


class Reader:
    """Forward-only reader over one section's bytes."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf):
        self.buf = buf
        self.pos = 0

    def _take(self, n: int):
        end = self.pos + n
        if end > len(self.buf):
            raise BundleFormatError(
                f"section truncated: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        chunk = self.buf[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def string(self) -> str:
        length = self.u32()
        return bytes(self._take(length)).decode("utf-8")

    def ids(self) -> List[int]:
        """One count-prefixed int64 blob, as a plain list of ints."""
        count = self.u64()
        raw = self._take(8 * count)
        a = array("q")
        a.frombytes(raw)
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
            a.byteswap()
        return a.tolist()

    def at_end(self) -> bool:
        return self.pos >= len(self.buf)


def encode_ids(seq: Iterable[int]) -> bytes:
    """Count-prefixed ``int64`` little-endian blob."""
    a = array("q", seq)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
        a = array("q", a)
        a.byteswap()
    return _U64.pack(len(a)) + a.tobytes()


def encode_raw_ids(seq) -> bytes:
    """A bare ``int64`` little-endian blob — no framing, so a reader can
    hand the bytes straight to ``mmap``-backed views (the substrate's CSR
    sections)."""
    if isinstance(seq, array) and seq.itemsize == 8:
        a = seq
    else:
        a = array("q", seq)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
        a = array("q", a)
        a.byteswap()
    return a.tobytes()


def decode_raw_ids(buf) -> Sequence[int]:
    """View a bare int64 blob without copying when the host allows it.

    On little-endian hosts the returned object is a ``memoryview`` cast
    to 8-byte ints directly over the (typically mmap-backed) buffer —
    indexing, slicing, and iteration all read through to the file pages.
    Elsewhere it falls back to a byteswapped in-memory ``array``.
    """
    if len(buf) % 8:
        raise BundleFormatError(
            f"raw int64 section length {len(buf)} is not a multiple of 8"
        )
    if _LITTLE_ENDIAN:
        return memoryview(buf).cast("q")
    a = array("q")  # pragma: no cover - big-endian hosts
    a.frombytes(buf)
    a.byteswap()
    return a


def encode_strings(strings: Iterable[str]) -> bytes:
    """Count-prefixed stream of length-prefixed UTF-8 strings."""
    items = [_pack_str(s) for s in strings]
    return _U64.pack(len(items)) + b"".join(items)


def decode_strings(reader: Reader) -> List[str]:
    return [reader.string() for _ in range(reader.u64())]


# ----------------------------------------------------------------------
# Term table
# ----------------------------------------------------------------------


def encode_term_record(term: Term, term_id) -> bytes:
    """Encode one term-table record (kind byte + payload).

    The streamed bundle builder writes the table through this in bounded
    chunks; :func:`encode_terms` is the same records materialized at
    once.  ``term_id`` resolves datatype URIs, which the
    :class:`TermInterner` guarantees were assigned before their literals.
    """
    if isinstance(term, URI):
        return bytes([_TERM_URI]) + _pack_str(term.value)
    if isinstance(term, BNode):
        return bytes([_TERM_BNODE]) + _pack_str(term.label)
    if isinstance(term, Literal):
        if term.datatype is not None:
            return (
                bytes([_TERM_LITERAL_DT])
                + _pack_str(term.lexical)
                + _U64.pack(term_id(term.datatype))
            )
        if term.language is not None:
            return (
                bytes([_TERM_LITERAL_LANG])
                + _pack_str(term.lexical)
                + _pack_str(term.language)
            )
        return bytes([_TERM_LITERAL]) + _pack_str(term.lexical)
    # pragma: no cover - the graph never stores Variables
    raise BundleFormatError(f"cannot encode term type {type(term).__name__}")


def encode_terms(terms: Sequence[Term], term_id) -> bytes:
    """Encode the interned term table (id order)."""
    out = [_U64.pack(len(terms))]
    for term in terms:
        out.append(encode_term_record(term, term_id))
    return b"".join(out)


def decode_terms(buf) -> List[Term]:
    """Decode the term table from its section bytes.

    Implemented over one contiguous ``bytes`` object with
    ``struct.unpack_from`` rather than the :class:`Reader` — the table is
    the one section whose decode is a per-record Python loop over the
    whole vocabulary, so call overhead matters for cold start.
    """
    data = bytes(buf)
    if len(data) < 8:
        raise BundleFormatError("term table truncated: missing count")
    (count,) = _U64.unpack_from(data, 0)
    pos = 8
    end = len(data)
    u32_from = _U32.unpack_from
    u64_from = _U64.unpack_from
    terms: List[Term] = []
    append = terms.append
    try:
        for index in range(count):
            kind = data[pos]
            (length,) = u32_from(data, pos + 1)
            pos += 5
            if pos + length > end:
                raise BundleFormatError(
                    f"term table truncated inside term {index}"
                )
            text = data[pos : pos + length].decode("utf-8")
            pos += length
            if kind == _TERM_URI:
                append(URI(text))
            elif kind == _TERM_LITERAL:
                append(Literal(text))
            elif kind == _TERM_LITERAL_DT:
                (dt_id,) = u64_from(data, pos)
                pos += 8
                if dt_id >= index:
                    raise BundleFormatError(
                        f"term {index}: datatype id {dt_id} is not a prior term"
                    )
                datatype = terms[dt_id]
                if not isinstance(datatype, URI):
                    raise BundleFormatError(
                        f"term {index}: datatype id {dt_id} is not a URI"
                    )
                append(Literal(text, datatype=datatype))
            elif kind == _TERM_LITERAL_LANG:
                (length,) = u32_from(data, pos)
                pos += 4
                if pos + length > end:
                    raise BundleFormatError(
                        f"term table truncated inside term {index}"
                    )
                append(Literal(text, language=data[pos : pos + length].decode("utf-8")))
                pos += length
            elif kind == _TERM_BNODE:
                append(BNode(text))
            else:
                raise BundleFormatError(f"unknown term kind {kind} at term {index}")
    except (struct.error, IndexError) as exc:
        raise BundleFormatError(f"term table truncated: {exc}") from exc
    return terms


def term_order_key(term: Term, term_id) -> Tuple[int, str, object]:
    """Total order over terms used by the sorted-permutation sections.

    The leading code matches the wire kind byte, so a reader probing an
    encoded record can build the same key without constructing a
    :class:`Term`.  The third component is only compared within one kind
    (an ``int`` datatype id for typed literals, a language ``str`` for
    tagged ones), keeping the mixed types safe; ``term_id`` resolves the
    datatype URI exactly as :func:`encode_term_record` does, so the key
    is injective over any interned table.
    """
    if isinstance(term, URI):
        return (_TERM_URI, term.value, 0)
    if isinstance(term, BNode):
        return (_TERM_BNODE, term.label, 0)
    if isinstance(term, Literal):
        if term.datatype is not None:
            return (_TERM_LITERAL_DT, term.lexical, term_id(term.datatype))
        if term.language is not None:
            return (_TERM_LITERAL_LANG, term.lexical, term.language)
        return (_TERM_LITERAL, term.lexical, 0)
    raise BundleFormatError(f"cannot order term type {type(term).__name__}")


# ----------------------------------------------------------------------
# Groupings: one mapping `key -> [v1, v2, ...]` as three id blobs
# ----------------------------------------------------------------------


def encode_grouping(items: Iterable[Tuple[int, Iterable[int]]]) -> bytes:
    """``(key_id, value_ids)`` pairs → keys / offsets / flat-values blobs.

    Iteration order is preserved exactly, both across keys and within one
    key's values — restored dicts therefore carry the same insertion
    order as the live structures they were exported from.
    """
    keys: List[int] = []
    offsets: List[int] = [0]
    values: List[int] = []
    for key_id, value_ids in items:
        keys.append(key_id)
        values.extend(value_ids)
        offsets.append(len(values))
    return encode_ids(keys) + encode_ids(offsets) + encode_ids(values)


def decode_grouping(reader: Reader) -> Tuple[List[int], List[int], List[int]]:
    """The ``(keys, offsets, flat values)`` lists of one grouping."""
    keys = reader.ids()
    offsets = reader.ids()
    values = reader.ids()
    if len(offsets) != len(keys) + 1:
        raise BundleFormatError(
            f"grouping offsets mismatch: {len(keys)} keys, {len(offsets)} offsets"
        )
    if offsets and offsets[-1] != len(values):
        raise BundleFormatError(
            f"grouping values mismatch: final offset {offsets[-1]}, "
            f"{len(values)} values"
        )
    return keys, offsets, values
