"""On-disk int64 row spools and external sorting for out-of-core builds.

The streaming build path (:mod:`repro.storage.stream_build`) never holds
the corpus in memory: classified triples are appended to *segment files*
— flat little-endian ``int64`` streams, ``arity`` values per row — and
re-read per bundle section at write time.  Structures that must be
emitted in an order other than arrival order (the SPO/POS/OSP indexes,
adjacency maps, posting lists) go through :class:`ExternalSorter`, which
keeps at most ``budget_rows`` rows resident, spills sorted runs to disk
past that, and k-way merges the runs on read-back.

The segment byte layout deliberately matches the bundle codec's id
blobs (:func:`repro.storage.codec.encode_ids` without the count prefix),
so a finished segment can be streamed straight into a section by
prefixing its value count — no re-encode pass.
"""

from __future__ import annotations

import heapq
import os
import struct
import sys
from array import array
from itertools import groupby
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple

_U64 = struct.Struct("<Q")
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Rows buffered in memory per segment writer / read chunk.
DEFAULT_BUFFER_ROWS = 16384

_COPY_CHUNK = 1 << 20


def _pack_values(values: Iterable[int]) -> bytes:
    out = array("q", values)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
        out.byteswap()
    return out.tobytes()


class SegmentWriter:
    """Append-only spool of fixed-arity ``int64`` rows.

    Rows are buffered and flushed in batches; :attr:`rows` and
    :attr:`values` stay valid while open.  Close before reading the file
    back (``iter_rows``) or streaming it into a section
    (:func:`write_ids_from_segment`).
    """

    __slots__ = ("path", "arity", "rows", "_buffer", "_flush_at", "_fh")

    def __init__(self, path, arity: int, buffer_rows: int = DEFAULT_BUFFER_ROWS):
        self.path = os.fspath(path)
        self.arity = arity
        self.rows = 0
        self._buffer: List[int] = []
        self._flush_at = arity * max(1, buffer_rows)
        self._fh: Optional[IO[bytes]] = open(self.path, "wb")

    @property
    def values(self) -> int:
        """Total flat int64 values written (``rows * arity``)."""
        return self.rows * self.arity

    def append(self, row: Sequence[int]) -> None:
        self._buffer.extend(row)
        self.rows += 1
        if len(self._buffer) >= self._flush_at:
            self._fh.write(_pack_values(self._buffer))
            self._buffer.clear()

    def append_value(self, value: int) -> None:
        """Arity-1 fast path."""
        self._buffer.append(value)
        self.rows += 1
        if len(self._buffer) >= self._flush_at:
            self._fh.write(_pack_values(self._buffer))
            self._buffer.clear()

    def close(self) -> None:
        if self._fh is not None:
            if self._buffer:
                self._fh.write(_pack_values(self._buffer))
                self._buffer.clear()
            self._fh.close()
            self._fh = None

    def unlink(self) -> None:
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_value_chunks(
    path, chunk_values: int = DEFAULT_BUFFER_ROWS
) -> Iterator[array]:
    """Yield ``array('q')`` chunks of a segment file's flat values."""
    with open(path, "rb") as fh:
        while True:
            data = fh.read(8 * chunk_values)
            if not data:
                return
            chunk = array("q")
            chunk.frombytes(data)
            if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
                chunk.byteswap()
            yield chunk


def iter_rows(
    path, arity: int, chunk_rows: int = DEFAULT_BUFFER_ROWS
) -> Iterator[Tuple[int, ...]]:
    """Yield rows of a closed segment file as tuples, in file order."""
    for chunk in iter_value_chunks(path, chunk_values=arity * chunk_rows):
        it = iter(chunk)
        yield from zip(*([it] * arity))


def write_ids_from_segment(section, segment: SegmentWriter) -> None:
    """Stream a closed segment into a section as a count-prefixed id blob.

    Produces exactly the bytes ``encode_ids`` would for the same flat
    value sequence, without materializing them.
    """
    section.write(_U64.pack(segment.values))
    with open(segment.path, "rb") as fh:
        while True:
            chunk = fh.read(_COPY_CHUNK)
            if not chunk:
                return
            section.write(chunk)


def write_raw_from_segment(section, segment: SegmentWriter) -> None:
    """Stream a closed segment into a section as a bare int64 blob.

    A segment file's bytes already *are* ``encode_raw_ids`` of its flat
    values, so this is a straight copy — the mmap-tier sections
    (offset tables, posting runs, sorted triple runs) use it to avoid
    a count prefix that raw ``memoryview`` casts would have to skip.
    """
    with open(segment.path, "rb") as fh:
        while True:
            chunk = fh.read(_COPY_CHUNK)
            if not chunk:
                return
            section.write(chunk)


class ExternalSorter:
    """Budget-bounded sorter over fixed-arity ``int64`` row tuples.

    Rows accumulate in memory until ``budget_rows``, then spill as one
    sorted run file; :meth:`sorted_rows` k-way merges every run with the
    final resident batch.  :attr:`runs_spilled` counts on-disk runs —
    the streamed-vs-in-memory identity property test asserts it to prove
    the merge path really executed.
    """

    def __init__(self, directory, arity: int, budget_rows: int, prefix: str = "run"):
        self._directory = os.fspath(directory)
        self._arity = arity
        self._budget_rows = max(1, budget_rows)
        self._prefix = prefix
        self._rows: List[Tuple[int, ...]] = []
        self._run_paths: List[str] = []

    @property
    def runs_spilled(self) -> int:
        return len(self._run_paths)

    def add(self, row: Tuple[int, ...]) -> None:
        self._rows.append(row)
        if len(self._rows) >= self._budget_rows:
            self._spill()

    def _spill(self) -> None:
        if not self._rows:
            return
        self._rows.sort()
        path = os.path.join(
            self._directory, f"{self._prefix}.{len(self._run_paths)}.run"
        )
        with SegmentWriter(path, self._arity) as run:
            for row in self._rows:
                run.append(row)
        self._run_paths.append(path)
        self._rows = []

    def sorted_rows(self) -> Iterator[Tuple[int, ...]]:
        """Merge-iterate every row in ascending tuple order."""
        self._rows.sort()
        if not self._run_paths:
            return iter(self._rows)
        streams = [iter_rows(path, self._arity) for path in self._run_paths]
        streams.append(iter(self._rows))
        return heapq.merge(*streams)

    def cleanup(self) -> None:
        self._rows = []
        for path in self._run_paths:
            if os.path.exists(path):
                os.unlink(path)
        self._run_paths = []


class GroupingSpool:
    """A spooled ``key -> [values]`` mapping in the codec's wire shape.

    Keys, offsets, and flat values each go to their own segment file as
    groups arrive; :meth:`write_to` streams the three count-prefixed
    blobs out in ``encode_grouping`` order (keys / offsets / values), so
    a grouping of unbounded size never materializes in memory.
    """

    def __init__(self, directory, name: str):
        directory = os.fspath(directory)
        self._keys = SegmentWriter(os.path.join(directory, f"{name}.keys.seg"), 1)
        self._offsets = SegmentWriter(os.path.join(directory, f"{name}.offs.seg"), 1)
        self._values = SegmentWriter(os.path.join(directory, f"{name}.vals.seg"), 1)
        self._offsets.append_value(0)

    def add(self, key_id: int, value_ids: Iterable[int]) -> None:
        self._keys.append_value(key_id)
        append_value = self._values.append_value
        for value in value_ids:
            append_value(value)
        self._offsets.append_value(self._values.rows)

    def write_to(self, section) -> None:
        for spool in (self._keys, self._offsets, self._values):
            spool.close()
            write_ids_from_segment(section, spool)

    def write_raw_offsets(self, section) -> None:
        """Stream just the offsets spool as a bare int64 blob.

        When the grouping's keys are the dense sequence ``0..n-1`` (the
        element→terms map), the offsets and values spools *are* the
        mmap-tier run layout — no re-encode needed.
        """
        self._offsets.close()
        write_raw_from_segment(section, self._offsets)

    def write_raw_values(self, section) -> None:
        """Stream just the flat values spool as a bare int64 blob."""
        self._values.close()
        write_raw_from_segment(section, self._values)

    def cleanup(self) -> None:
        for spool in (self._keys, self._offsets, self._values):
            spool.unlink()


class TwoLevelSpool:
    """The five-blob two-level index shape (``store.spo`` et al.), fed
    sorted ``(a, b, c)`` rows and streamed out without residency."""

    def __init__(self, directory, name: str):
        directory = os.fspath(directory)
        self._spools = tuple(
            SegmentWriter(os.path.join(directory, f"{name}.{part}.seg"), 1)
            for part in ("outer", "outer_offs", "inner", "inner_offs", "leaf")
        )
        outer, outer_offs, inner, inner_offs, leaf = self._spools
        outer_offs.append_value(0)
        inner_offs.append_value(0)

    def feed(self, sorted_rows: Iterable[Tuple[int, int, int]]) -> None:
        outer, outer_offs, inner, inner_offs, leaf = self._spools
        for a, a_rows in groupby(sorted_rows, key=lambda row: row[0]):
            outer.append_value(a)
            for b, b_rows in groupby(a_rows, key=lambda row: row[1]):
                inner.append_value(b)
                for row in b_rows:
                    leaf.append_value(row[2])
                inner_offs.append_value(leaf.rows)
            outer_offs.append_value(inner.rows)

    def write_to(self, section) -> None:
        for spool in self._spools:
            spool.close()
            write_ids_from_segment(section, spool)

    def cleanup(self) -> None:
        for spool in self._spools:
            spool.unlink()
