"""The write-ahead delta log: restart-safe update epochs for a bundle.

A bundle is one frozen engine state; the delta log makes the pair
*(bundle, log)* a durable, incrementally maintained artifact.  Every
committed update epoch appends one entry::

    B <epoch>
    A <triple in N-Triples syntax> .
    R <triple in N-Triples syntax> .
    ...
    C <epoch> <crc32 of the A/R lines, hex>

``B`` opens the entry with the epoch it transforms (the manager's
pre-batch counter), ``A``/``R`` carry the deduplicated add/remove batch
in exact N-Triples syntax (the round-trip identity of
``repro.rdf.ntriples`` is property-tested precisely because this file
depends on it), and ``C`` commits it with a checksum.  The entry body is
written and fsynced *before* the in-memory structures mutate (hooked as
the :class:`~repro.maintenance.IndexManager`'s ``record`` epoch hook),
and ``C`` only lands after the epoch really committed — so on restart:

* an entry without its ``C`` line (crash mid-write, or a batch whose
  application failed) is ignored,
* committed entries with epochs the bundle already contains are skipped,
* the remaining tail replays through the normal incremental-maintenance
  path, which the maintained==rebuilt property guarantees reproduces the
  exact pre-crash engine,
* a corrupt checksum or an epoch *gap* raises
  :class:`~repro.storage.errors.WalError` — missing updates must never
  be papered over.

``repro compact`` folds the tail back into a fresh bundle and truncates
the log (:func:`repro.storage.bundle.compact_bundle`).

Two reader shapes exist.  :meth:`DeltaLog.committed_entries` scans the
whole file — right for one-shot replay at load time.  :class:`WalCursor`
is the *incremental* reader the multiprocess serving tier uses: it
remembers the byte offset just past the last committed frame it
consumed, so a worker process polling the log after every update
watermark pays O(new bytes), not O(log size), per poll.  Cursors never
lock and never write — any number of them, across processes, can follow
the one writer.
"""

from __future__ import annotations

import os
import zlib
from typing import Iterator, List, Optional, Sequence, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from repro.rdf.ntriples import NTriplesParseError, parse_ntriples
from repro.rdf.triples import Triple

from repro.storage.codec import fsync_directory
from repro.storage.errors import WalError

_HEADER = "# repro-wal 1"


def _parse_entry_body(
    path: str, body: List[str], line_number: int
) -> Tuple[List[Triple], List[Triple]]:
    """Decode one committed entry's ``A``/``R`` lines into triple lists.

    A CRC-valid entry whose N-Triples body does not parse is a writer
    bug, not a torn write — raised, never skipped.
    """
    adds: List[Triple] = []
    removes: List[Triple] = []
    for line in body:
        target = adds if line[0] == "A" else removes
        try:
            target.extend(parse_ntriples(line[2:]))
        except NTriplesParseError as exc:
            raise WalError(
                f"{path}: unparseable triple in committed entry "
                f"(near line {line_number}): {exc}"
            ) from exc
    return adds, removes


class DeltaLog:
    """An append-only N-Triples delta log bound to one bundle path.

    By convention the log lives at ``<bundle>.wal``; the class itself
    only knows its own path.  Instances are not thread-safe on their own
    — they are driven from inside the IndexManager's update epoch, which
    the serving layer already serializes (writer-exclusive epochs).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fh = None
        #: (epoch, crc) of the entry whose body is written but not yet
        #: committed; cleared by :meth:`commit`.
        self._pending: Optional[Tuple[int, int]] = None
        #: Set by :meth:`close`: the log was relinquished (lock released),
        #: so this instance must never append again — another engine may
        #: own the artifact now, and an unlocked append would interleave
        #: duplicate epochs.
        self._retired = False

    # ------------------------------------------------------------------
    # Writing (IndexManager epoch hooks)
    # ------------------------------------------------------------------

    def attach(self, manager) -> None:
        """Hook into an IndexManager so every epoch is logged durably.

        ``record`` runs write-ahead (after batch dedup, before any
        structure mutates) and ``commit`` closes the entry only when the
        epoch actually advanced — a failed batch leaves an uncommitted
        entry that replay ignores.

        The log is an **exclusive** resource: two attached engines would
        interleave duplicate epochs and permanently brick the
        bundle+log pair, so attaching takes an advisory ``flock`` on the
        file (held until :meth:`close`) and raises :class:`WalError` if
        another engine — in this process or any other — already holds
        it.
        """
        self._lock_exclusively()
        manager.add_epoch_hooks(record=self.record, commit=self.commit)

    def _lock_exclusively(self) -> None:
        fh = self._file()
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            raise WalError(
                f"{self.path}: delta log is already attached to another "
                "engine (bundle + WAL form a single-writer artifact); load "
                "read-only with attach_wal=False instead"
            ) from exc
        # Holding a fresh lock un-retires the instance: it is the owner
        # again.
        self._retired = False

    def _file(self):
        if self._fh is None or self._fh.closed:
            is_new = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._fh = open(self.path, "a", encoding="utf-8", newline="\n")
            if is_new:
                self._fh.write(_HEADER + "\n")
                fsync_directory(self.path)
        return self._fh

    def record(self, epoch: int, adds: Sequence[Triple], removes: Sequence[Triple]) -> None:
        """Append one entry body (``B`` + ``A``/``R`` lines) and fsync.

        Raises :class:`WalError` on a retired (explicitly closed) log:
        the write-ahead position of this hook makes the raise abort the
        update *before* any structure mutates, so an engine whose log was
        handed to another owner fails loudly instead of corrupting the
        artifact with unlocked appends.
        """
        if self._retired:
            raise WalError(
                f"{self.path}: delta log was closed (handed over); this "
                "engine can no longer apply updates — reload the bundle"
            )
        body_lines: List[str] = [f"A {t.n3()}" for t in adds]
        body_lines.extend(f"R {t.n3()}" for t in removes)
        crc = zlib.crc32("\n".join(body_lines).encode("utf-8"))
        fh = self._file()
        # The leading newline is the anti-merge guard: if the previous
        # process crashed mid-line (a torn C), this entry's B still
        # starts on its own line instead of fusing with the fragment —
        # the scanner skips blank lines, so intact logs are unaffected.
        fh.write(f"\nB {epoch}\n")
        for line in body_lines:
            fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._pending = (epoch, crc)

    def commit(self, epoch_after: int) -> None:
        """Close the pending entry iff its epoch committed.

        Called with the manager's post-batch epoch counter; equality with
        the recorded epoch means the batch failed (or was a no-op that
        never recorded) and the entry stays uncommitted on disk.
        """
        if self._pending is None:
            return
        recorded_epoch, crc = self._pending
        self._pending = None
        if epoch_after <= recorded_epoch:
            return
        fh = self._file()
        fh.write(f"C {recorded_epoch} {crc:08x}\n")
        fh.flush()
        os.fsync(fh.fileno())

    def close(self) -> None:
        """Release the append handle (and with it the exclusive lock).

        After close the bundle+log pair is free for another engine; a
        crashed process releases the ``flock`` implicitly.  The instance
        is *retired*: a still-registered record hook that fires later
        raises instead of appending without the lock.
        """
        self._retired = True
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def reset(self) -> None:
        """Truncate to an empty log (after compaction folded it in).

        Locks before truncating: compacting a log out from under an
        attached engine would lose its next epochs, so an actively held
        log makes reset raise :class:`WalError` instead.  When this
        instance already holds the lock (the compaction flow), the
        truncation goes through the locked handle directly — releasing
        and re-acquiring would open a window in which another engine
        could attach, commit an epoch, and have it silently truncated.
        """
        if self._fh is not None and not self._fh.closed:
            self._truncate_through(self._fh)
            return
        with open(self.path, "a+", encoding="utf-8", newline="\n") as fh:
            if fcntl is not None:
                try:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError as exc:
                    raise WalError(
                        f"{self.path}: cannot truncate — the delta log is "
                        "attached to a running engine"
                    ) from exc
            self._truncate_through(fh)

    @staticmethod
    def _truncate_through(fh) -> None:
        fh.seek(0)
        fh.truncate()
        fh.write(_HEADER + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    # Reading / replay
    # ------------------------------------------------------------------

    def committed_entries(self) -> Iterator[Tuple[int, List[Triple], List[Triple]]]:
        """Yield ``(epoch, adds, removes)`` for every provably committed entry.

        The damage policy mirrors classic WAL recovery: an entry is
        committed only if its whole ``B``/body/``C`` frame is intact —
        a torn or malformed line (the expected shape of a crash mid-write,
        including a crash-torn ``C`` that a later append lands after)
        simply makes its entry *uncommitted* and skipped.  Interior
        damage — a dropped entry with committed successors — surfaces as
        an epoch gap in :meth:`replay_into`, never as a silently shortened
        history.  Two damages DO raise here: a header that is not this
        release's ``repro-wal`` version (a future format must be refused,
        not misparsed), and a CRC-valid entry whose N-Triples body does
        not parse (a writer bug, not a torn write).
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8", newline="") as fh:
            lines = fh.read().split("\n")
        first = next((line.strip() for line in lines if line.strip()), None)
        if first is not None and first != _HEADER:
            raise WalError(
                f"{self.path}: unrecognized delta-log header {first!r}; this "
                f"release reads {_HEADER!r} — rebuild the bundle (or use the "
                "matching release)"
            )
        entry: Optional[Tuple[int, List[str]]] = None
        for number, raw in enumerate(lines, start=1):
            line = raw.rstrip("\r")
            if not line or line.startswith("#"):
                continue
            tag, _, rest = line.partition(" ")
            if tag == "B":
                try:
                    entry = (int(rest), [])
                except ValueError:
                    entry = None  # torn framing voids the entry
            elif tag in ("A", "R"):
                if entry is not None:
                    entry[1].append(line)
            elif tag == "C":
                if entry is None:
                    continue
                epoch, body = entry
                entry = None
                fields = rest.split()
                if len(fields) != 2 or fields[0] != str(epoch):
                    continue  # damaged commit marker: entry uncommitted
                crc = zlib.crc32("\n".join(body).encode("utf-8"))
                if fields[1] != f"{crc:08x}":
                    continue  # damaged body or marker: entry uncommitted
                yield (epoch, *self._parse_body(body, number))
            else:
                entry = None  # foreign bytes void the surrounding entry

    def _parse_body(
        self, body: List[str], line_number: int
    ) -> Tuple[List[Triple], List[Triple]]:
        return _parse_entry_body(self.path, body, line_number)

    def replay_into(self, engine, from_epoch: int) -> int:
        """Apply the committed tail past ``from_epoch`` to an engine.

        Entries are replayed through ``engine.index_manager.apply_batch``
        — the same delta-propagation path that produced them — in strict
        epoch order.  Entries the bundle already contains are skipped; a
        gap (the log starts after the bundle's epoch) raises
        :class:`WalError`, because silently resuming past lost updates
        would serve a diverged engine.  Returns the number of epochs
        applied.
        """
        applied = 0
        expected = from_epoch
        for epoch, adds, removes in self.committed_entries():
            if epoch < from_epoch:
                continue
            if epoch != expected:
                raise WalError(
                    f"{self.path}: epoch gap — bundle is at {expected}, next "
                    f"committed log entry is {epoch}; updates were lost, rebuild "
                    "the bundle from the source data"
                )
            changed = engine.index_manager.apply_batch(adds=adds, removes=removes)
            if changed == 0:
                raise WalError(
                    f"{self.path}: committed epoch {epoch} replayed as a no-op; "
                    "the log does not extend this bundle"
                )
            expected += 1
            applied += 1
        return applied


class WalCursor:
    """Incremental, read-only follower of a delta log's committed tail.

    The cursor holds a byte ``offset`` just past the last *committed*
    frame it has yielded (plus any leading header/blank lines consumed
    while no frame was open).  Each :meth:`poll` reads only the bytes the
    writer appended since, applies the same damage policy as
    :meth:`DeltaLog.committed_entries` — a torn or incomplete frame is
    simply *not consumed*, so the next poll retries it after the writer's
    ``C`` line lands — and advances the offset only past provably
    committed frames.

    Cursors take no lock and never write, so any number of follower
    processes (the ``repro serve --workers N`` pool) can trail the single
    writer that holds the log's ``flock``.  The one raising damage is the
    same as the full scanner's: an unrecognized header version, and a
    committed entry whose body does not parse.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        #: Byte offset of the first unconsumed byte; starts at 0 so a
        #: fresh cursor scans history it can then skip by epoch.
        self.offset = 0

    def poll(self) -> List[Tuple[int, List[Triple], List[Triple]]]:
        """Return ``(epoch, adds, removes)`` for newly committed entries.

        Returns an empty list when the log does not exist yet or holds
        no complete committed frame past the cursor's offset.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read()
        # A trailing fragment without its newline may still be mid-write;
        # only complete lines participate, the rest waits for the next poll.
        end = data.rfind(b"\n")
        if end < 0:
            return []
        data = data[: end + 1]

        entries: List[Tuple[int, List[Triple], List[Triple]]] = []
        consumed = 0  # bytes safely behind us: committed frames + preamble
        position = 0
        entry: Optional[Tuple[int, List[str]]] = None
        for number, raw in enumerate(data.split(b"\n")[:-1], start=1):
            line_bytes = len(raw) + 1
            line = raw.decode("utf-8", errors="replace").rstrip("\r")
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                if self.offset + position == 0 and stripped and stripped != _HEADER:
                    raise WalError(
                        f"{self.path}: unrecognized delta-log header "
                        f"{stripped!r}; this release reads {_HEADER!r}"
                    )
                if entry is None:
                    # Preamble/blank between frames is safe to skip forever.
                    consumed = position + line_bytes
                position += line_bytes
                continue
            tag, _, rest = line.partition(" ")
            if tag == "B":
                try:
                    entry = (int(rest), [])
                except ValueError:
                    entry = None
            elif tag in ("A", "R"):
                if entry is not None:
                    entry[1].append(line)
            elif tag == "C":
                if entry is not None:
                    epoch, body = entry
                    entry = None
                    fields = rest.split()
                    if len(fields) == 2 and fields[0] == str(epoch):
                        crc = zlib.crc32("\n".join(body).encode("utf-8"))
                        if fields[1] == f"{crc:08x}":
                            entries.append(
                                (epoch, *_parse_entry_body(self.path, body, number))
                            )
                            consumed = position + line_bytes
            else:
                entry = None  # foreign bytes void the surrounding entry
            position += line_bytes
        self.offset += consumed
        return entries

    def replay_into(self, engine) -> int:
        """Apply newly committed entries to a follower engine, in order.

        Entries at epochs the engine already holds are skipped (the
        startup load replayed them); an epoch *ahead* of the engine's
        next raises :class:`WalError` — the follower missed history (a
        compaction truncated the log under it) and must reload the
        bundle rather than serve a diverged state.  On any failure the
        consumed offset may be past the unapplied entries, so the only
        safe recovery is a full reload with a fresh cursor.
        """
        applied = 0
        for epoch, adds, removes in self.poll():
            current = engine.index_manager.epoch
            if epoch < current:
                continue
            if epoch > current:
                raise WalError(
                    f"{self.path}: epoch gap — follower is at {current}, next "
                    f"committed entry is {epoch}; reload the bundle"
                )
            changed = engine.index_manager.apply_batch(adds=adds, removes=removes)
            if changed == 0:
                raise WalError(
                    f"{self.path}: committed epoch {epoch} replayed as a "
                    "no-op; the log does not extend this engine"
                )
            applied += 1
        return applied
