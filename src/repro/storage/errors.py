"""Exceptions of the persistence layer.

Every failure mode a bundle or delta log can exhibit maps to a dedicated
exception, because the acceptance contract of the offline artifacts is
*fail loudly, never serve a silently wrong engine*: a reader that cannot
prove it is looking at a compatible, uncorrupted artifact must refuse to
produce an engine at all.
"""

from __future__ import annotations


class BundleError(RuntimeError):
    """Base class for index-bundle persistence failures."""


class BundleFormatError(BundleError):
    """The file is not a repro bundle, or its format version is not the
    one this code writes — a newer or older layout must be rebuilt (or
    read by the matching release), never guessed at."""


class BundleChecksumError(BundleError):
    """A section's CRC does not match its header entry: the artifact is
    corrupted (torn write, bit rot, concurrent overwrite) and no structure
    from it can be trusted."""


class BundleExistsError(BundleError):
    """Refusing to overwrite an existing bundle without ``force``."""


class UnsupportedEngineError(BundleError):
    """The engine holds components the bundle format cannot represent
    faithfully (a custom analyzer, lexicon, or cost model instance); a
    round-tripped engine would silently behave differently, so saving is
    refused instead.  Also raised when a requested serving tier needs
    sections the bundle's format version lacks (``index_tier="mmap"``
    against a version-1 bundle) — the fix is a rebuild, never a guess."""


class WalError(RuntimeError):
    """The delta log is unreadable or inconsistent with the bundle it
    extends (corrupt entry checksum, malformed framing, or an epoch gap
    meaning updates were lost between bundle and log)."""
