"""Disk-resident serving tier: binary-searchable readers over the mmap.

PR 8 made *building* a million-triple bundle possible in bounded memory;
this module is the serving half.  A format-v2 bundle carries, next to
the eagerly-decodable v1 sections, *queryable* layouts: byte-offset
tables over the term table and the keyword vocabulary, order-preserving
sorted permutations for binary search, posting lists as contiguous
``(element, tf, total)`` int64 runs, and the full triple set as
SPO/POS/OSP-sorted flat runs.  The classes here serve the exact same
interfaces the materialized structures expose — ``InvertedIndex``'s
lookup/maintenance surface, ``TripleStore``'s pattern matching — by
binary search over ``memoryview('q')`` casts of the mmap-ed sections,
so cold start is O(metadata) and resident memory is O(touched data):
the page cache faults in only the runs a query's keywords and join
atoms actually address (EMBANKS's disk-resident-search-structure
argument, see PAPERS.md).

Updates never mutate the read-only file.  Each reader pairs the base
sections with a small in-memory **overlay** — a delta
:class:`~repro.keyword.inverted_index.InvertedIndex` plus element
tombstones, a delta :class:`~repro.store.triple_store.TripleStore` plus
id-triple tombstones, promoted-on-write refcount groups — maintained by
the same incremental-maintenance calls the in-memory structures
receive.  The overlay semantics are chosen so that a WAL-tail replay or
a live ``/update`` epoch leaves lookup results *identical* to the
materialized tier (property-tested in
``tests/property/test_mmap_tier_identity.py``); the ordering argument
rests on the maintenance invariant that an element is always unindexed
before it is re-indexed, so base postings and delta postings never
overlap for a live element.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore, ill_typed_pattern
from repro.util import LruDict

from repro.storage.codec import (
    ELEMENT_CODE,
    ELEMENT_KINDS,
    decode_raw_ids,
    term_order_key,
)
from repro.storage.errors import BundleFormatError
from repro.keyword.inverted_index import InvertedIndex, Posting

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Default LRU bound for decoded posting lists (lists, not bytes — the
#: undecoded runs stay on disk either way).
DEFAULT_POSTINGS_CACHE = 4096


def grouping_views(buf) -> Tuple:
    """Zero-copy ``(keys, offsets, values)`` int64 views of one grouping
    section (the ``encode_grouping`` wire shape: three count-prefixed
    id blobs back to back)."""
    pos = 0
    views = []
    for part in ("keys", "offsets", "values"):
        if pos + 8 > len(buf):
            raise BundleFormatError(f"grouping truncated before {part}")
        (count,) = _U64.unpack_from(buf, pos)
        end = pos + 8 + 8 * count
        if end > len(buf):
            raise BundleFormatError(f"grouping truncated inside {part}")
        views.append(decode_raw_ids(buf[pos + 8 : end]))
        pos = end
    keys, offsets, values = views
    if len(offsets) != len(keys) + 1:
        raise BundleFormatError(
            f"grouping offsets mismatch: {len(keys)} keys, {len(offsets)} offsets"
        )
    return keys, offsets, values


class _AbsentTerm(Exception):
    """Internal: a probe term references a datatype the table lacks."""


class MmapTermTable:
    """The interned term table, decoded per record on demand.

    A drop-in for the eagerly decoded ``List[Term]``: every load-time
    consumer only *indexes* the table, so ``__getitem__`` (memoized —
    each term is constructed at most once, preserving the shared-object
    identity the caches rely on) is the whole read surface.  ``id_of``
    adds the reverse mapping by binary search over the sorted
    permutation, comparing :func:`repro.storage.codec.term_order_key`
    probes against keys parsed straight out of the encoded records.
    """

    __slots__ = ("_records", "_offsets", "_sorted", "_terms", "_ids")

    def __init__(self, records, offsets, sorted_ids):
        self._records = records
        self._offsets = offsets
        self._sorted = sorted_ids
        if len(offsets) != len(sorted_ids) + 1:
            raise BundleFormatError(
                f"term offset table has {len(offsets)} entries for "
                f"{len(sorted_ids)} sorted ids"
            )
        self._terms: Dict[int, Term] = {}
        self._ids: Dict[Term, Optional[int]] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> Term:
        term = self._terms.get(index)
        if term is not None:
            return term
        if not 0 <= index < len(self):
            raise IndexError(index)
        term = self._decode(index)
        self._terms[index] = term
        return term

    def _text_at(self, pos: int) -> Tuple[str, int]:
        (length,) = _U32.unpack_from(self._records, pos)
        end = pos + 4 + length
        return bytes(self._records[pos + 4 : end]).decode("utf-8"), end

    def _decode(self, index: int) -> Term:
        buf = self._records
        start = self._offsets[index]
        kind = buf[start]
        text, pos = self._text_at(start + 1)
        if kind == 0:
            return URI(text)
        if kind == 1:
            return BNode(text)
        if kind == 2:
            return Literal(text)
        if kind == 3:
            (dt_id,) = _U64.unpack_from(buf, pos)
            datatype = self[dt_id]
            if not isinstance(datatype, URI):
                raise BundleFormatError(
                    f"term {index}: datatype id {dt_id} is not a URI"
                )
            return Literal(text, datatype=datatype)
        if kind == 4:
            lang, _ = self._text_at(pos)
            return Literal(text, language=lang)
        raise BundleFormatError(f"unknown term kind {kind} at term {index}")

    def _record_key(self, index: int) -> Tuple[int, str, object]:
        """The record's :func:`term_order_key` without building a Term."""
        buf = self._records
        start = self._offsets[index]
        kind = buf[start]
        text, pos = self._text_at(start + 1)
        if kind == 3:
            (dt_id,) = _U64.unpack_from(buf, pos)
            return (kind, text, dt_id)
        if kind == 4:
            lang, _ = self._text_at(pos)
            return (kind, text, lang)
        return (kind, text, 0)

    def _datatype_id(self, datatype: URI) -> int:
        dt_id = self.id_of(datatype)
        if dt_id is None:
            raise _AbsentTerm
        return dt_id

    def id_of(self, term: Term) -> Optional[int]:
        """The term's table id, or None when it is not interned."""
        try:
            return self._ids[term]
        except KeyError:
            pass
        found: Optional[int] = None
        try:
            probe = term_order_key(term, self._datatype_id)
        except _AbsentTerm:
            probe = None
        if probe is not None:
            sorted_ids = self._sorted
            lo, hi = 0, len(sorted_ids)
            while lo < hi:
                mid = (lo + hi) // 2
                key = self._record_key(sorted_ids[mid])
                if key < probe:
                    lo = mid + 1
                elif key > probe:
                    hi = mid
                else:
                    found = sorted_ids[mid]
                    break
        self._ids[term] = found
        return found


class MmapTermDictionary:
    """The keyword vocabulary: id ↔ analyzed-term text over the mmap.

    ``text`` decodes one length-prefixed string by offset (memoized);
    ``id_of`` binary-searches the lexicographic permutation;
    ``iter_texts`` walks the vocabulary in **id order** — which is the
    insertion order the materialized postings dict iterates in, so the
    fuzzy scan's first-best-on-tie behavior is preserved exactly.
    """

    __slots__ = ("_strings", "_offsets", "_sorted", "_texts", "_ids")

    def __init__(self, strings, offsets, sorted_ids):
        self._strings = strings
        self._offsets = offsets
        self._sorted = sorted_ids
        if len(offsets) != len(sorted_ids) + 1:
            raise BundleFormatError(
                f"vocab offset table has {len(offsets)} entries for "
                f"{len(sorted_ids)} sorted ids"
            )
        self._texts: Dict[int, str] = {}
        self._ids: Dict[str, Optional[int]] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def text(self, vid: int) -> str:
        cached = self._texts.get(vid)
        if cached is not None:
            return cached
        start = self._offsets[vid]
        (length,) = _U32.unpack_from(self._strings, start)
        text = bytes(self._strings[start + 4 : start + 4 + length]).decode("utf-8")
        self._texts[vid] = text
        return text

    def id_of(self, text: str) -> Optional[int]:
        try:
            return self._ids[text]
        except KeyError:
            pass
        sorted_ids = self._sorted
        lo, hi = 0, len(sorted_ids)
        found: Optional[int] = None
        while lo < hi:
            mid = (lo + hi) // 2
            candidate = self.text(sorted_ids[mid])
            if candidate < text:
                lo = mid + 1
            elif candidate > text:
                hi = mid
            else:
                found = sorted_ids[mid]
                break
        self._ids[text] = found
        return found

    def iter_texts(self) -> Iterator[str]:
        for vid in range(len(self)):
            yield self.text(vid)


class MmapPostingsReader:
    """Posting lists as contiguous int64 runs, LRU over decoded lists.

    ``rows(vid)`` slices the run for one vocabulary id out of the mmap
    (zero-copy until the per-row tuple build) and resolves element ids
    through the supplied callback; decoded lists are kept in a small
    :class:`~repro.util.LruDict` so hot keywords do not re-decode.
    """

    __slots__ = ("_offsets", "_runs", "_resolve", "_cache")

    def __init__(self, offsets, runs, resolve_element, cache_size: int):
        self._offsets = offsets
        self._runs = runs
        self._resolve = resolve_element
        self._cache = LruDict(cache_size) if cache_size > 0 else None

    def df(self, vid: int) -> int:
        return self._offsets[vid + 1] - self._offsets[vid]

    def rows(self, vid: int) -> Tuple[Tuple[Hashable, int, int], ...]:
        cache = self._cache
        if cache is not None:
            hit = cache.hit(vid)
            if hit is not None:
                return hit
        runs = self._runs
        resolve = self._resolve
        start = 3 * self._offsets[vid]
        end = 3 * self._offsets[vid + 1]
        rows = tuple(
            (resolve(runs[i]), runs[i + 1], runs[i + 2])
            for i in range(start, end, 3)
        )
        if cache is not None:
            cache.put(vid, rows)
        return rows

    def cache_stats(self) -> Dict[str, float]:
        if self._cache is None:
            return {"size": 0, "maxsize": 0, "hits": 0, "misses": 0, "hit_rate": 0.0}
        return self._cache.cache_stats()


class MmapInvertedIndex:
    """The inverted index served from the file, updatable via overlay.

    Behavior-compatible with
    :class:`~repro.keyword.inverted_index.InvertedIndex`:

    * **reads** combine the base runs (filtered through element
      tombstones) with a delta ``InvertedIndex`` holding everything
      indexed since load — appended after the base postings, which is
      exactly where a re-inserted dict key would sit in the
      materialized tier;
    * **unindex** of a base element records a tombstone and bumps
      per-term dead counters (via the element→terms runs), keeping
      ``document_frequency`` / ``term_count`` / ``posting_count`` O(1)
      to O(delta) instead of O(scan);
    * **index** always lands in the delta — safe because maintenance
      unindexes an element before ever re-indexing it, so a live base
      element never receives delta postings under the same term.
    """

    tier = "mmap"

    def __init__(
        self,
        dictionary: MmapTermDictionary,
        postings_offsets,
        postings_runs,
        elements,
        elements_sorted,
        element_terms_offsets,
        element_terms_runs,
        term_table: MmapTermTable,
        postings_cache_size: int = DEFAULT_POSTINGS_CACHE,
    ):
        self._dict = dictionary
        self._elements = elements  # flat (code, term-id) pairs
        self._elements_sorted = elements_sorted
        self._eterm_offsets = element_terms_offsets
        self._eterm_runs = element_terms_runs
        self._terms = term_table
        self._n_elements = len(elements) // 2
        if len(element_terms_offsets) != self._n_elements + 1:
            raise BundleFormatError(
                f"element-terms offset table has {len(element_terms_offsets)} "
                f"entries for {self._n_elements} elements"
            )
        if len(postings_offsets) != len(dictionary) + 1:
            raise BundleFormatError(
                f"postings offset table has {len(postings_offsets)} entries "
                f"for a vocabulary of {len(dictionary)}"
            )
        self._base_rows = len(postings_runs) // 3
        self._element_keys: Dict[int, Hashable] = {}
        self._postings = MmapPostingsReader(
            postings_offsets, postings_runs, self._element_key, postings_cache_size
        )
        # Update overlay.
        self._delta = InvertedIndex()
        self._tombstones: set = set()
        self._dead_df: Dict[int, int] = {}
        self._dead_vids: set = set()
        self._dead_rows = 0

    # -- element identity ----------------------------------------------

    def _element_key(self, eid: int) -> Hashable:
        key = self._element_keys.get(eid)
        if key is None:
            code = self._elements[2 * eid]
            tid = self._elements[2 * eid + 1]
            key = (ELEMENT_KINDS[code], self._terms[tid])
            self._element_keys[eid] = key
        return key

    def _base_eid(self, element: Hashable) -> Optional[int]:
        kind, term = element
        code = ELEMENT_CODE.get(kind)
        if code is None:
            return None
        tid = self._terms.id_of(term)
        if tid is None:
            return None
        probe = (code, tid)
        sorted_ids = self._elements_sorted
        elements = self._elements
        lo, hi = 0, len(sorted_ids)
        while lo < hi:
            mid = (lo + hi) // 2
            eid = sorted_ids[mid]
            key = (elements[2 * eid], elements[2 * eid + 1])
            if key < probe:
                lo = mid + 1
            elif key > probe:
                hi = mid
            else:
                return eid
        return None

    # -- maintenance (InvertedIndex surface) ---------------------------

    def index(self, element: Hashable, terms: Iterable[str]) -> None:
        self._delta.index(element, terms)

    def unindex(self, element: Hashable) -> bool:
        if self._delta.unindex(element):
            return True
        if element in self._tombstones:
            return False
        eid = self._base_eid(element)
        if eid is None:
            return False
        self._tombstones.add(element)
        runs = self._eterm_runs
        df = self._postings.df
        for i in range(self._eterm_offsets[eid], self._eterm_offsets[eid + 1]):
            vid = runs[i]
            dead = self._dead_df.get(vid, 0) + 1
            self._dead_df[vid] = dead
            self._dead_rows += 1
            if dead == df(vid):
                self._dead_vids.add(vid)
        return True

    # -- lookup --------------------------------------------------------

    def lookup(self, term: str) -> List[Posting]:
        out: List[Posting] = []
        vid = self._dict.id_of(term)
        if vid is not None and vid not in self._dead_vids:
            rows = self._postings.rows(vid)
            if self._dead_df.get(vid):
                tombstones = self._tombstones
                out.extend(
                    Posting(element, tf, total)
                    for element, tf, total in rows
                    if element not in tombstones
                )
            else:
                out.extend(Posting(*row) for row in rows)
        out.extend(self._delta.lookup(term))
        return out

    def __contains__(self, term: str) -> bool:
        if term in self._delta:
            return True
        vid = self._dict.id_of(term)
        return vid is not None and vid not in self._dead_vids

    def _base_live(self, term: str) -> bool:
        vid = self._dict.id_of(term)
        return vid is not None and vid not in self._dead_vids

    def iter_terms(self) -> Iterator[str]:
        # Base vocabulary in id (= materialized insertion) order, minus
        # fully-dead terms; delta-only terms append, matching a dict
        # whose deleted key was re-inserted at the end.
        dead = self._dead_vids
        for vid in range(len(self._dict)):
            if vid not in dead:
                yield self._dict.text(vid)
        for term in self._delta.iter_terms():
            if not self._base_live(term):
                yield term

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(self.iter_terms())

    # -- statistics ----------------------------------------------------

    def document_frequency(self, term: str) -> int:
        df = self._delta.document_frequency(term)
        vid = self._dict.id_of(term)
        if vid is not None:
            df += self._postings.df(vid) - self._dead_df.get(vid, 0)
        return df

    def idf(self, term: str) -> float:
        n = max(self.element_count, 1)
        df = self.document_frequency(term)
        return math.log((n + 1) / (df + 1)) + 1.0

    @property
    def element_count(self) -> int:
        return self._n_elements - len(self._tombstones) + self._delta.element_count

    @property
    def term_count(self) -> int:
        count = len(self._dict) - len(self._dead_vids)
        for term in self._delta.iter_terms():
            if not self._base_live(term):
                count += 1
        return count

    @property
    def posting_count(self) -> int:
        return self._base_rows - self._dead_rows + self._delta.posting_count

    def estimated_bytes(self) -> int:
        """Same estimate as the materialized index (term text + 16 bytes
        per live posting) — an O(vocabulary) scan, computed on demand;
        the serving loop never calls it."""
        total = 0
        dictionary = self._dict
        df = self._postings.df
        dead_df = self._dead_df
        for vid in range(len(dictionary)):
            live = df(vid) - dead_df.get(vid, 0)
            if live > 0:
                total += len(dictionary.text(vid).encode()) + 16 * live
        for term in self._delta.iter_terms():
            delta_df = self._delta.document_frequency(term)
            if self._base_live(term):
                total += 16 * delta_df
            else:
                total += len(term.encode()) + 16 * delta_df
        return total

    def __len__(self) -> int:
        return self.term_count

    # -- persistence ---------------------------------------------------

    def state_for_persistence(self) -> Dict[str, object]:
        """Materialize the combined base + overlay state (the save path;
        an O(index) scan by necessity)."""
        postings: Dict[str, Dict[Hashable, List[int]]] = {}
        for term in self.iter_terms():
            postings[term] = {
                p.element: [p.term_frequency, p.label_terms]
                for p in self.lookup(term)
            }
        element_terms: Dict[Hashable, set] = {}
        texts = self._dict.text
        runs = self._eterm_runs
        offsets = self._eterm_offsets
        for eid in range(self._n_elements):
            element = self._element_key(eid)
            if element in self._tombstones:
                continue
            element_terms[element] = {
                texts(runs[i]) for i in range(offsets[eid], offsets[eid + 1])
            }
        delta_state = self._delta.state_for_persistence()
        for element, terms_of in delta_state["element_terms"].items():
            element_terms[element] = set(terms_of)
        return {"postings": postings, "element_terms": element_terms}

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the decoded-postings LRU."""
        return self._postings.cache_stats()


def attr_refs_decoder(term_table: MmapTermTable):
    """Group decoder for ``kindex2.attr_refs``: flat ``(class|-1, count)``
    pairs → ``{class-or-None: count}``."""

    def decode(values, start: int, end: int) -> Dict:
        return {
            (None if values[i] < 0 else term_table[values[i]]): values[i + 1]
            for i in range(start, end, 2)
        }

    return decode


def value_refs_decoder(term_table: MmapTermTable):
    """Group decoder for ``kindex2.value_refs``: flat ``(label, class|-1,
    count)`` triples → ``{(label, class-or-None): count}``."""

    def decode(values, start: int, end: int) -> Dict:
        return {
            (
                term_table[values[i]],
                None if values[i + 1] < 0 else term_table[values[i + 1]],
            ): values[i + 2]
            for i in range(start, end, 3)
        }

    return decode


class LazyRefMap:
    """A dict-compatible refcount map over a term-id-sorted grouping.

    Backs ``KeywordIndex``'s ``_attribute_class_refs`` /
    ``_value_occurrence_refs`` without decoding them: membership is a
    binary search on the sorted key ids, and a group decodes on first
    read — at which point it is **promoted** into the overlay dict, so
    the in-place refcount mutations the maintenance path performs stick.
    Deletions tombstone base keys; a re-added key lives in the overlay.

    Iteration order is base (key-id) order then overlay-only keys —
    *not* the materialized insertion order; every consumer builds sets
    from it (``attribute_labels``, match classes), so ordering is
    immaterial to identity.
    """

    __slots__ = ("_keys", "_offsets", "_values", "_resolve", "_key_id",
                 "_decode", "_overlay", "_deleted")

    def __init__(self, keys, offsets, values, term_table: MmapTermTable, decode_group):
        self._keys = keys
        self._offsets = offsets
        self._values = values
        self._resolve = term_table.__getitem__
        self._key_id = term_table.id_of
        self._decode = decode_group
        self._overlay: Dict = {}
        self._deleted: set = set()

    def _base_index(self, key) -> Optional[int]:
        tid = self._key_id(key)
        if tid is None:
            return None
        keys = self._keys
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            value = keys[mid]
            if value < tid:
                lo = mid + 1
            elif value > tid:
                hi = mid
            else:
                return mid
        return None

    def __contains__(self, key) -> bool:
        if key in self._overlay:
            return True
        if key in self._deleted:
            return False
        return self._base_index(key) is not None

    def __getitem__(self, key) -> Dict:
        group = self._overlay.get(key)
        if group is not None:
            return group
        if key in self._deleted:
            raise KeyError(key)
        index = self._base_index(key)
        if index is None:
            raise KeyError(key)
        group = self._decode(
            self._values, self._offsets[index], self._offsets[index + 1]
        )
        self._overlay[key] = group
        return group

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def setdefault(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            self._deleted.discard(key)
            self._overlay[key] = default
            return default

    def __setitem__(self, key, value) -> None:
        self._deleted.discard(key)
        self._overlay[key] = value

    def __delitem__(self, key) -> None:
        existed = self._overlay.pop(key, None) is not None
        if self._base_index(key) is not None and key not in self._deleted:
            self._deleted.add(key)
            existed = True
        if not existed:
            raise KeyError(key)

    def __iter__(self):
        deleted = self._deleted
        resolve = self._resolve
        for i in range(len(self._keys)):
            key = resolve(self._keys[i])
            if key not in deleted:
                yield key
        for key in self._overlay:
            if self._base_index(key) is None:
                yield key

    def __len__(self) -> int:
        extra = sum(1 for key in self._overlay if self._base_index(key) is None)
        return len(self._keys) - len(self._deleted) + extra

    def keys(self):
        return iter(self)

    def items(self):
        for key in self:
            yield key, self[key]


# Row reorderings from each index's storage order back to (s, p, o).
def _from_spo(a, b, c):
    return (a, b, c)


def _from_pos(a, b, c):
    return (c, a, b)


def _from_osp(a, b, c):
    return (b, c, a)


class MmapTripleTier:
    """A ``TripleStore``-compatible tier over SPO/POS/OSP-sorted runs.

    Every pattern binds a prefix of one of the three sort orders, so
    ``match``/``count`` are a binary-searched row range plus a skip of
    tombstoned rows, then the delta store's answer for the same pattern.
    Adds and removes go to the overlay (delta store / id-triple
    tombstones); the base file is never written.
    """

    def __init__(self, spo, pos, osp, size: int, term_table: MmapTermTable):
        for name, view in (("spo", spo), ("pos", pos), ("osp", osp)):
            if len(view) != 3 * size:
                raise BundleFormatError(
                    f"store2.{name} holds {len(view)} values, expected "
                    f"{3 * size} for {size} triples"
                )
        self._spo = spo
        self._pos = pos
        self._osp = osp
        self._n = size
        self._terms = term_table
        self._delta = TripleStore()
        self._tombstones: set = set()  # (sid, pid, oid) id triples

    # -- binary search over sorted rows --------------------------------

    def _lower(self, view, prefix: Tuple[int, ...]) -> int:
        k = len(prefix)
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            base = 3 * mid
            if tuple(view[base : base + k]) < prefix:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper(self, view, prefix: Tuple[int, ...]) -> int:
        k = len(prefix)
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            base = 3 * mid
            if tuple(view[base : base + k]) <= prefix:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _range(self, view, prefix: Tuple[int, ...]) -> Tuple[int, int]:
        return self._lower(view, prefix), self._upper(view, prefix)

    def _base_ids(self, view, prefix, reorder) -> Iterator[Tuple[int, int, int]]:
        """Live base rows under a prefix, reordered to (s, p, o) ids."""
        lo, hi = self._range(view, prefix)
        tombstones = self._tombstones
        for i in range(lo, hi):
            base = 3 * i
            ids = reorder(view[base], view[base + 1], view[base + 2])
            if tombstones and ids in tombstones:
                continue
            yield ids

    def _ids(self, triple: Triple) -> Optional[Tuple[int, int, int]]:
        id_of = self._terms.id_of
        sid = id_of(triple.subject)
        if sid is None:
            return None
        pid = id_of(triple.predicate)
        if pid is None:
            return None
        oid = id_of(triple.object)
        if oid is None:
            return None
        return (sid, pid, oid)

    def _dead_matching(self, sid, pid, oid) -> int:
        """Tombstones matching a pattern (None = wildcard)."""
        if not self._tombstones:
            return 0
        return sum(
            1
            for t in self._tombstones
            if (sid is None or t[0] == sid)
            and (pid is None or t[1] == pid)
            and (oid is None or t[2] == oid)
        )

    # -- mutation (overlay) --------------------------------------------

    def add(self, triple: Triple) -> bool:
        ids = self._ids(triple)
        if ids is not None:
            if ids in self._tombstones:
                self._tombstones.discard(ids)
                return True
            lo, hi = self._range(self._spo, ids)
            if lo < hi:
                return False
        return self._delta.add(triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        if self._delta.remove(triple):
            return True
        ids = self._ids(triple)
        if ids is None or ids in self._tombstones:
            return False
        lo, hi = self._range(self._spo, ids)
        if lo >= hi:
            return False
        self._tombstones.add(ids)
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.remove(t))

    # -- lookup --------------------------------------------------------

    def __len__(self) -> int:
        return self._n - len(self._tombstones) + len(self._delta)

    def __contains__(self, triple: Triple) -> bool:
        if triple in self._delta:
            return True
        ids = self._ids(triple)
        if ids is None or ids in self._tombstones:
            return False
        lo, hi = self._range(self._spo, ids)
        return lo < hi

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        if ill_typed_pattern(subject, predicate):
            return
        terms = self._terms
        id_of = terms.id_of
        s, p, o = subject, predicate, obj
        if s is not None and p is not None and o is not None:
            if Triple(s, p, o) in self:
                yield Triple(s, p, o)
            return
        if s is not None and p is not None:
            sid, pid = id_of(s), id_of(p)
            if sid is not None and pid is not None:
                for _, _, oid in self._base_ids(self._spo, (sid, pid), _from_spo):
                    yield Triple(s, p, terms[oid])
            yield from self._delta.match(s, p, None)
            return
        if p is not None and o is not None:
            pid, oid = id_of(p), id_of(o)
            if pid is not None and oid is not None:
                for sid, _, _ in self._base_ids(self._pos, (pid, oid), _from_pos):
                    yield Triple(terms[sid], p, o)
            yield from self._delta.match(None, p, o)
            return
        if s is not None and o is not None:
            sid, oid = id_of(s), id_of(o)
            if sid is not None and oid is not None:
                for _, pid, _ in self._base_ids(self._osp, (oid, sid), _from_osp):
                    yield Triple(s, terms[pid], o)
            yield from self._delta.match(s, None, o)
            return
        if s is not None:
            sid = id_of(s)
            if sid is not None:
                for _, pid, oid in self._base_ids(self._spo, (sid,), _from_spo):
                    yield Triple(s, terms[pid], terms[oid])
            yield from self._delta.match(s, None, None)
            return
        if p is not None:
            pid = id_of(p)
            if pid is not None:
                for sid, _, oid in self._base_ids(self._pos, (pid,), _from_pos):
                    yield Triple(terms[sid], p, terms[oid])
            yield from self._delta.match(None, p, None)
            return
        if o is not None:
            oid = id_of(o)
            if oid is not None:
                for sid, pid, _ in self._base_ids(self._osp, (oid,), _from_osp):
                    yield Triple(terms[sid], terms[pid], o)
            yield from self._delta.match(None, None, o)
            return
        for sid, pid, oid in self._base_ids(self._spo, (), _from_spo):
            yield Triple(terms[sid], terms[pid], terms[oid])
        yield from self._delta.match(None, None, None)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        if ill_typed_pattern(subject, predicate):
            return 0
        s, p, o = subject, predicate, obj
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self else 0
        if s is None and p is None and o is None:
            return len(self)
        id_of = self._terms.id_of
        sid = id_of(s) if s is not None else None
        pid = id_of(p) if p is not None else None
        oid = id_of(o) if o is not None else None
        total = self._delta.count(s, p, o)
        bound = [x for x, t in ((sid, s), (pid, p), (oid, o)) if t is not None]
        if any(x is None for x in bound):
            return total  # a bound term missing from the table: no base rows
        if sid is not None and pid is not None:
            lo, hi = self._range(self._spo, (sid, pid))
        elif pid is not None and oid is not None:
            lo, hi = self._range(self._pos, (pid, oid))
        elif sid is not None and oid is not None:
            lo, hi = self._range(self._osp, (oid, sid))
        elif sid is not None:
            lo, hi = self._range(self._spo, (sid,))
        elif pid is not None:
            lo, hi = self._range(self._pos, (pid,))
        else:
            lo, hi = self._range(self._osp, (oid,))
        return total + (hi - lo) - self._dead_matching(sid, pid, oid)

    def subjects(self, predicate: Term, obj: Term) -> Iterator[Term]:
        for triple in self.match(None, predicate, obj):
            yield triple.subject

    def objects(self, subject: Term, predicate: Term) -> Iterator[Term]:
        for triple in self.match(subject, predicate, None):
            yield triple.object

    def predicates(self) -> Iterator[Term]:
        view = self._pos
        terms = self._terms
        i = 0
        while i < self._n:
            pid = view[3 * i]
            hi = self._upper(view, (pid,))
            if (hi - i) - self._dead_matching(None, pid, None) > 0:
                yield terms[pid]
            i = hi
        id_of = terms.id_of
        for pred in self._delta.predicates():
            pid = id_of(pred)
            if pid is None:
                yield pred
                continue
            lo, hi = self._range(self._pos, (pid,))
            if (hi - lo) - self._dead_matching(None, pid, None) <= 0:
                yield pred

    def predicate_cardinality(self, predicate: Term) -> int:
        total = self._delta.predicate_cardinality(predicate)
        pid = self._terms.id_of(predicate)
        if pid is not None:
            lo, hi = self._range(self._pos, (pid,))
            total += (hi - lo) - self._dead_matching(None, pid, None)
        return total

    # -- persistence ---------------------------------------------------

    def state_for_persistence(self) -> Dict[str, object]:
        """Materialize the live triple set into the nested-index shape
        (the save path; O(store) by necessity)."""
        return TripleStore(self.match()).state_for_persistence()

    def __repr__(self):
        return (
            f"MmapTripleTier(base={self._n}, "
            f"tombstones={len(self._tombstones)}, delta={len(self._delta)})"
        )
