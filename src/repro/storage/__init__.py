"""Persistent index artifacts: the offline layer as a durable product.

The paper's economics — one offline indexing pass amortized over many
online queries — only materialize when the offline product *survives the
process*.  This package provides that lifecycle:

* :func:`save_bundle` / :func:`load_bundle` — the versioned, pickle-free,
  checksummed ``.reprobundle`` container holding the triple store,
  keyword index, summary graph, and mmap-backed CSR substrate;
* :func:`load_engine` — bundle → ready
  :class:`~repro.core.engine.KeywordSearchEngine` (what
  ``KeywordSearchEngine.load`` and the CLI's ``--bundle`` call);
* :class:`DeltaLog` — the write-ahead N-Triples delta log that makes
  update epochs restart-safe;
* :func:`compact_bundle` — folds the log back into a fresh bundle;
* :func:`build_bundle_streaming` — the out-of-core build path
  (``repro build --stream``): triple iterator in, bundle out, peak RSS
  bounded by the hot structures plus the spill budget instead of the
  corpus;
* :mod:`repro.storage.mmap_tier` — the out-of-core *serving* path
  (``load_engine(..., index_tier="mmap")``): disk-resident readers over
  the format-v2 queryable sections, so a loaded engine's cold start is
  O(metadata) and its resident set O(touched data).

``repro build`` / ``repro compact`` and the ``--bundle`` option of
``search``/``serve``/``bench`` are the command-line surface.
"""

from repro.storage.bundle import (
    BUNDLE_SUFFIX,
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_FORMAT_VERSIONS,
    BundleWriter,
    compact_bundle,
    load_bundle,
    load_engine,
    save_bundle,
)
from repro.storage.mmap_tier import (
    MmapInvertedIndex,
    MmapTermDictionary,
    MmapTermTable,
    MmapTripleTier,
)
from repro.storage.stream_build import DEFAULT_SPILL_BUDGET, build_bundle_streaming
from repro.storage.errors import (
    BundleChecksumError,
    BundleError,
    BundleExistsError,
    BundleFormatError,
    UnsupportedEngineError,
    WalError,
)
from repro.storage.wal import DeltaLog, WalCursor

__all__ = [
    "BUNDLE_SUFFIX",
    "DEFAULT_SPILL_BUDGET",
    "FORMAT_VERSION",
    "MAGIC",
    "BundleChecksumError",
    "BundleWriter",
    "build_bundle_streaming",
    "BundleError",
    "BundleExistsError",
    "BundleFormatError",
    "DeltaLog",
    "MmapInvertedIndex",
    "MmapTermDictionary",
    "MmapTermTable",
    "MmapTripleTier",
    "SUPPORTED_FORMAT_VERSIONS",
    "WalCursor",
    "UnsupportedEngineError",
    "WalError",
    "compact_bundle",
    "load_bundle",
    "load_engine",
    "save_bundle",
]
