"""Deferred materialization of bundle sections: O(metadata) cold start.

A keyword *search* reads the keyword index, the summary graph, its CSR
substrate, and two scalar predicate preferences — it never touches the
data graph's adjacency or the triple store's SPO/POS/OSP nests.  Those
are only needed by query *processing* (``execute``) and by incremental
maintenance.  Decoding them anyway would dominate cold start: they are
exactly the containers whose reconstruction costs one Python-level hash
per stored object.

So the loader hands the engine subclasses whose heavy state is a
*thunk* over the mmap-ed bundle sections:

* :class:`LazyDataGraph` — predicate preferences, ``len`` and ``stats``
  are served from bundle metadata; the first touch of any other state
  (an update batch, a filter search, ``label_of``) decodes the sections
  in one shot and the instance becomes an ordinary
  :class:`~repro.rdf.graph.DataGraph`;
* :class:`LazyTripleStore` — same pattern for the first ``execute``.

Materialization produces exactly what the eager decode produces (one
shared code path), so laziness is invisible to the byte-identity
property tests — it only moves *when* the work happens.  A lock makes a
concurrent first touch from the serving layer's worker pool safe: both
threads would build identical state; one wins, the other's work is
discarded.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Dict

from repro.rdf.graph import DataGraph
from repro.store.triple_store import TripleStore


class LazyDataGraph(DataGraph):
    """A :class:`DataGraph` whose heavy state decodes on first touch.

    ``__init__`` deliberately does not chain to the base constructor:
    only the cheap, search-relevant scalars are populated eagerly.  Any
    access to an absent attribute funnels through ``__getattr__``, which
    materializes the full state under a lock and then retries the
    lookup — afterwards the instance is indistinguishable from an
    eagerly restored graph.
    """

    def __init__(
        self,
        thunk: Callable[[], Dict[str, object]],
        *,
        strict: bool,
        conflicts,
        type_pred_counts,
        subclass_pred_counts,
        stats: Dict[str, int],
    ):
        self._lazy_lock = threading.Lock()
        self._lazy_stats = dict(stats)
        self._lazy_thunk = thunk
        self.strict = strict
        self.conflicts = list(conflicts)
        self._type_pred_counts = defaultdict(int, type_pred_counts)
        self._subclass_pred_counts = defaultdict(int, subclass_pred_counts)

    def _materialize(self) -> None:
        with self._lazy_lock:
            thunk = self._lazy_thunk
            if thunk is None:
                return
            state = thunk()
            full = DataGraph.from_state(state)
            # Adopt the restored graph's state wholesale; conflicts/strict
            # and the eager predicate counters are simply overwritten with
            # equal values.  Clearing the thunk last keeps the "am I
            # materialized" check conservative.
            self.__dict__.update(full.__dict__)
            self._lazy_thunk = None

    def __getattr__(self, name):
        # Only reached for attributes missing from __dict__.  Guard
        # against recursion during __init__ and against genuinely unknown
        # attributes after materialization.
        if name.startswith("_lazy") or self.__dict__.get("_lazy_thunk") is None:
            raise AttributeError(name)
        self._materialize()
        return getattr(self, name)

    def __len__(self) -> int:
        if self._lazy_thunk is not None:
            return self._lazy_stats["triples"]
        return super().__len__()

    def stats(self) -> Dict[str, int]:
        if self._lazy_thunk is not None:
            return dict(self._lazy_stats)
        return super().stats()


class LazyTripleStore(TripleStore):
    """A :class:`TripleStore` whose SPO/POS/OSP nests decode on first use."""

    def __init__(self, thunk: Callable[[], TripleStore], size: int):
        self._lazy_lock = threading.Lock()
        self._lazy_size = size
        self._lazy_thunk = thunk

    def _materialize(self) -> None:
        with self._lazy_lock:
            thunk = self._lazy_thunk
            if thunk is None:
                return
            full = thunk()
            self.__dict__.update(full.__dict__)
            self._lazy_thunk = None

    def __getattr__(self, name):
        if name.startswith("_lazy") or self.__dict__.get("_lazy_thunk") is None:
            raise AttributeError(name)
        self._materialize()
        return getattr(self, name)

    def __len__(self) -> int:
        if self._lazy_thunk is not None:
            return self._lazy_size
        return super().__len__()
