"""The versioned on-disk index bundle: build → save → mmap → load.

A ``.reprobundle`` file is the whole offline layer of one engine —
triple store, keyword index, summary graph, and the CSR exploration
substrate — as one self-describing artifact::

    magic "RPROBNDL" | format version u32 | header length u32
    header JSON  (snapshot-key pair, engine config, section table)
    sections     (8-aligned binary payloads, one CRC32 each)

The header carries the formal ``(SummaryGraph.snapshot_key,
KeywordIndex.snapshot_key)`` pair and the update epoch, so a bundle *is*
one engine state in the same sense an
:class:`~repro.core.snapshot.EngineSnapshot` is.  Every section is
checksummed; a version mismatch raises
:class:`~repro.storage.errors.BundleFormatError` and a checksum mismatch
:class:`~repro.storage.errors.BundleChecksumError` — a reader never
produces an engine it cannot prove equivalent to the one saved.

Loading is built around two cost classes:

* Python-object state (term table, postings, refcounts, groupings) is
  decoded through C-speed blob reads plus slice comprehensions — no
  per-triple ``add()`` replay, no re-analysis, no re-projection;
* the substrate's flat ``offsets``/``targets`` CSR sections stay on disk:
  they are wrapped as ``memoryview('q')`` casts over the ``mmap``-ed
  file, so restoring the exploration substrate reads *no* adjacency
  bytes at all — the page cache faults rows in as queries touch them.

The loaded engine is **equivalent by construction and identical by
test**: ``tests/property/test_persistence_identity.py`` asserts
``load(save(engine))`` reproduces a freshly built engine's ``search()``
output byte for byte, including after a WAL tail replay.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import time
import zlib
from collections import defaultdict
from itertools import chain
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.keyword.inverted_index import InvertedIndex
from repro.keyword.keyword_index import KeywordIndex
from repro.rdf.terms import Literal, Term, URI
from repro.rdf.triples import Triple
from repro.scoring.cost import COST_MODELS, CostModel, make_cost_model
from repro.store.triple_store import TripleStore, _nested
from repro.summary.elements import (
    THING_KEY,
    SummaryEdgeKind,
    SummaryVertex,
    SummaryVertexKind,
)
from repro.summary.substrate import ExplorationSubstrate
from repro.summary.summary_graph import SummaryGraph

from repro.storage.codec import (
    ELEMENT_CODE,
    ELEMENT_KINDS,
    Interner,
    Reader,
    TermInterner,
    decode_grouping,
    decode_raw_ids,
    decode_strings,
    decode_terms,
    encode_grouping,
    encode_ids,
    encode_raw_ids,
    encode_strings,
    encode_term_record,
    fsync_directory,
    term_order_key,
)
from repro.storage.errors import (
    BundleChecksumError,
    BundleExistsError,
    BundleFormatError,
    UnsupportedEngineError,
    WalError,
)
from repro.storage.lazy import LazyDataGraph, LazyTripleStore

MAGIC = b"RPROBNDL"
#: Bump on any change to the section layout or encodings.  Version 2
#: added the queryable mmap-tier sections (sorted term/vocab offset
#: tables, posting runs, SPO/POS/OSP triple runs) as a superset of the
#: version-1 layout, so readers accept both — version-1 bundles simply
#: cannot serve ``index_tier="mmap"``.
FORMAT_VERSION = 2
SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: Conventional file extension (the CLI and docs use it; the reader only
#: trusts the magic).
BUNDLE_SUFFIX = ".reprobundle"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

# Stable wire codes for the element/edge/vertex kinds.  The element
# codes live in the codec (the mmap tier decodes against them); the
# underscored names are the bundle-internal aliases other modules import.
_ELEMENT_KINDS = ELEMENT_KINDS
_ELEMENT_CODE = ELEMENT_CODE
_VERTEX_KINDS = (
    SummaryVertexKind.CLASS,
    SummaryVertexKind.THING,
    SummaryVertexKind.VALUE,
    SummaryVertexKind.ARTIFICIAL,
)
_VERTEX_CODE = {kind: code for code, kind in enumerate(_VERTEX_KINDS)}
_EDGE_KINDS = (
    SummaryEdgeKind.RELATION,
    SummaryEdgeKind.ATTRIBUTE,
    SummaryEdgeKind.SUBCLASS,
)
_EDGE_CODE = {kind: code for code, kind in enumerate(_EDGE_KINDS)}


# ----------------------------------------------------------------------
# Cost-model persistability
# ----------------------------------------------------------------------


def _config_equivalent(a, b) -> bool:
    """True when two cost models are configured identically (recursing
    through composed models, ignoring their runtime caches)."""
    if type(a) is not type(b):
        return False
    skip = {"_base_cost_cache", "_ranks"}
    da = {k: v for k, v in vars(a).items() if k not in skip}
    db = {k: v for k, v in vars(b).items() if k not in skip}
    if da.keys() != db.keys():
        return False
    for key, value in da.items():
        other = db[key]
        if isinstance(value, CostModel) or isinstance(other, CostModel):
            if not _config_equivalent(value, other):
                return False
        elif value != other:
            return False
    return True


def persistable_cost_model_name(model: CostModel) -> str:
    """The factory name that reproduces ``model``, or a loud refusal.

    The bundle stores a *name*, not code; a customized instance (non-stock
    parameters, a composed base, a bespoke subclass) would come back as
    the stock model and silently rank differently — exactly the failure
    mode the format forbids.
    """
    name = getattr(model, "name", None)
    if name in COST_MODELS and _config_equivalent(model, make_cost_model(name)):
        return name
    raise UnsupportedEngineError(
        f"cost model {model!r} is not a stock configuration "
        f"({sorted(COST_MODELS)}); bundles store the model by name, so a "
        "customized instance cannot be persisted faithfully"
    )


# ----------------------------------------------------------------------
# Encoding helpers over interned ids
# ----------------------------------------------------------------------


def _encode_count_pairs(mapping, key_id) -> bytes:
    """``{key: int}`` → interleaved ``(key id, count)`` blob."""
    return encode_ids(chain.from_iterable((key_id(k), c) for k, c in mapping.items()))


def _decode_count_pairs(reader: Reader, terms) -> Dict:
    flat = reader.ids()
    it = iter(flat)
    return {terms[k]: c for k, c in zip(it, it)}


def _encode_pair_refs(mapping, key_id) -> bytes:
    """``{(a, b): int}`` → interleaved ``(a, b, count)`` blob."""
    return encode_ids(
        chain.from_iterable((key_id(a), key_id(b), c) for (a, b), c in mapping.items())
    )


def _decode_pair_refs(reader: Reader, terms) -> Dict:
    flat = reader.ids()
    it = iter(flat)
    return {(terms[a], terms[b]): c for a, b, c in zip(it, it, it)}


def _encode_adjacency(mapping, key_id) -> bytes:
    """``{vertex: {(pred, other): None}}`` → grouping with (pred, other)
    pairs flattened into the value blob."""
    return encode_grouping(
        (
            key_id(vertex),
            chain.from_iterable((key_id(p), key_id(o)) for p, o in pairs),
        )
        for vertex, pairs in mapping.items()
    )


def _decode_adjacency(reader: Reader, terms) -> Dict:
    keys, offsets, values = decode_grouping(reader)
    term_of = terms.__getitem__
    value_terms = list(map(term_of, values))
    out = defaultdict(dict)
    for i, k in enumerate(keys):
        segment = value_terms[offsets[i] : offsets[i + 1]]
        out[term_of(k)] = dict.fromkeys(zip(segment[::2], segment[1::2]))
    return out


def _encode_triple_buckets(mapping, key_id, triple_index) -> bytes:
    """``{pred: {Triple: None}}`` → grouping of triple indices."""
    return encode_grouping(
        (key_id(pred), (triple_index[t] for t in bucket))
        for pred, bucket in mapping.items()
    )


def _decode_triple_buckets(reader: Reader, terms, triples) -> Dict:
    keys, offsets, values = decode_grouping(reader)
    triple_of = triples.__getitem__
    return {
        terms[k]: dict.fromkeys(map(triple_of, values[offsets[i] : offsets[i + 1]]))
        for i, k in enumerate(keys)
    }


def _encode_labels(labels, label_rank, key_id) -> bytes:
    out = [struct.pack("<Q", len(labels))]
    for term, text in labels.items():
        data = text.encode("utf-8")
        out.append(struct.pack("<QQI", key_id(term), label_rank[term], len(data)))
        out.append(data)
    return b"".join(out)


def _decode_labels(reader: Reader, terms) -> Tuple[Dict, Dict]:
    labels: Dict[Term, str] = {}
    ranks: Dict[Term, int] = {}
    for _ in range(reader.u64()):
        term_id = reader.u64()
        rank = reader.u64()
        term = terms[term_id]
        labels[term] = reader.string()
        ranks[term] = rank
    return labels, ranks


def _encode_two_level(mapping, key_id) -> bytes:
    """``{a: {b: iterable-of-c}}`` → five id blobs (the triple-store
    index shape)."""
    outer: List[int] = []
    outer_offsets: List[int] = [0]
    inner: List[int] = []
    inner_offsets: List[int] = [0]
    leaf: List[int] = []
    for a, inner_map in mapping.items():
        outer.append(key_id(a))
        for b, cs in inner_map.items():
            inner.append(key_id(b))
            leaf.extend(key_id(c) for c in cs)
            inner_offsets.append(len(leaf))
        outer_offsets.append(len(inner))
    return (
        encode_ids(outer)
        + encode_ids(outer_offsets)
        + encode_ids(inner)
        + encode_ids(inner_offsets)
        + encode_ids(leaf)
    )


def _decode_two_level(reader: Reader, terms):
    """Restore one SPO-shaped index into the store's defaultdict nesting."""
    outer = reader.ids()
    outer_offsets = reader.ids()
    inner = reader.ids()
    inner_offsets = reader.ids()
    leaf = reader.ids()
    if len(outer_offsets) != len(outer) + 1 or len(inner_offsets) != len(inner) + 1:
        raise BundleFormatError("two-level index offsets are inconsistent")
    term_of = terms.__getitem__
    # One C-level pass per blob, then plain dict stores over slices — the
    # per-triple `add()` hashing this bypasses is the cold-start cost.
    leaf_terms = list(map(term_of, leaf))
    inner_terms = list(map(term_of, inner))
    index = _nested()
    size = len(leaf)
    for i, a in enumerate(outer):
        inner_map = index[term_of(a)]
        for j in range(outer_offsets[i], outer_offsets[i + 1]):
            inner_map[inner_terms[j]] = set(leaf_terms[inner_offsets[j] : inner_offsets[j + 1]])
    return index, size


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------


class _SectionWriter:
    """One open section of a :class:`BundleWriter`: accumulates bytes,
    length, and a running CRC32 without retaining the data."""

    __slots__ = ("_writer", "name", "length", "crc32")

    def __init__(self, writer: "BundleWriter", name: str):
        self._writer = writer
        self.name = name
        self.length = 0
        self.crc32 = 0

    def write(self, data) -> None:
        if not data:
            return
        self._writer._fh.write(data)
        self.crc32 = zlib.crc32(data, self.crc32)
        self.length += len(data)

    def __enter__(self) -> "_SectionWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._writer._end_section(self)


class BundleWriter:
    """Streamed section-by-section bundle writer with running CRC32s.

    Sections are appended to a same-directory payload spool as they are
    produced — each framed 8-aligned with its checksum computed on the
    fly — and :meth:`finish` prepends the prelude + header, copies the
    spool across in bounded chunks, and atomically publishes the bundle
    via ``os.replace``.  Both the in-memory :func:`save_bundle` and the
    out-of-core streaming build write through this class, so neither
    path ever holds the concatenated payload in memory.

    ``finish`` also supersedes any delta log sitting next to the target
    path (see the comment inside), preserving :func:`save_bundle`'s WAL
    semantics for every producer of bundles.
    """

    def __init__(self, path, force: bool = False):
        self.path = os.fspath(path)
        if os.path.exists(self.path) and not force:
            raise BundleExistsError(
                f"refusing to overwrite existing bundle {self.path!r} "
                "(pass force=True / --force)"
            )
        self._payload_path = f"{self.path}.payload.{os.getpid()}"
        self._fh = open(self._payload_path, "wb")
        self._table: List[Dict[str, object]] = []
        self._offset = 0
        self._open_section: Optional[_SectionWriter] = None

    def section(self, name: str) -> _SectionWriter:
        """Open the next section as a context manager with ``write()``."""
        if self._fh is None:
            raise ValueError("bundle writer is closed")
        if self._open_section is not None:
            raise ValueError(
                f"section {self._open_section.name!r} is still open"
            )
        self._open_section = _SectionWriter(self, name)
        return self._open_section

    def add_section(self, name: str, payload: bytes) -> None:
        """Append one fully-encoded section."""
        with self.section(name) as sec:
            sec.write(payload)

    def _end_section(self, sec: _SectionWriter) -> None:
        padding = -sec.length % 8
        if padding:
            self._fh.write(b"\x00" * padding)
        self._table.append(
            {
                "name": sec.name,
                "offset": self._offset,
                "length": sec.length,
                "crc32": sec.crc32,
            }
        )
        self._offset += sec.length + padding
        self._open_section = None

    def finish(
        self,
        meta: Dict[str, object],
        engine_log=None,
        format_version: int = FORMAT_VERSION,
    ) -> Dict[str, object]:
        """Write the final bundle and publish it atomically.

        ``meta`` is the header dict *without* the section table (added
        here).  ``engine_log`` is the saving engine's attached delta log,
        if any — used for the post-replace WAL truncation instead of the
        sibling-lock guard when it is live and co-located.
        ``format_version`` stamps the prelude — callers that skip the
        version-2 queryable sections pass 1 so readers know not to look
        for them.
        """
        if format_version not in SUPPORTED_FORMAT_VERSIONS:
            raise ValueError(
                f"unsupported bundle format version {format_version!r} "
                f"(supported: {SUPPORTED_FORMAT_VERSIONS})"
            )
        if self._open_section is not None:
            raise ValueError(f"section {self._open_section.name!r} is still open")
        self._fh.close()
        self._fh = None

        meta = dict(meta)
        meta["sections"] = self._table
        header = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )

        # A new bundle supersedes whatever delta log sits next to the
        # target path: the saved state already contains every epoch it
        # applied, and a stale log from a *previous* bundle would
        # otherwise be replayed into this one whenever the epoch numbers
        # happen to line up.  Lock the sibling log up front (refusing if
        # another engine is attached), truncate it only after the bundle
        # is durably in place.
        from repro.storage.wal import DeltaLog

        wal_path = f"{self.path}.wal"
        own_log = engine_log
        if own_log is not None and (
            own_log._retired
            or os.path.abspath(own_log.path) != os.path.abspath(wal_path)
        ):
            # A retired (handed-over) log is no longer the caller's to
            # truncate through; fall back to the guard path, which locks
            # up front and fails *before* the bundle is replaced.
            own_log = None
        wal_guard = None
        if own_log is None and os.path.exists(wal_path):
            wal_guard = DeltaLog(wal_path)
            wal_guard._lock_exclusively()

        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        header_padding = -(len(MAGIC) + 8 + len(header)) % 8
        try:
            with open(tmp_path, "wb") as fh:
                fh.write(MAGIC)
                fh.write(_U32.pack(format_version))
                fh.write(_U32.pack(len(header)))
                fh.write(header)
                fh.write(b"\x00" * header_padding)
                with open(self._payload_path, "rb") as payload:
                    while True:
                        chunk = payload.read(1 << 20)
                        if not chunk:
                            break
                        fh.write(chunk)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
            fsync_directory(self.path)
            if own_log is not None:
                own_log.reset()
            elif wal_guard is not None:
                wal_guard.reset()
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        finally:
            if wal_guard is not None:
                wal_guard.close()
            if os.path.exists(self._payload_path):
                os.unlink(self._payload_path)

        return {
            "path": self.path,
            "bytes": len(MAGIC) + 8 + len(header) + header_padding + self._offset,
            "sections": len(self._table),
            "format_version": format_version,
            "epoch": meta.get("snapshot", {}).get("epoch", 0),
        }

    def abort(self) -> None:
        """Discard the partial payload spool (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if os.path.exists(self._payload_path):
            os.unlink(self._payload_path)


def save_bundle(
    engine, path, force: bool = False, *, format_version: int = FORMAT_VERSION
) -> Dict[str, object]:
    """Serialize an engine's offline layer to ``path``.

    Refuses to overwrite an existing file unless ``force`` (the CLI's
    ``repro build`` surfaces this as its ``--force`` guard).  The write
    goes through a same-directory temporary file and ``os.replace`` so a
    crash never leaves a half-written bundle under the final name.

    ``format_version=1`` writes the legacy layout without the queryable
    mmap-tier sections — the compatibility tests use it to produce old
    bundles; production callers take the default.

    Returns a small info dict (path, bytes written, section count,
    format version, epoch).
    """
    if format_version not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(
            f"unsupported bundle format version {format_version!r} "
            f"(supported: {SUPPORTED_FORMAT_VERSIONS})"
        )
    path = os.fspath(path)
    if os.path.exists(path) and not force:
        raise BundleExistsError(
            f"refusing to overwrite existing bundle {path!r} (pass force=True / --force)"
        )
    keyword_index = engine.keyword_index
    if not keyword_index.uses_default_analysis():
        raise UnsupportedEngineError(
            "the keyword index uses a custom analyzer or lexicon; bundles "
            "store no code, so only the stock analysis chain round-trips"
        )
    cost_model_name = persistable_cost_model_name(engine.cost_model)

    interner = TermInterner()
    term_id = interner.id
    graph_state = engine.graph.state_for_persistence()
    triples: List[Triple] = list(graph_state["triples"])
    triple_index = {t: i for i, t in enumerate(triples)}

    sections: List[Tuple[str, bytes]] = []
    add = sections.append

    add(
        (
            "triples",
            encode_ids(
                chain.from_iterable(
                    (term_id(t.subject), term_id(t.predicate), term_id(t.object))
                    for t in triples
                )
            ),
        )
    )

    # -- data graph ----------------------------------------------------
    add(("graph.entity_refs", _encode_count_pairs(graph_state["entity_refs"], term_id)))
    add(("graph.class_refs", _encode_count_pairs(graph_state["class_refs"], term_id)))
    add(("graph.value_refs", _encode_count_pairs(graph_state["value_refs"], term_id)))
    add(("graph.type_pairs", _encode_pair_refs(graph_state["type_pair_refs"], term_id)))
    add(
        (
            "graph.subclass_pairs",
            _encode_pair_refs(graph_state["subclass_pair_refs"], term_id),
        )
    )
    add(("graph.out", _encode_adjacency(graph_state["out"], term_id)))
    add(("graph.in", _encode_adjacency(graph_state["in"], term_id)))
    add(
        (
            "graph.relation_triples",
            _encode_triple_buckets(
                graph_state["relation_triples"], term_id, triple_index
            ),
        )
    )
    add(
        (
            "graph.attribute_triples",
            _encode_triple_buckets(
                graph_state["attribute_triples"], term_id, triple_index
            ),
        )
    )
    add(
        (
            "graph.labels",
            _encode_labels(graph_state["labels"], graph_state["label_rank"], term_id),
        )
    )
    add(
        (
            "graph.type_pred_counts",
            _encode_count_pairs(graph_state["type_pred_counts"], term_id),
        )
    )
    add(
        (
            "graph.subclass_pred_counts",
            _encode_count_pairs(graph_state["subclass_pred_counts"], term_id),
        )
    )

    # -- triple store --------------------------------------------------
    store_state = engine.store.state_for_persistence()
    add(("store.spo", _encode_two_level(store_state["spo"], term_id)))
    add(("store.pos", _encode_two_level(store_state["pos"], term_id)))
    add(("store.osp", _encode_two_level(store_state["osp"], term_id)))
    if format_version >= 2:
        # Queryable triple runs: the same triple set as flat sorted id
        # rows, binary-searchable by prefix without decoding (the mmap
        # tier's whole point).
        spo_rows = sorted(
            (term_id(s), term_id(p), term_id(o))
            for s, po in store_state["spo"].items()
            for p, objs in po.items()
            for o in objs
        )
        add(("store2.spo", encode_raw_ids(chain.from_iterable(spo_rows))))
        add(
            (
                "store2.pos",
                encode_raw_ids(
                    chain.from_iterable(sorted((p, o, s) for s, p, o in spo_rows))
                ),
            )
        )
        add(
            (
                "store2.osp",
                encode_raw_ids(
                    chain.from_iterable(sorted((o, s, p) for s, p, o in spo_rows))
                ),
            )
        )

    # -- keyword index -------------------------------------------------
    kindex_state = keyword_index.state_for_persistence()
    postings = kindex_state["index"]["postings"]
    element_terms = kindex_state["index"]["element_terms"]

    vocab = Interner()
    vocab_id = vocab.id
    element_interner = Interner()
    element_id = element_interner.id

    postings_blob = encode_grouping(
        (
            vocab_id(text),
            chain.from_iterable(
                (element_id(el), tf, total) for el, (tf, total) in bucket.items()
            ),
        )
        for text, bucket in postings.items()
    )
    element_terms_blob = encode_grouping(
        (element_id(el), (vocab_id(t) for t in terms_of))
        for el, terms_of in element_terms.items()
    )
    add(("kindex.vocab", encode_strings(vocab.items)))
    add(
        (
            "kindex.elements",
            encode_ids(
                chain.from_iterable(
                    (_ELEMENT_CODE[kind], term_id(term))
                    for kind, term in element_interner.items
                )
            ),
        )
    )
    add(("kindex.postings", postings_blob))
    add(("kindex.element_terms", element_terms_blob))
    add(
        (
            "kindex.attr_class_refs",
            encode_grouping(
                (
                    term_id(label),
                    chain.from_iterable(
                        (-1 if cls is None else term_id(cls), count)
                        for cls, count in refs.items()
                    ),
                )
                for label, refs in kindex_state["attribute_class_refs"].items()
            ),
        )
    )
    add(
        (
            "kindex.value_occ_refs",
            encode_grouping(
                (
                    term_id(value),
                    chain.from_iterable(
                        (term_id(label), -1 if cls is None else term_id(cls), count)
                        for (label, cls), count in refs.items()
                    ),
                )
                for value, refs in kindex_state["value_occurrence_refs"].items()
            ),
        )
    )

    if format_version >= 2:
        # Queryable keyword sections: vocabulary offset table + sorted
        # permutation (binary-searchable term dictionary), posting lists
        # as per-vocab-id int64 runs, element lookup and element→terms
        # runs (the unindex path), and the refcount groupings re-keyed by
        # sorted term id for bisection.
        vocab_offsets = [8]
        for text in vocab.items:
            vocab_offsets.append(vocab_offsets[-1] + 4 + len(text.encode("utf-8")))
        add(("kindex2.vocab.offsets", encode_raw_ids(vocab_offsets)))
        add(
            (
                "kindex2.vocab.sorted",
                encode_raw_ids(
                    sorted(range(len(vocab.items)), key=vocab.items.__getitem__)
                ),
            )
        )
        run_offsets = [0]
        runs: List[int] = []
        for bucket in postings.values():
            for el, (tf, total) in bucket.items():
                runs.extend((element_id(el), tf, total))
            run_offsets.append(len(runs) // 3)
        while len(run_offsets) < len(vocab.items) + 1:
            run_offsets.append(run_offsets[-1])
        add(("kindex2.postings.offsets", encode_raw_ids(run_offsets)))
        add(("kindex2.postings.runs", encode_raw_ids(runs)))
        element_sort_keys = [
            (_ELEMENT_CODE[kind], term_id(term))
            for kind, term in element_interner.items
        ]
        add(
            (
                "kindex2.elements.sorted",
                encode_raw_ids(
                    sorted(
                        range(len(element_sort_keys)),
                        key=element_sort_keys.__getitem__,
                    )
                ),
            )
        )
        runs_by_eid: List[List[int]] = [[] for _ in element_interner.items]
        for el, terms_of in element_terms.items():
            runs_by_eid[element_id(el)] = [vocab_id(t) for t in terms_of]
        eterm_offsets = [0]
        eterm_runs: List[int] = []
        for run in runs_by_eid:
            eterm_runs.extend(run)
            eterm_offsets.append(len(eterm_runs))
        add(("kindex2.element_terms.offsets", encode_raw_ids(eterm_offsets)))
        add(("kindex2.element_terms.runs", encode_raw_ids(eterm_runs)))
        add(
            (
                "kindex2.attr_refs",
                encode_grouping(
                    sorted(
                        (
                            (
                                term_id(label),
                                list(
                                    chain.from_iterable(
                                        (-1 if cls is None else term_id(cls), count)
                                        for cls, count in refs.items()
                                    )
                                ),
                            )
                            for label, refs in kindex_state[
                                "attribute_class_refs"
                            ].items()
                        ),
                        key=lambda kv: kv[0],
                    )
                ),
            )
        )
        add(
            (
                "kindex2.value_refs",
                encode_grouping(
                    sorted(
                        (
                            (
                                term_id(value),
                                list(
                                    chain.from_iterable(
                                        (
                                            term_id(label),
                                            -1 if cls is None else term_id(cls),
                                            count,
                                        )
                                        for (label, cls), count in refs.items()
                                    )
                                ),
                            )
                            for value, refs in kindex_state[
                                "value_occurrence_refs"
                            ].items()
                        ),
                        key=lambda kv: kv[0],
                    )
                ),
            )
        )

    # -- summary graph + substrate ------------------------------------
    summary_state = engine.summary.state_for_persistence()
    vertices: List[SummaryVertex] = list(summary_state["vertices"].values())
    vertex_index = {v.key: i for i, v in enumerate(vertices)}

    def vertex_term_id(vertex: SummaryVertex) -> int:
        # The identifying term lives in the key (for artificial vertices
        # `vertex.term` is None while the key still carries the label).
        if vertex.kind is SummaryVertexKind.THING:
            return -1
        return term_id(vertex.key[1])

    add(
        (
            "summary.vertices",
            encode_ids(
                chain.from_iterable(
                    (_VERTEX_CODE[v.kind], vertex_term_id(v), v.agg_count)
                    for v in vertices
                )
            ),
        )
    )
    add(
        (
            "summary.edges",
            encode_ids(
                chain.from_iterable(
                    (
                        term_id(e.label),
                        _EDGE_CODE[e.kind],
                        vertex_index[e.source_key],
                        vertex_index[e.target_key],
                        e.agg_count,
                    )
                    for e in summary_state["edges"].values()
                )
            ),
        )
    )

    substrate = engine.summary.exploration_substrate()
    add(("substrate.offsets", encode_raw_ids(substrate.offsets)))
    add(("substrate.targets", encode_raw_ids(substrate.targets)))

    # The term table is interned last but read first.
    term_records = [encode_term_record(t, term_id) for t in interner.terms]
    sections.insert(
        0, ("terms", _U64.pack(len(term_records)) + b"".join(term_records))
    )
    if format_version >= 2:
        # Byte offsets of each record within the terms section (first
        # record sits past the 8-byte count prefix) and the order-key
        # permutation — together they make the table binary-searchable
        # without decoding it.
        term_offsets = [8]
        for record in term_records:
            term_offsets.append(term_offsets[-1] + len(record))
        add(("terms.offsets", encode_raw_ids(term_offsets)))
        add(
            (
                "terms.sorted",
                encode_raw_ids(
                    sorted(
                        range(len(interner.terms)),
                        key=lambda i: term_order_key(interner.terms[i], term_id),
                    )
                ),
            )
        )

    meta = {
        "writer": f"repro {__version__}",
        "snapshot": {
            "summary_version": engine.summary.snapshot_key,
            "index_version": keyword_index.snapshot_key,
            "epoch": engine.index_manager.epoch,
        },
        "engine": {
            "cost_model": cost_model_name,
            "k": engine.k,
            "dmax": engine.dmax,
            "strict_keywords": engine.strict_keywords,
            "guided": engine.guided,
            "search_cache_size": (
                engine._search_cache.maxsize if engine._search_cache is not None else 0
            ),
            "use_vectorized": engine.use_vectorized,
        },
        "graph": {
            "strict": graph_state["strict"],
            "conflicts": list(graph_state["conflicts"]),
            # Cheap structural counts, so a lazily loaded graph can serve
            # len()/stats() without materializing its heavy state.
            "stats": engine.graph.stats(),
        },
        "kindex": {
            "version": kindex_state["version"],
            "fuzzy_max_distance": kindex_state["fuzzy_max_distance"],
            "max_matches": kindex_state["max_matches"],
            "lookup_cache_size": kindex_state["lookup_cache_size"],
            "build_seconds": kindex_state["build_seconds"],
        },
        "summary": {
            "version": summary_state["version"],
            "total_entities": summary_state["total_entities"],
            "total_relation_edges": summary_state["total_relation_edges"],
            "total_attribute_edges": summary_state["total_attribute_edges"],
            "build_seconds": summary_state["build_seconds"],
        },
        "counts": {
            "terms": len(interner),
            "triples": len(triples),
            "summary_vertices": len(vertices),
            "summary_edges": len(summary_state["edges"]),
        },
    }

    writer = BundleWriter(path, force=force)
    try:
        for name, payload in sections:
            writer.add_section(name, payload)
        return writer.finish(
            meta,
            engine_log=getattr(engine, "delta_log", None),
            format_version=format_version,
        )
    except BaseException:
        writer.abort()
        raise


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------


class LoadedBundle:
    """The decoded parts of one bundle, before engine assembly."""

    __slots__ = (
        "graph",
        "store",
        "keyword_index",
        "summary",
        "substrate",
        "meta",
        "path",
        "format_version",
        "index_tier",
    )


def load_bundle(path, index_tier: str = "memory") -> LoadedBundle:
    """Decode a bundle file into engine parts.

    ``index_tier`` selects how the keyword index and triple store come
    back: ``"memory"`` (the default) decodes them into the materialized
    Python structures; ``"mmap"`` wraps the format-v2 queryable sections
    in disk-resident readers (:mod:`repro.storage.mmap_tier`) so neither
    postings nor triples are materialized — cold start stays O(metadata)
    and resident memory O(touched data).  The big queryable sections are
    *not* CRC-verified on the mmap path (checksumming them would read
    every byte, defeating the tier); the metadata, summary, and graph
    sections still are.

    Raises :class:`BundleFormatError` on anything that is not a
    supported-version repro bundle and :class:`BundleChecksumError` when
    a verified section's bytes do not match its recorded CRC — the
    artifact is then unusable by definition and no partial engine is
    produced.  A version-1 bundle with ``index_tier="mmap"`` raises
    :class:`UnsupportedEngineError`: the queryable sections do not exist
    in the old layout, so the only fix is a rebuild.
    """
    if index_tier not in ("memory", "mmap"):
        raise ValueError(
            f"unknown index_tier {index_tier!r} (expected 'memory' or 'mmap')"
        )
    path = os.fspath(path)
    with open(path, "rb") as fh:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file
            raise BundleFormatError(f"{path}: not a repro bundle ({exc})") from exc
    view = memoryview(mapped)

    if len(view) < 16:
        raise BundleFormatError(
            f"{path}: not a repro bundle (only {len(view)} bytes, prelude needs 16)"
        )
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise BundleFormatError(f"{path}: not a repro bundle (bad magic)")
    (format_version,) = _U32.unpack(view[8:12])
    if format_version not in SUPPORTED_FORMAT_VERSIONS:
        raise BundleFormatError(
            f"{path}: bundle format version {format_version} is not a "
            f"supported version ({', '.join(map(str, SUPPORTED_FORMAT_VERSIONS))}); "
            "rebuild the bundle with `repro build` (or read it with the "
            "matching release)"
        )
    if index_tier == "mmap" and format_version < 2:
        raise UnsupportedEngineError(
            f"{path}: bundle format version {format_version} predates the "
            "queryable mmap-tier sections; rebuild with `repro build` "
            "(format version 2) to serve with index_tier='mmap', or load "
            "with the default tier"
        )
    (header_length,) = _U32.unpack(view[12:16])
    header_end = 16 + header_length
    if header_end > len(view):
        raise BundleFormatError(f"{path}: truncated header")
    try:
        meta = json.loads(bytes(view[16:header_end]).decode("utf-8"))
    except ValueError as exc:
        raise BundleFormatError(f"{path}: unreadable header ({exc})") from exc
    data_start = header_end + (-header_end % 8)

    section_views: Dict[str, memoryview] = {}
    for entry in meta.get("sections", ()):
        begin = data_start + entry["offset"]
        end = begin + entry["length"]
        if end > len(view):
            raise BundleFormatError(f"{path}: section {entry['name']!r} is truncated")
        section_views[entry["name"]] = view[begin:end]
    checked: set = set()

    def section(name: str) -> memoryview:
        """One section's bytes, CRC-verified on first access.

        Verification is *per consumer*: sections decoded at load time are
        checked at load time, while the lazily materialized ones (graph,
        store, triples) are checked when their thunk first runs — so a
        lazy cold start does not pull every stored byte through the page
        cache just to checksum it.  Either way a corrupted section fails
        with the dedicated exception before any of its data is used.
        """
        try:
            payload = section_views[name]
        except KeyError:
            raise BundleFormatError(f"{path}: missing section {name!r}") from None
        if name not in checked:
            entry = next(e for e in meta["sections"] if e["name"] == name)
            if zlib.crc32(payload) != entry["crc32"]:
                raise BundleChecksumError(
                    f"{path}: checksum mismatch in section {name!r} — "
                    "the bundle is corrupted; rebuild it with `repro build`"
                )
            checked.add(name)
        return payload

    def section_raw(name: str) -> memoryview:
        """One section's bytes with *no* CRC pass — the mmap tier's
        queryable sections go through here so cold start never reads
        them end to end; integrity of the touched rows rests on the
        binary-search invariants instead."""
        try:
            return section_views[name]
        except KeyError:
            raise BundleFormatError(
                f"{path}: missing section {name!r} — the bundle predates "
                "the queryable layout; rebuild with `repro build`"
            ) from None

    mmap_tier = index_tier == "mmap"
    if mmap_tier:
        from repro.storage import mmap_tier as mt

        for name in (
            "terms.offsets",
            "terms.sorted",
            "store2.spo",
            "store2.pos",
            "store2.osp",
            "kindex2.vocab.offsets",
            "kindex2.vocab.sorted",
            "kindex2.postings.offsets",
            "kindex2.postings.runs",
            "kindex2.elements.sorted",
            "kindex2.element_terms.offsets",
            "kindex2.element_terms.runs",
            "kindex2.attr_refs",
            "kindex2.value_refs",
        ):
            if name not in section_views:
                raise BundleFormatError(f"{path}: missing section {name!r}")

    # -- terms ---------------------------------------------------------
    if mmap_tier:
        terms = mt.MmapTermTable(
            section_raw("terms"),
            decode_raw_ids(section_raw("terms.offsets")),
            decode_raw_ids(section_raw("terms.sorted")),
        )
    else:
        terms = decode_terms(section("terms"))
    counts = meta.get("counts", {})
    if counts.get("terms") is not None and counts["terms"] != len(terms):
        raise BundleFormatError(
            f"{path}: term table has {len(terms)} entries, header says "
            f"{counts['terms']}"
        )

    # -- data graph + triple store (lazy) ------------------------------
    # A plain search never reads these; decoding them up front would put
    # every stored triple back on the cold-start path.  The sections are
    # CRC-verified above and captured by thunks; repro.storage.lazy
    # materializes them on first maintenance / execute / filter access.
    meta_graph = meta["graph"]
    # Existence (not integrity) of the deferred sections is established
    # up front; their thunks only defer the CRC check + decode.
    for name in (
        "triples",
        "graph.entity_refs",
        "graph.class_refs",
        "graph.value_refs",
        "graph.type_pairs",
        "graph.subclass_pairs",
        "graph.out",
        "graph.in",
        "graph.relation_triples",
        "graph.attribute_triples",
        "graph.labels",
        "store.spo",
        "store.pos",
        "store.osp",
    ):
        if name not in section_views:
            raise BundleFormatError(f"{path}: missing section {name!r}")

    def decode_triples() -> List[Triple]:
        triple_ids = Reader(section("triples")).ids()
        triple_terms = list(map(terms.__getitem__, triple_ids))
        decoded = list(
            map(Triple, triple_terms[::3], triple_terms[1::3], triple_terms[2::3])
        )
        if counts.get("triples") is not None and counts["triples"] != len(decoded):
            raise BundleFormatError(
                f"{path}: triple section has {len(decoded)} triples, header "
                f"says {counts['triples']}"
            )
        return decoded

    type_pred_counts = _decode_count_pairs(
        Reader(section("graph.type_pred_counts")), terms
    )
    subclass_pred_counts = _decode_count_pairs(
        Reader(section("graph.subclass_pred_counts")), terms
    )

    def graph_thunk() -> Dict[str, object]:
        triples = decode_triples()
        labels, label_rank = _decode_labels(Reader(section("graph.labels")), terms)
        return {
            "strict": meta_graph["strict"],
            "conflicts": meta_graph["conflicts"],
            "triples": triples,
            "entity_refs": _decode_count_pairs(
                Reader(section("graph.entity_refs")), terms
            ),
            "class_refs": _decode_count_pairs(
                Reader(section("graph.class_refs")), terms
            ),
            "value_refs": _decode_count_pairs(
                Reader(section("graph.value_refs")), terms
            ),
            "type_pair_refs": _decode_pair_refs(
                Reader(section("graph.type_pairs")), terms
            ),
            "subclass_pair_refs": _decode_pair_refs(
                Reader(section("graph.subclass_pairs")), terms
            ),
            "out": _decode_adjacency(Reader(section("graph.out")), terms),
            "in": _decode_adjacency(Reader(section("graph.in")), terms),
            "relation_triples": _decode_triple_buckets(
                Reader(section("graph.relation_triples")), terms, triples
            ),
            "attribute_triples": _decode_triple_buckets(
                Reader(section("graph.attribute_triples")), terms, triples
            ),
            "labels": labels,
            "label_rank": label_rank,
            "type_pred_counts": type_pred_counts,
            "subclass_pred_counts": subclass_pred_counts,
        }

    graph = LazyDataGraph(
        graph_thunk,
        strict=meta_graph["strict"],
        conflicts=meta_graph["conflicts"],
        type_pred_counts=type_pred_counts,
        subclass_pred_counts=subclass_pred_counts,
        stats=meta_graph["stats"],
    )

    if mmap_tier:
        store = mt.MmapTripleTier(
            decode_raw_ids(section_raw("store2.spo")),
            decode_raw_ids(section_raw("store2.pos")),
            decode_raw_ids(section_raw("store2.osp")),
            meta_graph["stats"]["triples"],
            terms,
        )
    else:

        def store_thunk() -> TripleStore:
            spo, size = _decode_two_level(Reader(section("store.spo")), terms)
            pos, _ = _decode_two_level(Reader(section("store.pos")), terms)
            osp, _ = _decode_two_level(Reader(section("store.osp")), terms)
            return TripleStore.from_state(spo, pos, osp, size)

        store = LazyTripleStore(store_thunk, size=meta_graph["stats"]["triples"])

    # -- keyword index -------------------------------------------------
    if mmap_tier:
        vocab_dict = mt.MmapTermDictionary(
            section_raw("kindex.vocab"),
            decode_raw_ids(section_raw("kindex2.vocab.offsets")),
            decode_raw_ids(section_raw("kindex2.vocab.sorted")),
        )
        inverted = mt.MmapInvertedIndex(
            vocab_dict,
            decode_raw_ids(section_raw("kindex2.postings.offsets")),
            decode_raw_ids(section_raw("kindex2.postings.runs")),
            decode_raw_ids(section_raw("kindex.elements")[8:]),
            decode_raw_ids(section_raw("kindex2.elements.sorted")),
            decode_raw_ids(section_raw("kindex2.element_terms.offsets")),
            decode_raw_ids(section_raw("kindex2.element_terms.runs")),
            terms,
        )
        a_keys, a_offsets, a_values = mt.grouping_views(
            section_raw("kindex2.attr_refs")
        )
        attr_class_refs = mt.LazyRefMap(
            a_keys, a_offsets, a_values, terms, mt.attr_refs_decoder(terms)
        )
        v_keys, v_offsets, v_values = mt.grouping_views(
            section_raw("kindex2.value_refs")
        )
        value_occ_refs = mt.LazyRefMap(
            v_keys, v_offsets, v_values, terms, mt.value_refs_decoder(terms)
        )
    else:
        vocab = decode_strings(Reader(section("kindex.vocab")))
        element_flat = Reader(section("kindex.elements")).ids()
        it = iter(element_flat)
        elements = [(_ELEMENT_KINDS[code], terms[t]) for code, t in zip(it, it)]

        keys, offsets, values = decode_grouping(Reader(section("kindex.postings")))
        postings: Dict[str, Dict] = {}
        for i, k in enumerate(keys):
            segment = iter(values[offsets[i] : offsets[i + 1]])
            postings[vocab[k]] = {
                elements[e]: [tf, total]
                for e, tf, total in zip(segment, segment, segment)
            }
        keys, offsets, values = decode_grouping(
            Reader(section("kindex.element_terms"))
        )
        element_terms = {
            elements[k]: {vocab[v] for v in values[offsets[i] : offsets[i + 1]]}
            for i, k in enumerate(keys)
        }
        keys, offsets, values = decode_grouping(
            Reader(section("kindex.attr_class_refs"))
        )
        attr_class_refs: Dict[URI, Dict[Optional[Term], int]] = {}
        for i, k in enumerate(keys):
            segment = iter(values[offsets[i] : offsets[i + 1]])
            attr_class_refs[terms[k]] = {
                (None if cls < 0 else terms[cls]): count
                for cls, count in zip(segment, segment)
            }
        keys, offsets, values = decode_grouping(
            Reader(section("kindex.value_occ_refs"))
        )
        value_occ_refs: Dict[Literal, Dict[Tuple[URI, Optional[Term]], int]] = {}
        for i, k in enumerate(keys):
            segment = iter(values[offsets[i] : offsets[i + 1]])
            value_occ_refs[terms[k]] = {
                (terms[label], None if cls < 0 else terms[cls]): count
                for label, cls, count in zip(segment, segment, segment)
            }
        inverted = InvertedIndex.from_state(postings, element_terms)
    kindex_meta = meta["kindex"]
    keyword_index = KeywordIndex.from_state(
        graph,
        inverted,
        attr_class_refs,
        value_occ_refs,
        version=kindex_meta["version"],
        fuzzy_max_distance=kindex_meta["fuzzy_max_distance"],
        max_matches=kindex_meta["max_matches"],
        lookup_cache_size=kindex_meta["lookup_cache_size"],
        build_seconds=kindex_meta["build_seconds"],
    )

    # -- summary graph -------------------------------------------------
    vertex_flat = Reader(section("summary.vertices")).ids()
    it = iter(vertex_flat)
    vertices: List[SummaryVertex] = []
    for code, t, agg in zip(it, it, it):
        kind = _VERTEX_KINDS[code]
        if kind is SummaryVertexKind.THING:
            vertices.append(SummaryVertex(THING_KEY, kind, None, agg))
        elif kind is SummaryVertexKind.ARTIFICIAL:
            vertices.append(SummaryVertex(("avalue", terms[t]), kind, None, agg))
        else:
            key_tag = "class" if kind is SummaryVertexKind.CLASS else "value"
            vertices.append(SummaryVertex((key_tag, terms[t]), kind, terms[t], agg))
    edge_flat = Reader(section("summary.edges")).ids()
    it = iter(edge_flat)
    edges = [
        (terms[label], _EDGE_KINDS[code], vertices[si].key, vertices[ti].key, agg)
        for label, code, si, ti, agg in zip(it, it, it, it, it)
    ]
    summary_meta = meta["summary"]
    summary = SummaryGraph.from_state(
        vertices,
        edges,
        total_entities=summary_meta["total_entities"],
        total_relation_edges=summary_meta["total_relation_edges"],
        total_attribute_edges=summary_meta["total_attribute_edges"],
        build_seconds=summary_meta["build_seconds"],
        version=summary_meta["version"],
    )
    if counts.get("summary_vertices") is not None and counts["summary_vertices"] != len(
        vertices
    ):
        raise BundleFormatError(f"{path}: summary vertex count mismatch")

    # -- substrate (mmap-backed) --------------------------------------
    try:
        substrate = ExplorationSubstrate.from_arrays(
            summary._canonical_pairs(),
            decode_raw_ids(section("substrate.offsets")),
            decode_raw_ids(section("substrate.targets")),
            backing=mapped,
        )
    except ValueError as exc:
        raise BundleFormatError(f"{path}: substrate sections inconsistent ({exc})") from exc
    summary.adopt_substrate(substrate)

    loaded = LoadedBundle()
    loaded.graph = graph
    loaded.store = store
    loaded.keyword_index = keyword_index
    loaded.summary = summary
    loaded.substrate = substrate
    loaded.meta = meta
    loaded.path = path
    loaded.format_version = format_version
    loaded.index_tier = index_tier
    return loaded


# ----------------------------------------------------------------------
# Engine lifecycle: load / compact
# ----------------------------------------------------------------------


def load_engine(
    path,
    *,
    replay_wal: bool = True,
    attach_wal: bool = True,
    wal_path=None,
    lazy: bool = True,
    index_tier: str = "memory",
    **overrides,
):
    """Reconstitute a :class:`~repro.core.engine.KeywordSearchEngine`.

    The engine is assembled from the bundle's decoded parts with the
    engine configuration saved in the header; keyword arguments
    (``cost_model``, ``k``, ``dmax``, ``strict_keywords``, ``guided``,
    ``search_cache_size``) override it.  When a delta log exists next to
    the bundle (``<path>.wal`` unless ``wal_path`` says otherwise), its
    committed epochs past the bundle's epoch are replayed through the
    incremental maintenance path, and — with ``attach_wal`` — the log is
    then hooked into the engine's :class:`~repro.maintenance.IndexManager`
    so every future update epoch is appended durably.

    With ``lazy`` (the default) the data graph's heavy state and the
    triple store materialize from the mmap-ed sections on first use
    (see :mod:`repro.storage.lazy`); searching needs neither, so the
    returned engine serves queries after O(metadata) work.  ``lazy=False``
    forces full materialization before returning.

    ``index_tier="mmap"`` goes further: the keyword index and the triple
    store are *never* materialized — lookups binary-search the bundle's
    format-v2 queryable sections through the mmap, updates land in small
    in-memory overlays, and serving RSS stays O(touched data) (see
    :mod:`repro.storage.mmap_tier`).  Requires a version-2 bundle.

    The bundle + log pair is a **single-writer artifact**: attaching
    takes an exclusive lock on the log (released by
    ``engine.delta_log.close()``, or implicitly when the process dies),
    and a second attach — from this or any other process — fails with
    :class:`WalError` instead of interleaving epochs that would brick
    the pair.  Concurrent read-only loads use ``attach_wal=False``.
    """
    from repro.core.engine import KeywordSearchEngine
    from repro.storage.wal import DeltaLog

    started = time.perf_counter()
    loaded = load_bundle(path, index_tier=index_tier)
    meta = loaded.meta
    engine_meta = dict(meta["engine"])
    # Bundles written before the vectorized kernels lack the key; the
    # tri-state default (None = auto) keeps them loadable and overridable.
    engine_meta.setdefault("use_vectorized", None)
    unknown = set(overrides) - set(engine_meta)
    if unknown:
        raise TypeError(f"unknown load() overrides: {sorted(unknown)}")
    engine_meta.update({k: v for k, v in overrides.items() if v is not None})

    engine = KeywordSearchEngine(
        loaded.graph,
        cost_model=engine_meta["cost_model"],
        k=engine_meta["k"],
        dmax=engine_meta["dmax"],
        strict_keywords=engine_meta["strict_keywords"],
        guided=engine_meta["guided"],
        keyword_index=loaded.keyword_index,
        summary=loaded.summary,
        store=loaded.store,
        search_cache_size=engine_meta["search_cache_size"],
        use_vectorized=engine_meta["use_vectorized"],
    )
    engine.index_manager.epoch = meta["snapshot"]["epoch"]
    engine.index_tier = index_tier
    if not lazy:
        loaded.graph._materialize()
        if hasattr(loaded.store, "_materialize"):
            # The mmap triple tier has no materialized form — it *is*
            # the store; lazy=False only forces the graph then.
            loaded.store._materialize()

    wal_path = os.fspath(wal_path) if wal_path is not None else loaded.path + ".wal"
    wal = DeltaLog(wal_path)
    replayed = 0
    try:
        if attach_wal:
            # Lock *before* reading the tail: a still-attached writer
            # could otherwise commit an epoch between our replay and our
            # attach, and our next update would append a duplicate of it.
            wal._lock_exclusively()
        if replay_wal:
            replayed = wal.replay_into(engine, from_epoch=meta["snapshot"]["epoch"])
        if attach_wal:
            if not replay_wal and any(
                epoch >= meta["snapshot"]["epoch"]
                for epoch, _, _ in wal.committed_entries()
            ):
                # Appending new epochs after an unreplayed committed tail
                # would interleave out-of-order epochs in the log: the
                # engine has silently diverged from the artifact pair, and
                # the next load would (rightly) refuse the gap.  Refuse up
                # front.
                raise WalError(
                    f"{wal_path}: refusing attach_wal with replay_wal=False "
                    "while the log holds a committed tail past the bundle's "
                    "epoch — replay it, or load with attach_wal=False"
                )
            wal.attach(engine.index_manager)
            engine.delta_log = wal
    except BaseException:
        wal.close()
        raise

    engine.artifact = {
        "path": os.path.abspath(loaded.path),
        "format_version": loaded.format_version,
        "index_tier": index_tier,
        "epoch_at_save": meta["snapshot"]["epoch"],
        "summary_version_at_save": meta["snapshot"]["summary_version"],
        "index_version_at_save": meta["snapshot"]["index_version"],
        "wal_path": os.path.abspath(wal_path) if (replay_wal or attach_wal) else None,
        "wal_epochs_replayed": replayed,
        "load_seconds": time.perf_counter() - started,
        "writer": meta.get("writer"),
    }
    return engine


def compact_bundle(path, wal_path=None) -> Dict[str, object]:
    """Fold the delta log into a fresh bundle and truncate the log.

    Loads bundle + committed WAL tail, writes the caught-up state as a
    new bundle (atomic same-directory replace), then resets the log —
    the epochs it held are now part of the bundle itself.  Returns an
    info dict including how many logged epochs were folded in.
    """
    from repro.storage.wal import DeltaLog

    path = os.fspath(path)
    if not os.path.exists(path):
        # Checked before the lock below, which would otherwise create a
        # stray (empty) delta log next to a bundle that never existed.
        raise FileNotFoundError(f"no such bundle: {path}")
    log = DeltaLog(wal_path if wal_path is not None else path + ".wal")
    # Take the single-writer lock *before* touching the bundle: an engine
    # attached to the log would keep appending epochs the fresh bundle
    # does not contain, so compacting under it must fail — and fail
    # before the bundle file is replaced, not after.
    log._lock_exclusively()
    try:
        engine = load_engine(
            path, replay_wal=True, attach_wal=False, wal_path=log.path
        )
        folded = engine.artifact["wal_epochs_replayed"]
        tmp_path = f"{path}.compact.{os.getpid()}"
        try:
            info = save_bundle(engine, tmp_path, force=True)
            os.replace(tmp_path, path)
            fsync_directory(path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        log.reset()
    finally:
        log.close()
    info["path"] = path
    info["wal_epochs_folded"] = folded
    return info
