"""The ``repro serve --workers N`` worker process.

One worker serves ``search`` / ``execute`` requests over stdin/stdout
frames (:mod:`repro.service.protocol`) against its *own* read-only load
of the shared bundle::

    KeywordSearchEngine.load(bundle, lazy=True, attach_wal=False)

Lazy loading means the worker's searchable state is mostly ``mmap`` views
of the bundle's CSR sections — every worker maps the *same* file, so the
OS page cache backs all of them with one physical copy and the marginal
RSS of an extra worker is near zero.  That is the whole point of the
multiprocess tier: N CPU-bound pure-Python searches stop sharing one GIL
without paying N times the memory.

**Epoch propagation.**  The dispatcher owns the single WAL-attached
writer engine; workers are followers.  Every request carries the
dispatcher's committed watermark (``min_epoch``), and a worker whose
engine is behind replays the committed WAL tail through a
:class:`~repro.storage.wal.WalCursor` *before* executing the request —
so a response is always computed wholly at one epoch ``>= min_epoch``,
never on a half-applied state (replay goes through the same atomic
``apply_batch`` epochs as the original updates).  When the tail cannot
reach the watermark — the log was compacted away, truncated, or the
bundle was rebuilt — the worker falls back to a full bundle reload, and
only reports itself stale if even the reload is behind.

The worker is deliberately single-threaded: requests on its pipe are
strictly serialized, which is what makes "sync, then serve" a complete
consistency argument.  Parallelism lives in the *number* of workers, not
inside one.

Frame protocol (all ops reply with one frame; ``ok: false`` carries
``kind`` = ``bad_request`` | ``stale`` | ``internal`` and ``error``):

==========  ===========================================================
op          behavior
==========  ===========================================================
search      sync to ``min_epoch``; run the pipeline; reply
            ``{"result": <result_to_json>, "epoch": E}``
execute     sync; search + evaluate the rank-th candidate; reply
            ``{"candidate": ..., "answers": [...], "epoch": E}``
            (``candidate: null`` when the rank is out of range)
sync        replay to ``min_epoch``; reply ``{"epoch": E}``
stats       counters, epoch, pid, RSS (VmRSS/VmHWM/Pss), cache rates
ping        liveness probe: ``{"pid": ..., "epoch": E}``
sleep       hold the worker busy ``seconds`` (supervision tests and
            drain diagnostics only — it occupies the pipe exactly like
            a long search)
shutdown    reply, then exit the loop cleanly
==========  ===========================================================

On startup the worker proactively sends one ``ready`` frame carrying its
pid, epoch, and load time; the dispatcher treats a connection without it
as a failed spawn.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, Optional

from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["WorkerRuntime", "main", "process_memory"]


def process_memory() -> Dict[str, int]:
    """Best-effort memory facts for this process, in KiB.

    ``vmrss``/``vmhwm`` come from ``/proc/self/status``.  ``pss`` (the
    *proportional* set size from ``/proc/self/smaps_rollup``) is the
    honest number for the shared-bundle claim: mmap-ed bundle pages are
    resident in every worker's VmRSS but counted once (split N ways) in
    PSS, so the sum of worker PSS staying near one worker's VmRSS is the
    proof that the page cache is shared.  Missing files (non-Linux)
    yield zeros.
    """
    out = {"vmrss_kb": 0, "vmhwm_kb": 0, "pss_kb": 0}
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    out["vmrss_kb"] = int(line.split()[1])
                elif line.startswith("VmHWM:"):
                    out["vmhwm_kb"] = int(line.split()[1])
    except OSError:
        pass
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    out["pss_kb"] = int(line.split()[1])
                    break
    except OSError:
        pass
    return out


class WorkerRuntime:
    """The request loop around one follower engine."""

    def __init__(self, bundle: str, overrides: Optional[Dict[str, object]] = None):
        from repro.core.engine import KeywordSearchEngine
        from repro.storage.wal import WalCursor

        self.bundle = os.fspath(bundle)
        self.overrides = dict(overrides or {})
        started = time.perf_counter()
        self.engine = KeywordSearchEngine.load(
            self.bundle, lazy=True, attach_wal=False, **self.overrides
        )
        self.load_seconds = time.perf_counter() - started
        self.cursor = WalCursor(self._wal_path())
        self.completed = 0
        self.errors = 0
        self.epochs_replayed = 0
        self.reloads = 0

    def _wal_path(self) -> str:
        return self.bundle + ".wal"

    # -- epoch propagation --------------------------------------------

    @property
    def epoch(self) -> int:
        return self.engine.index_manager.epoch

    def sync_to(self, min_epoch: Optional[int]) -> None:
        """Catch up to the dispatcher's committed watermark.

        WAL-tail replay first; a gap, damage, or an unreachable
        watermark falls back to reloading the bundle (it may have been
        compacted/rebuilt past the log).  Raises ``StaleWorkerError``
        only when even a fresh load is behind the watermark — at that
        point the artifact on disk genuinely lacks committed history and
        serving from it would be wrong.
        """
        if min_epoch is None or self.epoch >= min_epoch:
            return
        from repro.storage.errors import WalError

        try:
            self.epochs_replayed += self.cursor.replay_into(self.engine)
        except WalError:
            self._reload()
        if self.epoch < min_epoch:
            self._reload()
        if self.epoch < min_epoch:
            raise StaleWorkerError(
                f"worker at epoch {self.epoch} cannot reach watermark "
                f"{min_epoch}: bundle and WAL lack the committed history"
            )

    def _reload(self) -> None:
        from repro.core.engine import KeywordSearchEngine
        from repro.storage.wal import WalCursor

        self.engine = KeywordSearchEngine.load(
            self.bundle, lazy=True, attach_wal=False, **self.overrides
        )
        self.cursor = WalCursor(self._wal_path())
        self.reloads += 1

    # -- request handling ---------------------------------------------

    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        try:
            if op == "search":
                return self._op_search(request)
            if op == "execute":
                return self._op_execute(request)
            if op == "sync":
                self.sync_to(request.get("min_epoch"))
                return {"ok": True, "epoch": self.epoch}
            if op == "stats":
                return self._op_stats()
            if op == "ping":
                return {"ok": True, "pid": os.getpid(), "epoch": self.epoch}
            if op == "sleep":
                time.sleep(float(request.get("seconds", 0.0)))
                return {"ok": True, "pid": os.getpid()}
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}
            return {
                "ok": False,
                "kind": "bad_request",
                "error": f"unknown op {op!r}",
            }
        except StaleWorkerError as exc:
            self.errors += 1
            return {"ok": False, "kind": "stale", "error": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            self.errors += 1
            return {"ok": False, "kind": "bad_request", "error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            self.errors += 1
            return {
                "ok": False,
                "kind": "internal",
                "error": f"{type(exc).__name__}: {exc}",
            }

    def _op_search(self, request: Dict[str, object]) -> Dict[str, object]:
        from repro.service.http import result_to_json

        self.sync_to(request.get("min_epoch"))
        result = self.engine.search(
            request["q"],
            k=request.get("k"),
            dmax=request.get("dmax"),
            max_cursors=request.get("max_cursors"),
        )
        self.completed += 1
        return {"ok": True, "epoch": self.epoch, "result": result_to_json(result)}

    def _op_execute(self, request: Dict[str, object]) -> Dict[str, object]:
        from repro.service.http import answers_to_json, candidate_to_json

        rank = int(request.get("rank", 1))
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        limit = request.get("limit", 10)
        self.sync_to(request.get("min_epoch"))
        result = self.engine.search(request["q"])
        if len(result.candidates) < rank:
            return {"ok": True, "epoch": self.epoch, "candidate": None, "answers": []}
        candidate = result.candidates[rank - 1]
        answers = self.engine.evaluator.evaluate(
            candidate.query, limit=None if limit is None else int(limit)
        )
        self.completed += 1
        return {
            "ok": True,
            "epoch": self.epoch,
            "candidate": candidate_to_json(candidate),
            "answers": answers_to_json(answers),
        }

    def _op_stats(self) -> Dict[str, object]:
        payload = {
            "ok": True,
            "pid": os.getpid(),
            "epoch": self.epoch,
            "completed": self.completed,
            "errors": self.errors,
            "epochs_replayed": self.epochs_replayed,
            "reloads": self.reloads,
            "load_seconds": self.load_seconds,
            "index_tier": getattr(self.engine, "index_tier", "memory"),
            "caches": self.engine.cache_stats(),
        }
        payload.update(process_memory())
        return payload

    # -- the loop ------------------------------------------------------

    def serve(self, in_stream, out_stream) -> int:
        write_frame(
            out_stream,
            {
                "ok": True,
                "op": "ready",
                "pid": os.getpid(),
                "epoch": self.epoch,
                "load_seconds": self.load_seconds,
            },
        )
        while True:
            try:
                request = read_frame(in_stream)
            except ProtocolError:
                return 1  # dispatcher died mid-frame
            if request is None:
                return 0  # dispatcher hung up: clean exit
            response = self.handle(request)
            try:
                write_frame(out_stream, response)
            except (BrokenPipeError, OSError):
                return 1
            if request.get("op") == "shutdown":
                return 0


class StaleWorkerError(RuntimeError):
    """The on-disk artifact cannot reach the dispatcher's watermark."""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="Internal: one `repro serve --workers N` worker process.",
    )
    parser.add_argument("bundle", help="path to the shared .reprobundle")
    parser.add_argument(
        "--overrides",
        default="{}",
        help="JSON object of KeywordSearchEngine.load overrides",
    )
    args = parser.parse_args(argv)
    overrides = json.loads(args.overrides)

    # Frames own fd 1; anything else that prints (warnings, stray debug
    # output from deep inside a search) must not corrupt the stream, so
    # the real stdout is duplicated for frames and fd 1 is pointed at
    # stderr before the engine loads.
    out_stream = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr

    try:
        runtime = WorkerRuntime(args.bundle, overrides)
    except Exception as exc:
        # A spawn failure must be diagnosable from the dispatcher: send
        # the refusal as the ready frame, then exit nonzero.
        try:
            write_frame(
                out_stream,
                {"ok": False, "op": "ready", "error": f"{type(exc).__name__}: {exc}"},
            )
        except OSError:
            pass
        print(f"repro-serve-worker: {exc}", file=sys.stderr)
        return 1
    return runtime.serve(sys.stdin.buffer, out_stream)


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(main())
