"""Shard-parallel serving: the multiprocess dispatch tier.

:class:`DispatchService` is the process-pool sibling of
:class:`~repro.service.EngineService`.  Exploration is CPU-bound pure
Python, so N threads on one engine share a single GIL and cold
throughput flat-lines (the ``fig_serving`` wall).  The dispatch tier
breaks that wall with processes instead:

* the **dispatcher** (this class, living in the HTTP process) owns the
  single WAL-attached *writer* engine — every ``/update`` epoch applies
  here, is logged write-ahead, and advances the committed **watermark**;
* N **worker processes** (:mod:`repro.service.worker`) each hold their
  own read-only lazy load of the *same* ``.reprobundle``.  The bundle's
  CSR sections are ``mmap`` views, so the OS page cache backs every
  worker with one physical copy — marginal RSS per worker is near zero
  while each gets its own GIL;
* ``/search`` and ``/execute`` are fanned out over the pool through a
  length-prefixed JSON frame protocol (:mod:`repro.service.protocol`)
  on each worker's stdin/stdout pipe, one in-flight request per worker.

**Consistency.**  Every request carries the watermark; a worker behind
it replays the committed WAL tail (or reloads the bundle when the tail
was compacted away) *before* executing, and replay applies whole epochs
through the same atomic ``apply_batch`` path that produced them.  A
response is therefore always computed wholly at a single epoch ``>=``
the watermark at dispatch — pre- or post- any racing update, never a
hybrid.  ``update()`` additionally broadcasts a ``sync`` to every worker
and waits for the acks, so when ``/update`` returns, *all* workers serve
the new epoch.  One deliberate relaxation versus the in-process tier:
``search_many`` pins one watermark for the batch but queries may land on
workers at *different* committed epochs if updates race the batch — each
outcome is individually snapshot-consistent, the batch as a whole is not
one snapshot.

**Supervision.**  A worker that dies (crash, OOM kill) or wedges past
the request deadline is retired, its in-flight request is retried on a
healthy worker (all dispatched ops are read-only, so retry is safe), and
a replacement is spawned in the background — the replacement's load
replays the WAL, so it joins at the current watermark.  ``stats()``
merges dispatcher counters (including the queue-wait histogram) with
per-worker epoch/RSS/PSS/cache numbers and counts every restart.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import ProtocolError, read_frame, write_frame
from repro.service.service import (
    AdmissionError,
    BatchOutcome,
    _percentile,
)

__all__ = ["DispatchError", "DispatchService", "WorkerDied"]

#: How long `_borrow` waits for an idle worker when no explicit queue
#: bound is configured — long enough to ride out a respawn, short enough
#: that a fully wedged pool surfaces as backpressure, not a hang.
_DEFAULT_QUEUE_WAIT = 60.0


class DispatchError(RuntimeError):
    """A dispatch-tier failure that is not the client's fault (HTTP 500)."""


class WorkerDied(RuntimeError):
    """The worker's pipe broke or its response never arrived."""


class _FdReader:
    """Deadline-aware exact reads over a pipe file descriptor.

    ``read`` blocks in ``select`` until bytes arrive or ``deadline``
    (monotonic seconds, set per request) passes — the latter raises
    :class:`WorkerDied`, because a worker that stops answering is
    indistinguishable from a dead one and is handled the same way.
    """

    def __init__(self, fd: int):
        self._fd = fd
        self.deadline: Optional[float] = None

    def read(self, count: int) -> bytes:
        while True:
            timeout = None
            if self.deadline is not None:
                timeout = self.deadline - time.monotonic()
                if timeout <= 0:
                    raise WorkerDied("worker response deadline exceeded")
            ready, _, _ = select.select([self._fd], [], [], timeout)
            if not ready:
                raise WorkerDied("worker response deadline exceeded")
            try:
                chunk = os.read(self._fd, count)
            except OSError as exc:
                raise WorkerDied(f"worker pipe read failed: {exc}") from exc
            return chunk  # b"" = EOF; read_frame turns it into None/error


class _WorkerHandle:
    """One worker subprocess plus its strictly serialized request pipe."""

    def __init__(self, bundle: str, overrides: Dict[str, object], spawn_timeout: float):
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            package_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else package_root
        )
        cmd = [sys.executable, "-m", "repro.service.worker", bundle]
        if overrides:
            cmd += ["--overrides", json.dumps(overrides)]
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env
        )
        self.reader = _FdReader(self.proc.stdout.fileno())
        self.reader.deadline = time.monotonic() + spawn_timeout
        try:
            ready = read_frame(self.reader)
        except (ProtocolError, WorkerDied) as exc:
            self.kill()
            raise DispatchError(f"worker failed to start: {exc}") from exc
        if ready is None or ready.get("op") != "ready":
            self.kill()
            raise DispatchError(f"worker sent no ready frame (got {ready!r})")
        if not ready.get("ok"):
            self.kill()
            raise DispatchError(f"worker refused to start: {ready.get('error')}")
        self.pid: int = ready["pid"]
        self.epoch: int = ready.get("epoch", 0)
        self.load_seconds: float = ready.get("load_seconds", 0.0)
        self.busy = False

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def request(
        self, payload: Dict[str, object], timeout: Optional[float]
    ) -> Dict[str, object]:
        """One request/response exchange.  Raises :class:`WorkerDied` on a
        broken pipe, EOF, corrupt frame, or deadline — the caller retires
        this handle and retries elsewhere."""
        try:
            write_frame(self.proc.stdin, payload)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDied(f"worker pipe write failed: {exc}") from exc
        self.reader.deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        try:
            response = read_frame(self.reader)
        except ProtocolError as exc:
            raise WorkerDied(f"worker stream corrupt: {exc}") from exc
        if response is None:
            raise WorkerDied("worker closed its pipe")
        if "epoch" in response:
            self.epoch = response["epoch"]
        return response

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass


class DispatchService:
    """Multiprocess serving over one shared bundle (see module docstring).

    Parameters
    ----------
    bundle:
        Path to the ``.reprobundle`` every worker maps.
    workers:
        Worker-process count (>= 1; ``repro serve --workers 0`` means "no
        dispatch tier, use :class:`EngineService`" and is the CLI's
        decision, not this class's).
    engine:
        An already-loaded *writer* engine for the same bundle (the CLI
        passes the one it printed provenance for).  When omitted, the
        dispatcher loads one itself with ``attach_wal=True``.  Updates
        require the attached delta log — without it followers could
        never observe them — so ``update()`` refuses on an engine whose
        ``delta_log`` is ``None``.
    overrides:
        ``KeywordSearchEngine.load`` overrides forwarded to every worker
        (and to the writer when the dispatcher loads it), so the whole
        tier serves one engine configuration.
    max_pending:
        Admission bound on in-flight requests (HTTP 429 beyond it).
    max_queue_wait:
        Bound on the time a request may wait for an idle worker,
        separately from its execution time; beyond it the request is
        rejected with :class:`AdmissionError` (backpressure) instead of
        stacking deadline debt behind a busy pool.
    request_timeout:
        Per-request response deadline; a worker that exceeds it is
        treated as dead (retired, request retried).  ``None`` = wait
        forever.
    """

    def __init__(
        self,
        bundle,
        workers: int = 2,
        engine=None,
        overrides: Optional[Dict[str, object]] = None,
        max_pending: int = 64,
        max_queue_wait: Optional[float] = None,
        request_timeout: Optional[float] = None,
        sync_timeout: float = 30.0,
        spawn_timeout: float = 120.0,
        latency_window: int = 2048,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.bundle = os.fspath(bundle)
        self.workers = workers
        self.max_pending = max_pending
        self.max_queue_wait = max_queue_wait
        self.request_timeout = request_timeout
        self.sync_timeout = sync_timeout
        self.spawn_timeout = spawn_timeout
        self._overrides = {
            k: v for k, v in (overrides or {}).items() if v is not None
        }

        if engine is None:
            from repro.core.engine import KeywordSearchEngine

            engine = KeywordSearchEngine.load(
                self.bundle, lazy=True, attach_wal=True, **self._overrides
            )
        self.engine = engine

        self._cond = threading.Condition()
        self._handles: List[_WorkerHandle] = []
        self._idle: List[_WorkerHandle] = []
        self._spawning = 0
        self._closed = False

        self._stats_lock = threading.Lock()
        self._inflight = 0
        self._completed = 0
        self._errors = 0
        self._timeouts = 0
        self._rejected = 0
        self._retries = 0
        self._restarts = 0
        self._spawn_failures = 0
        self._updates = 0
        self._latencies: deque = deque(maxlen=latency_window)
        self._queue_waits: deque = deque(maxlen=latency_window)
        self._started_at = time.monotonic()
        #: The committed epoch every response must be at or past.
        self._watermark = engine.index_manager.epoch

        self._fanout = ThreadPoolExecutor(
            max_workers=max(workers, 2), thread_name_prefix="repro-dispatch"
        )
        try:
            for _ in range(workers):
                handle = self._spawn_one()
                self._handles.append(handle)
                self._idle.append(handle)
        except Exception:
            self.close(drain_seconds=0)
            raise

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------

    def _spawn_one(self) -> _WorkerHandle:
        return _WorkerHandle(self.bundle, self._overrides, self.spawn_timeout)

    def _borrow(self, max_wait: Optional[float]) -> Tuple[_WorkerHandle, float]:
        """Take an idle worker, waiting up to the queue bound.

        Returns ``(handle, seconds_waited)``.  Dead handles found in the
        idle list are retired (with respawn) on the way — a worker killed
        while idle is discovered here, not by a failed request.
        """
        if max_wait is None:
            max_wait = (
                self.max_queue_wait
                if self.max_queue_wait is not None
                else _DEFAULT_QUEUE_WAIT
            )
        started = time.monotonic()
        deadline = started + max_wait
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("service is closed")
                while self._idle:
                    handle = self._idle.pop()
                    if handle.alive:
                        handle.busy = True
                        return handle, time.monotonic() - started
                    self._retire_locked(handle)
                if not self._handles and not self._spawning:
                    raise DispatchError(
                        "no live workers and no respawn in progress"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    with self._stats_lock:
                        self._rejected += 1
                    raise AdmissionError(
                        f"no idle worker within max_queue_wait={max_wait:.3f}s "
                        f"({len(self._handles)} live, all busy)"
                    )
                self._cond.wait(remaining)

    def _checkin(self, handle: _WorkerHandle) -> None:
        with self._cond:
            handle.busy = False
            if handle in self._handles and handle.alive and not self._closed:
                self._idle.append(handle)
                self._cond.notify_all()

    def _retire_locked(self, handle: _WorkerHandle) -> None:
        """Drop a dead/hung worker and start its replacement (cond held)."""
        if handle in self._handles:
            self._handles.remove(handle)
        if handle in self._idle:
            self._idle.remove(handle)
        self._cond.notify_all()
        handle.kill()
        if not self._closed:
            self._spawning += 1
            threading.Thread(
                target=self._respawn, name="repro-dispatch-respawn", daemon=True
            ).start()

    def _retire(self, handle: _WorkerHandle) -> None:
        with self._cond:
            self._retire_locked(handle)

    def _respawn(self) -> None:
        try:
            for attempt in range(3):
                if self._closed:
                    return
                try:
                    handle = self._spawn_one()
                except Exception as exc:
                    print(
                        f"# dispatch: worker respawn attempt {attempt + 1} "
                        f"failed: {exc}",
                        file=sys.stderr,
                    )
                    time.sleep(0.3)
                    continue
                with self._cond:
                    if self._closed:
                        handle.kill()
                        return
                    self._handles.append(handle)
                    self._idle.append(handle)
                    self._cond.notify_all()
                with self._stats_lock:
                    self._restarts += 1
                return
            with self._stats_lock:
                self._spawn_failures += 1
        finally:
            with self._cond:
                self._spawning -= 1
                self._cond.notify_all()

    def _checkout_specific(
        self, handle: _WorkerHandle, timeout: float
    ) -> bool:
        """Wait until *this* worker is idle and claim it.  False when it
        died/was retired meanwhile or the wait timed out."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed or handle not in self._handles:
                    return False
                if handle in self._idle:
                    self._idle.remove(handle)
                    handle.busy = True
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)

    # ------------------------------------------------------------------
    # Admission + stats recording (mirrors EngineService)
    # ------------------------------------------------------------------

    def _admit(self, count: int) -> None:
        with self._stats_lock:
            if self._inflight + count > self.max_pending:
                self._rejected += count
                raise AdmissionError(
                    f"{self._inflight} requests in flight + {count} admitted "
                    f"would exceed max_pending={self.max_pending}"
                )
            self._inflight += count

    def _release(self, count: int) -> None:
        with self._stats_lock:
            self._inflight -= count

    def _record(self, latency: float, status: str) -> None:
        with self._stats_lock:
            if status == "ok":
                self._completed += 1
                self._latencies.append((time.monotonic(), latency))
            elif status == "timeout":
                self._timeouts += 1
            else:
                self._errors += 1

    def _record_queue_wait(self, seconds: float) -> None:
        with self._stats_lock:
            self._queue_waits.append(seconds)

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def _roundtrip(
        self, payload: Dict[str, object], max_wait: Optional[float] = None
    ) -> Dict[str, object]:
        """Admit, borrow, exchange, retry-on-death; returns the ok frame."""
        if self._closed:
            raise RuntimeError("service is closed")
        self._admit(1)
        started = time.monotonic()
        attempts = 0
        try:
            while True:
                handle, waited = self._borrow(max_wait)
                self._record_queue_wait(waited)
                try:
                    response = handle.request(payload, self.request_timeout)
                except WorkerDied:
                    self._retire(handle)
                    attempts += 1
                    with self._stats_lock:
                        self._retries += 1
                    if attempts > self.workers + 1:
                        self._record(0.0, "error")
                        raise DispatchError(
                            f"request failed on {attempts} workers in a row"
                        )
                    continue
                self._checkin(handle)
                if response.get("ok"):
                    self._record(time.monotonic() - started, "ok")
                    return response
                self._record(0.0, "error")
                kind = response.get("kind")
                message = str(response.get("error"))
                if kind == "bad_request":
                    raise ValueError(message)
                raise DispatchError(message)
        except AdmissionError:
            raise
        finally:
            self._release(1)

    def search(self, query, k=None, dmax=None, max_cursors=None):
        """One search on some worker, at or past the current watermark.

        Returns the *JSON-shaped* result dict (the worker serializes at
        the source); :func:`repro.service.http.result_to_json` passes it
        through unchanged, so the HTTP layer is tier-agnostic.
        """
        response = self._roundtrip(
            {
                "op": "search",
                "q": query,
                "k": k,
                "dmax": dmax,
                "max_cursors": max_cursors,
                "min_epoch": self._watermark,
            }
        )
        return response["result"]

    def search_many(
        self,
        queries: Sequence,
        k=None,
        dmax=None,
        max_cursors=None,
        timeout: Optional[float] = None,
    ) -> List[BatchOutcome]:
        """Fan a batch over the pool, one watermark pinned for the batch.

        Unlike the in-process tier the batch is *not* one snapshot: each
        outcome is individually consistent at some epoch >= the pinned
        watermark.  ``timeout`` bounds each member's queue wait."""
        queries = list(queries)
        if not queries:
            return []
        watermark = self._watermark

        def one(index: int, query) -> BatchOutcome:
            started = time.monotonic()
            try:
                response = self._roundtrip(
                    {
                        "op": "search",
                        "q": query,
                        "k": k,
                        "dmax": dmax,
                        "max_cursors": max_cursors,
                        "min_epoch": watermark,
                    },
                    max_wait=timeout,
                )
            except AdmissionError:
                return BatchOutcome(index, query, "timeout")
            except Exception as exc:
                return BatchOutcome(
                    index, query, "error", error=exc,
                    latency_seconds=time.monotonic() - started,
                )
            return BatchOutcome(
                index, query, "ok", result=response["result"],
                latency_seconds=time.monotonic() - started,
            )

        futures = [
            self._fanout.submit(one, i, q) for i, q in enumerate(queries)
        ]
        return [f.result() for f in futures]

    def execute_ranked(self, query, rank: int = 1, limit: Optional[int] = 10):
        """Search + evaluate the rank-th candidate on one worker.

        Returns ``(candidate_json, answers_json)`` — already serialized,
        like :meth:`search` — or ``(None, [])`` when the rank is out of
        range."""
        response = self._roundtrip(
            {
                "op": "execute",
                "q": query,
                "rank": rank,
                "limit": limit,
                "min_epoch": self._watermark,
            }
        )
        return response.get("candidate"), response.get("answers", [])

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def update(self, adds: Sequence = (), removes: Sequence = ()) -> Dict[str, object]:
        """Apply one atomic epoch on the writer, then sync every worker.

        The batch commits on the dispatcher's WAL-attached engine (the
        write-ahead entry is what followers replay), the watermark
        advances, and a ``sync`` is broadcast to all workers in parallel
        — each ack means that worker is at the new epoch.  A worker that
        cannot ack within ``sync_timeout`` is retired and respawned (the
        respawn replays the WAL, landing at the watermark), so when this
        method returns every live worker serves the committed state.
        """
        if self.engine.delta_log is None:
            raise DispatchError(
                "this dispatcher's writer engine has no attached delta log; "
                "updates would be invisible to the worker processes — load "
                "the bundle with attach_wal=True"
            )
        changed = self.engine.index_manager.apply_batch(adds=adds, removes=removes)
        epoch = self.engine.index_manager.epoch
        self._watermark = epoch
        synced = 0
        if changed:
            with self._stats_lock:
                self._updates += 1
            synced = self._broadcast_sync(epoch)
        return {
            "changed": changed,
            "epoch": epoch,
            "summary_version": self.engine.summary.snapshot_key,
            "index_version": self.engine.keyword_index.snapshot_key,
            "workers_synced": synced,
        }

    def _broadcast_sync(self, epoch: int) -> int:
        with self._cond:
            targets = list(self._handles)

        def sync_one(handle: _WorkerHandle) -> bool:
            if not self._checkout_specific(handle, self.sync_timeout):
                return False
            try:
                response = handle.request(
                    {"op": "sync", "min_epoch": epoch}, self.sync_timeout
                )
            except WorkerDied:
                self._retire(handle)
                return False
            self._checkin(handle)
            return bool(response.get("ok")) and response.get("epoch", -1) >= epoch

        futures = [self._fanout.submit(sync_one, h) for h in targets]
        return sum(1 for f in futures if f.result())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Dispatcher counters merged with per-worker facts.

        Dead workers discovered here are retired/respawned and reported
        with ``alive: false`` for this snapshot; busy workers are
        reported by pid with ``busy: true`` instead of blocking the
        stats call behind a long search."""
        now = time.monotonic()
        with self._stats_lock:
            records = list(self._latencies)
            queue_waits = sorted(self._queue_waits)
            completed = self._completed
            counters = {
                "completed": completed,
                "errors": self._errors,
                "timeouts": self._timeouts,
                "rejected": self._rejected,
                "retries": self._retries,
                "updates": self._updates,
                "inflight": self._inflight,
            }
            restarts = self._restarts
            spawn_failures = self._spawn_failures
            uptime = now - self._started_at
        latencies = sorted(seconds for _, seconds in records)
        recent = [t for t, _ in records if t > now - 60.0]
        window = min(uptime, 60.0)

        workers: List[Dict[str, object]] = []
        with self._cond:
            handles = list(self._handles)
        for handle in handles:
            if not handle.alive:
                self._retire(handle)
                workers.append({"pid": handle.pid, "alive": False})
                continue
            if not self._checkout_specific(handle, 0.25):
                workers.append(
                    {"pid": handle.pid, "alive": True, "busy": True,
                     "epoch": handle.epoch}
                )
                continue
            try:
                payload = handle.request({"op": "stats"}, self.sync_timeout)
            except WorkerDied:
                self._retire(handle)
                workers.append({"pid": handle.pid, "alive": False})
                continue
            self._checkin(handle)
            payload.pop("ok", None)
            payload["alive"] = True
            workers.append(payload)

        engine = self.engine
        artifact = getattr(engine, "artifact", None)
        return {
            "artifact": dict(artifact) if artifact is not None else None,
            "index_tier": getattr(engine, "index_tier", "memory"),
            "service": {
                "mode": "dispatch",
                "workers": self.workers,
                "live_workers": len(handles),
                "max_pending": self.max_pending,
                "uptime_seconds": uptime,
            },
            "queries": dict(
                counters,
                qps=(completed / uptime) if uptime > 0 else 0.0,
                recent_qps=(len(recent) / window) if window > 0 else 0.0,
                p50_ms=1000 * _percentile(latencies, 0.50),
                p99_ms=1000 * _percentile(latencies, 0.99),
                queue_wait_p50_ms=1000 * _percentile(queue_waits, 0.50),
                queue_wait_p99_ms=1000 * _percentile(queue_waits, 0.99),
                queue_wait_max_ms=1000 * (queue_waits[-1] if queue_waits else 0.0),
            ),
            "dispatch": {
                "watermark": self._watermark,
                "restarts": restarts,
                "spawn_failures": spawn_failures,
            },
            "workers": workers,
            "caches": engine.cache_stats(),
            "snapshot": {
                "epoch": engine.index_manager.epoch,
                "summary_version": engine.summary.snapshot_key,
                "index_version": engine.keyword_index.snapshot_key,
            },
            "data": {"triples": len(engine.graph)},
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, drain_seconds: float = 5.0) -> None:
        """Drain, then shut the pool down.

        Stops admitting, waits up to ``drain_seconds`` for in-flight
        requests, asks each idle worker to exit cleanly (``shutdown``
        frame), and kills whatever remains.  Releases the writer
        engine's delta-log lock so another process can take over the
        artifact."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        deadline = time.monotonic() + drain_seconds
        while time.monotonic() < deadline:
            with self._stats_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        with self._cond:
            handles = list(self._handles)
            self._handles.clear()
            self._idle.clear()
        for handle in handles:
            if handle.alive and not handle.busy:
                try:
                    handle.request({"op": "shutdown"}, 2.0)
                    handle.proc.wait(timeout=2)
                except (WorkerDied, subprocess.TimeoutExpired, OSError):
                    pass
            handle.kill()
        self._fanout.shutdown(wait=False)
        if self.engine.delta_log is not None:
            self.engine.delta_log.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):
        with self._cond:
            live = len(self._handles)
        return (
            f"DispatchService(bundle={self.bundle!r}, workers={self.workers}, "
            f"live={live}, watermark={self._watermark})"
        )
