"""The serving layer: snapshot-isolated concurrent search over one engine.

``EngineSnapshot`` pins one (summary version, keyword-index version) pair
for the duration of a search; ``EngineService`` coordinates lock-free
reads against pinned snapshots with serialized, exclusive update epochs,
fans batches over a bounded worker pool, and keeps service-level stats;
``ReproServer`` is the stdlib HTTP front end behind ``repro serve``.

The multiprocess tier (``repro serve --workers N``) layers on top:
``DispatchService`` owns the WAL-attached writer engine and fans requests
over a pool of worker processes (:mod:`repro.service.worker`) that each
lazily map the same ``.reprobundle``, syncing to the committed epoch
watermark through WAL-tail replay before serving.
"""

from repro.core.snapshot import EngineSnapshot, SnapshotKey
from repro.service.dispatch import DispatchError, DispatchService, WorkerDied
from repro.service.http import (
    ReproServer,
    answers_to_json,
    candidate_to_json,
    result_to_json,
)
from repro.service.service import (
    AdmissionError,
    BatchOutcome,
    EngineService,
    closed_loop_benchmark,
)

__all__ = [
    "AdmissionError",
    "BatchOutcome",
    "DispatchError",
    "DispatchService",
    "EngineService",
    "EngineSnapshot",
    "ReproServer",
    "SnapshotKey",
    "WorkerDied",
    "answers_to_json",
    "candidate_to_json",
    "closed_loop_benchmark",
    "result_to_json",
]
