"""The serving layer: snapshot-isolated concurrent search over one engine.

``EngineSnapshot`` pins one (summary version, keyword-index version) pair
for the duration of a search; ``EngineService`` coordinates lock-free
reads against pinned snapshots with serialized, exclusive update epochs,
fans batches over a bounded worker pool, and keeps service-level stats;
``ReproServer`` is the stdlib HTTP front end behind ``repro serve``.
"""

from repro.core.snapshot import EngineSnapshot, SnapshotKey
from repro.service.http import ReproServer, candidate_to_json, result_to_json
from repro.service.service import (
    AdmissionError,
    BatchOutcome,
    EngineService,
    closed_loop_benchmark,
)

__all__ = [
    "AdmissionError",
    "BatchOutcome",
    "EngineService",
    "EngineSnapshot",
    "ReproServer",
    "SnapshotKey",
    "candidate_to_json",
    "closed_loop_benchmark",
    "result_to_json",
]
