"""Length-prefixed JSON frames: the dispatcher <-> worker wire format.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding a single object.  The format is deliberately dumb:
no pickles (a worker must never be able to make the dispatcher execute
code, nor vice versa), no streaming bodies, no multiplexing — each
worker connection carries strictly alternating request/response frames,
so a frame boundary error can only mean a dead or corrupted peer, and
the dispatcher's answer to both is the same (retire the worker, retry
elsewhere).

``read_frame`` accepts any object with ``read(n) -> bytes`` that may
return *up to* ``n`` bytes (a raw pipe read), so the dispatcher can wrap
a file descriptor with deadline-aware reads while the worker uses plain
buffered stdin.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Optional

__all__ = ["ProtocolError", "read_frame", "write_frame", "MAX_FRAME_BYTES"]

#: Upper bound on one frame.  Results are top-k query candidates — a few
#: KB — so anything near this bound is a corrupted stream, not a payload.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a well-formed frame."""


def write_frame(stream, payload: Dict[str, object]) -> None:
    """Serialize one JSON object frame and flush it."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    stream.write(_LEN.pack(len(body)) + body)
    stream.flush()


def read_frame(reader) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame, an oversized length, or a non-object payload
    raise :class:`ProtocolError` — all three mean the peer died mid-write
    or the stream is corrupt.
    """
    header = _read_exact(reader, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _read_exact(reader, length)
    if body is None:
        raise ProtocolError("stream ended inside a frame body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def _read_exact(reader, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    if count == 0:
        return b""
    chunks = []
    remaining = count
    while remaining:
        chunk = reader.read(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"stream ended {remaining} bytes short of a {count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
